//! Static audit reports for the paper's evaluation instances (Fig. 10–12
//! workloads): the DRRP day-planning MILP per evaluation VM class, an SRRP
//! deterministic-equivalent over a two-state spot tree, and a demonstration
//! of the big-M check paying for itself in branch-and-bound nodes.
//!
//! ```sh
//! cargo run --release -p rrp-bench --bin audit_report
//! ```
//!
//! Besides the printed reports, every solved instance lands as a record
//! (instance, wall-ms, nodes, objective) in `results/BENCH_audit.json` —
//! the persisted bench trajectory future PRs diff against.

use std::time::Instant;

use rrp_audit::{audit_milp, audit_milp_with, AuditOptions, UpperBoundHint};
use rrp_bench::results::{self, Record};
use rrp_bench::{header, DEMAND_SEED};
use rrp_core::demand::DemandModel;
use rrp_core::{CostSchedule, DrrpProblem, PlanningParams, ScenarioTree, SrrpProblem};
use rrp_lp::{Cmp, Model, Sense};
use rrp_milp::{MilpOptions, MilpProblem};
use rrp_spotmarket::{CostRates, EmpiricalDist, VmClass};

fn hints_of(bounds: Vec<(usize, f64)>) -> Vec<UpperBoundHint> {
    bounds
        .into_iter()
        .map(|(col, upper)| UpperBoundHint {
            var: col,
            upper,
            why: "remaining demand / capacity".to_string(),
        })
        .collect()
}

/// Solve `milp` with default options and record the measurement.
fn solve_and_record(records: &mut Vec<Record>, instance: String, milp: &MilpProblem) {
    let opts = MilpOptions::default();
    let t0 = Instant::now();
    match milp.solve(&opts) {
        Ok(sol) => records.push(Record {
            instance,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            nodes: sol.nodes as u64,
            objective: sol.objective,
            extras: Vec::new(),
        }),
        Err(e) => eprintln!("warning: {instance}: solve failed: {e:?}"),
    }
}

fn main() {
    header("Static audit of the Fig. 10–12 planning instances");
    let mut records = Vec::new();

    let rates = CostRates::ec2_2011();
    for class in VmClass::EVALUATION {
        let demand = DemandModel::paper_default().sample(24, DEMAND_SEED);
        let spot = vec![class.on_demand_price(); 24];
        let schedule = CostSchedule::ec2(spot, demand, &rates);
        let problem = DrrpProblem::new(schedule, PlanningParams::default());
        let (mut milp, _) = problem.to_milp();
        let opts =
            AuditOptions { hints: hints_of(problem.implied_alpha_bounds()), ..Default::default() };
        let report = audit_milp_with(&milp, &opts);
        println!("\n--- DRRP 24 h, {class:?} ---");
        print!("{report}");
        report.apply(&mut milp);
        solve_and_record(&mut records, format!("audit/drrp24h/{class:?}"), &milp);
    }

    println!();
    header("SRRP deterministic equivalent (two-state tree, 4 stages)");
    let d = EmpiricalDist::from_parts(vec![0.04, 0.12], vec![0.6, 0.4]);
    let tree = ScenarioTree::from_stage_distributions(&vec![d; 4], 100_000);
    let demand = DemandModel::paper_default().sample(4, DEMAND_SEED);
    let schedule = CostSchedule::ec2(vec![0.06; 4], demand, &rates);
    let srrp = SrrpProblem::new(schedule, PlanningParams::default(), tree);
    let mut milp = srrp.to_milp();
    let opts = AuditOptions { hints: hints_of(srrp.implied_alpha_bounds()), ..Default::default() };
    let report = audit_milp_with(&milp, &opts);
    print!("{report}");
    report.apply(&mut milp);
    solve_and_record(&mut records, "audit/srrp_det_equiv/2state_4stage".to_string(), &milp);

    println!();
    header("Big-M tightening pays in branch-and-bound nodes");
    let loose = fixed_charge(1e5);
    let report = audit_milp(&loose);
    let mut tightened = loose.clone();
    let rewritten = report.apply(&mut tightened);
    let opts = MilpOptions::default();
    match (loose.solve(&opts), tightened.solve(&opts)) {
        (Ok(a), Ok(b)) => {
            println!("fixed-charge cover, 6 sites, loose M = 1e5 vs audit-tightened M:");
            println!("  findings: {}  coefficients rewritten: {rewritten}", report.big_m.len());
            println!("  loose:     obj {:.4}  nodes {}", a.objective, a.nodes);
            println!("  tightened: obj {:.4}  nodes {}", b.objective, b.nodes);
        }
        (a, b) => println!("solve failed: {:?} / {:?}", a.err(), b.err()),
    }
    solve_and_record(&mut records, "audit/fixed_charge/loose".to_string(), &loose);
    solve_and_record(&mut records, "audit/fixed_charge/tightened".to_string(), &tightened);

    match results::write_json("BENCH_audit.json", &records) {
        Ok(path) => println!("\nwrote {} ({} records)", path.display(), records.len()),
        Err(e) => eprintln!("warning: could not write BENCH_audit.json: {e}"),
    }
}

/// min Σ fᵢχᵢ + cᵢxᵢ  s.t.  Σ xᵢ ≥ 25,  xᵢ − M·χᵢ ≤ 0,  0 ≤ xᵢ ≤ 10.
fn fixed_charge(m_coeff: f64) -> MilpProblem {
    let fixed = [7.0, 9.0, 8.0, 6.0, 10.0, 7.5];
    let unit = [1.0, 0.4, 0.7, 1.3, 0.3, 0.9];
    let mut m = Model::new(Sense::Minimize);
    let mut cover = Vec::new();
    let mut chis = Vec::new();
    for (i, (&f, &c)) in fixed.iter().zip(&unit).enumerate() {
        let x = m.add_var(0.0, 10.0, c, &format!("x{i}"));
        let chi = m.add_var(0.0, 1.0, f, &format!("chi{i}"));
        m.add_con(&[(x, 1.0), (chi, -m_coeff)], Cmp::Le, 0.0);
        cover.push((x, 1.0));
        chis.push(chi);
    }
    m.add_con(&cover, Cmp::Ge, 25.0);
    MilpProblem::new(m, chis)
}
