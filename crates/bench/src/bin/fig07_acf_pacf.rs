//! Figure 7 — ACF and PACF correlograms of the selected series with 95 %
//! confidence limits. The paper: "the selected series has certain degree of
//! correlation with its past at certain lag value ... however, such a
//! correlation is not strong enough" (values far from 1).
//!
//! ```sh
//! cargo run --release -p rrp-bench --bin fig07_acf_pacf
//! ```

use rrp_bench::header;
use rrp_spotmarket::{SpotArchive, VmClass};
use rrp_timeseries::acf::{acf, confidence_band, ljung_box, pacf};

fn correlogram(name: &str, values: &[f64], band: f64, lag0: bool) {
    println!("\n{name} (95% band ±{band:.4}):");
    println!("{:>4} {:>8}  -1 ................ 0 ................ +1", "lag", "value");
    for (i, &v) in values.iter().enumerate() {
        let lag = if lag0 { i } else { i + 1 };
        let pos = ((v + 1.0) / 2.0 * 36.0).round() as usize;
        let mut row = [' '; 37];
        row[18] = '|';
        let lo = ((1.0 - band) / 2.0 * 36.0).round() as usize;
        let hi = ((1.0 + band) / 2.0 * 36.0).round() as usize;
        row[lo] = ':';
        row[hi] = ':';
        if pos < row.len() {
            row[pos] = '*';
        }
        let flag = if v.abs() > band && lag > 0 { " <" } else { "" };
        println!("{:>4} {:>8.4}  {}{}", lag, v, row.iter().collect::<String>(), flag);
    }
}

fn main() {
    header("Fig. 7 — ACF / PACF of the estimation window (x-axis: 1.0 = lag 24)");
    let archive = SpotArchive::canonical(VmClass::C1Medium);
    let est = archive.estimation_window();
    let band = confidence_band(est.len());

    let r = acf(est.values(), 30);
    correlogram("ACF", &r, band, true);
    let p = pacf(est.values(), 30);
    correlogram("PACF", &p, band, false);

    let (q, df) = ljung_box(est.values(), 24);
    println!("\nLjung–Box Q({df}) = {q:.1} (χ² 95% critical ≈ 36.4)");
    let strongest = r[1..].iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
    println!(
        "strongest correlation beyond lag 0: {strongest:.3} — {} (paper: weak, ≪ 1)",
        if strongest < 0.9 { "weak" } else { "strong" }
    );
}
