//! The persisted bench trajectory: machine-readable measurement records
//! written to `results/BENCH_*.json` at the workspace root, so future PRs
//! can diff solver performance instead of eyeballing stderr.
//!
//! The format is deliberately minimal — a JSON array of flat records — and
//! written with std only (the bench binaries must not drag the solver's
//! serialisation choices along). `xtask`'s `serde_json` shim parses it
//! back.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One measurement: an instance label, its wall-clock cost, and — when the
/// run solved something — search-tree size and objective value.
#[derive(Debug, Clone)]
pub struct Record {
    /// Instance / benchmark label, e.g. `"engine_throughput/cold_64req/4"`.
    pub instance: String,
    /// Mean wall-clock per run, milliseconds.
    pub wall_ms: f64,
    /// Branch & bound nodes opened (0 for timing-only records).
    pub nodes: u64,
    /// Objective value (`NaN` serialises as `null` for timing-only records).
    pub objective: f64,
}

impl Record {
    /// A timing-only record (no solve attached).
    pub fn timing(instance: impl Into<String>, wall_ms: f64) -> Self {
        Self { instance: instance.into(), wall_ms, nodes: 0, objective: f64::NAN }
    }
}

/// `results/` at the workspace root (created on demand). Benches run with
/// the package dir as cwd, so the path is anchored at compile time instead.
pub fn results_dir() -> io::Result<PathBuf> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .ok_or_else(|| io::Error::other("bench crate has no workspace root"))?;
    let dir = root.join("results");
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Serialise `records` as a JSON array and write it to
/// `results/<file_name>` atomically enough for CI (write + rename is
/// overkill for a report artefact; a plain write suffices).
pub fn write_json(file_name: &str, records: &[Record]) -> io::Result<PathBuf> {
    let path = results_dir()?.join(file_name);
    fs::write(&path, render_json(records))?;
    Ok(path)
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  {\"instance\":");
        push_json_str(&mut out, &r.instance);
        let _ = write!(out, ",\"wall_ms\":");
        push_json_f64(&mut out, r.wall_ms);
        let _ = write!(out, ",\"nodes\":{},\"objective\":", r.nodes);
        push_json_f64(&mut out, r.objective);
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON has no NaN/∞: non-finite values become `null`.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let start = out.len();
        let _ = write!(out, "{v}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_as_valid_flat_json() {
        let records = [
            Record { instance: "a/1".into(), wall_ms: 12.5, nodes: 37, objective: 3.75 },
            Record::timing("b \"q\"", 0.25),
        ];
        let json = render_json(&records);
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.contains("\"instance\":\"a/1\",\"wall_ms\":12.5,\"nodes\":37"), "{json}");
        assert!(json.contains("\"objective\":null"), "{json}");
        assert!(json.contains("\\\"q\\\""), "{json}");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let json =
            render_json(&[Record { instance: "x".into(), wall_ms: 3.0, nodes: 0, objective: 2.0 }]);
        assert!(json.contains("\"wall_ms\":3.0"), "{json}");
        assert!(json.contains("\"objective\":2.0"), "{json}");
    }
}
