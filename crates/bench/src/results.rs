//! The persisted bench trajectory: machine-readable measurement records
//! written to `results/BENCH_*.json` at the workspace root, so future PRs
//! can diff solver performance instead of eyeballing stderr.
//!
//! The format is deliberately minimal — a JSON array of flat records — and
//! written with std only (the bench binaries must not drag the solver's
//! serialisation choices along). `xtask`'s `serde_json` shim parses it
//! back.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One measurement: an instance label, its wall-clock cost, and — when the
/// run solved something — search-tree size and objective value.
#[derive(Debug, Clone)]
pub struct Record {
    /// Instance / benchmark label, e.g. `"engine_throughput/cold_64req/4"`.
    pub instance: String,
    /// Mean wall-clock per run, milliseconds.
    pub wall_ms: f64,
    /// Branch & bound nodes opened (0 for timing-only records).
    pub nodes: u64,
    /// Objective value (`NaN` serialises as `null` for timing-only records).
    pub objective: f64,
    /// Extra named measurements appended as additional JSON fields (e.g.
    /// `nodes_per_sec`, `warm_hit_rate`). `benchdiff` ignores fields it
    /// does not know, so extras never break the regression gate.
    pub extras: Vec<(String, f64)>,
}

impl Record {
    /// A timing-only record (no solve attached).
    pub fn timing(instance: impl Into<String>, wall_ms: f64) -> Self {
        Self {
            instance: instance.into(),
            wall_ms,
            nodes: 0,
            objective: f64::NAN,
            extras: Vec::new(),
        }
    }

    /// Append a named extra measurement (builder-style).
    #[must_use]
    pub fn with_extra(mut self, key: impl Into<String>, value: f64) -> Self {
        self.extras.push((key.into(), value));
        self
    }
}

/// `results/` at the workspace root (created on demand). Benches run with
/// the package dir as cwd, so the path is anchored at compile time instead.
pub fn results_dir() -> io::Result<PathBuf> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .ok_or_else(|| io::Error::other("bench crate has no workspace root"))?;
    let dir = root.join("results");
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Serialise `records` as a JSON array and write it to
/// `results/<file_name>` atomically enough for CI (write + rename is
/// overkill for a report artefact; a plain write suffices).
pub fn write_json(file_name: &str, records: &[Record]) -> io::Result<PathBuf> {
    let path = results_dir()?.join(file_name);
    fs::write(&path, render_json(records))?;
    Ok(path)
}

/// Merge `records` into `results/<file_name>`: records already in the file
/// whose instance starts with `prefix` are replaced by this run; records
/// from other benches (different prefix) are kept verbatim. This lets
/// several bench binaries share one `BENCH_*.json` — each owns its own
/// instance namespace and reruns idempotently.
///
/// The file is rewritten from its own one-record-per-line layout, so only
/// files produced by [`write_json`]/[`merge_json`] round-trip; a
/// hand-edited file with records spanning lines loses the foreign records.
pub fn merge_json(file_name: &str, prefix: &str, records: &[Record]) -> io::Result<PathBuf> {
    let path = results_dir()?.join(file_name);
    let existing = fs::read_to_string(&path).unwrap_or_default();
    fs::write(&path, merge_rendered(&existing, prefix, records))?;
    Ok(path)
}

/// The pure half of [`merge_json`]: line-filter `existing`, dropping this
/// run's `prefix` namespace, and append the fresh records.
fn merge_rendered(existing: &str, prefix: &str, records: &[Record]) -> String {
    let mut kept: Vec<&str> = Vec::new();
    for line in existing.lines() {
        let body = line.trim().trim_end_matches(',');
        if !body.starts_with('{') {
            continue;
        }
        // instance labels never contain quotes (bench code picks them),
        // so a plain split is enough to read the label back
        let instance =
            body.strip_prefix("{\"instance\":\"").and_then(|rest| rest.split('"').next());
        match instance {
            Some(name) if name.starts_with(prefix) => {} // superseded
            Some(_) => kept.push(body),
            None => {}
        }
    }
    let mut out = String::from("[\n");
    let mut first = true;
    for line in &kept {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(line);
    }
    for r in records {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        render_record(&mut out, r);
    }
    out.push_str("\n]\n");
    out
}

fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        render_record(&mut out, r);
    }
    out.push_str("\n]\n");
    out
}

fn render_record(out: &mut String, r: &Record) {
    out.push_str("{\"instance\":");
    push_json_str(out, &r.instance);
    let _ = write!(out, ",\"wall_ms\":");
    push_json_f64(out, r.wall_ms);
    let _ = write!(out, ",\"nodes\":{},\"objective\":", r.nodes);
    push_json_f64(out, r.objective);
    for (key, value) in &r.extras {
        out.push(',');
        push_json_str(out, key);
        out.push(':');
        push_json_f64(out, *value);
    }
    out.push('}');
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON has no NaN/∞: non-finite values become `null`.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let start = out.len();
        let _ = write!(out, "{v}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(instance: &str, wall_ms: f64, nodes: u64, objective: f64) -> Record {
        Record { instance: instance.into(), wall_ms, nodes, objective, extras: Vec::new() }
    }

    #[test]
    fn records_render_as_valid_flat_json() {
        let records = [rec("a/1", 12.5, 37, 3.75), Record::timing("b \"q\"", 0.25)];
        let json = render_json(&records);
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.contains("\"instance\":\"a/1\",\"wall_ms\":12.5,\"nodes\":37"), "{json}");
        assert!(json.contains("\"objective\":null"), "{json}");
        assert!(json.contains("\\\"q\\\""), "{json}");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let json = render_json(&[rec("x", 3.0, 0, 2.0)]);
        assert!(json.contains("\"wall_ms\":3.0"), "{json}");
        assert!(json.contains("\"objective\":2.0"), "{json}");
    }

    #[test]
    fn extras_append_as_named_fields() {
        let json = render_json(&[Record::timing("a/1", 1.5)
            .with_extra("nodes_per_sec", 1234.5)
            .with_extra("warm_hit_rate", 0.875)]);
        assert!(json.contains("\"nodes_per_sec\":1234.5"), "{json}");
        assert!(json.contains("\"warm_hit_rate\":0.875"), "{json}");
    }

    #[test]
    fn merge_replaces_own_prefix_and_keeps_foreign_records() {
        let existing = render_json(&[
            rec("alpha/1", 1.0, 0, f64::NAN),
            rec("beta/1", 2.0, 5, 9.0),
            rec("alpha/2", 3.0, 0, f64::NAN),
        ]);
        let merged = merge_rendered(&existing, "alpha/", &[rec("alpha/3", 7.0, 1, 4.0)]);
        assert!(!merged.contains("alpha/1"), "{merged}");
        assert!(!merged.contains("alpha/2"), "{merged}");
        assert!(merged.contains("beta/1"), "{merged}");
        assert!(merged.contains("alpha/3"), "{merged}");
        // the merged file still parses as a flat JSON array shape
        assert!(merged.starts_with("[\n") && merged.ends_with("]\n"), "{merged}");
    }

    #[test]
    fn merge_into_empty_is_write() {
        let merged = merge_rendered("", "x/", &[rec("x/1", 1.0, 0, f64::NAN)]);
        assert_eq!(merged, render_json(&[rec("x/1", 1.0, 0, f64::NAN)]));
    }
}
