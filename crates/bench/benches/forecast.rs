//! Time-series substrate cost: SARIMA CSS fitting and forecasting on the
//! two-month estimation window, plus ACF/decomposition primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use rrp_spotmarket::{SpotArchive, VmClass};
use rrp_timeseries::acf::{acf, pacf};
use rrp_timeseries::decompose::decompose;
use rrp_timeseries::sarima::SarimaSpec;

fn bench_forecast(c: &mut Criterion) {
    let archive = SpotArchive::canonical(VmClass::C1Medium);
    let est = archive.estimation_window();
    let xs = est.values().to_vec();

    let mut group = c.benchmark_group("forecast");
    group.bench_function("acf30", |b| b.iter(|| acf(&xs, 30)));
    group.bench_function("pacf30", |b| b.iter(|| pacf(&xs, 30)));
    group.bench_function("decompose24", |b| b.iter(|| decompose(&xs, 24).seasonal[0]));

    group.sample_size(10);
    group.bench_function("fit_arma_2_1", |b| {
        b.iter(|| SarimaSpec { p: 2, d: 0, q: 1, sp: 0, sd: 0, sq: 0, s: 24 }.fit(&xs).aic)
    });
    group.bench_function("fit_sarima_201_100", |b| {
        b.iter(|| SarimaSpec { p: 2, d: 0, q: 1, sp: 1, sd: 0, sq: 0, s: 24 }.fit(&xs).aic)
    });
    let fit = SarimaSpec { p: 2, d: 0, q: 1, sp: 1, sd: 0, sq: 0, s: 24 }.fit(&xs);
    group.bench_function("forecast24", |b| b.iter(|| fit.forecast(24)));
    group.finish();
}

criterion_group!(benches, bench_forecast);
criterion_main!(benches);
