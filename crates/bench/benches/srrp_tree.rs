//! SRRP deterministic-equivalent scaling with scenario-tree size, and the
//! formulation ablation: facility-location reformulation vs the textbook
//! big-M form of Eq. (13)–(19).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrp_core::demand::DemandModel;
use rrp_core::sampling::stage_distributions;
use rrp_core::{CostSchedule, PlanningParams, ScenarioTree, SrrpProblem};
use rrp_milp::MilpOptions;
use rrp_spotmarket::{CostRates, EmpiricalDist, SpotArchive, VmClass};

fn problem(horizon: usize) -> SrrpProblem {
    let class = VmClass::C1Medium;
    let archive = SpotArchive::canonical(class);
    let history = archive.estimation_window();
    let base = EmpiricalDist::from_history(history.values(), 3);
    let bids = vec![base.mean(); horizon];
    let dists = stage_distributions(&base, &bids, class.on_demand_price());
    let tree = ScenarioTree::from_stage_distributions(&dists, 500_000);
    let demand = DemandModel::paper_default().sample(horizon, 5);
    let schedule = CostSchedule::ec2(vec![0.0; horizon], demand, &CostRates::ec2_2011());
    SrrpProblem::new(schedule, PlanningParams::default(), tree)
}

fn bench_srrp(c: &mut Criterion) {
    let mut group = c.benchmark_group("srrp_tree");
    group.sample_size(10);
    for horizon in [3usize, 4, 5, 6] {
        let p = problem(horizon);
        let nodes = p.tree.len();
        group.bench_with_input(BenchmarkId::new("fl", nodes), &p, |b, p| {
            b.iter(|| {
                p.solve_milp(&MilpOptions { node_limit: 100_000, ..Default::default() })
                    .unwrap()
                    .expected_cost
            })
        });
        if horizon <= 4 {
            group.bench_with_input(BenchmarkId::new("bigm", nodes), &p, |b, p| {
                b.iter(|| {
                    p.solve_milp_bigm(&MilpOptions { node_limit: 100_000, ..Default::default() })
                        .unwrap()
                        .expected_cost
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_srrp);
criterion_main!(benches);
