//! LP substrate scaling: dense reference engine vs sparse LU engine on
//! transportation-style LPs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrp_lp::{Cmp, Model, Sense};

/// Balanced transportation problem with `k` sources and `k` sinks.
fn transportation(k: usize) -> Model {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(k as u64);
    let mut m = Model::new(Sense::Minimize);
    let mut vars = vec![vec![0usize; k]; k];
    for (s, row) in vars.iter_mut().enumerate() {
        for (t, v) in row.iter_mut().enumerate() {
            *v = m.add_var(0.0, f64::INFINITY, rng.gen_range(1.0..10.0), &format!("x{s}_{t}"));
        }
    }
    let supply: Vec<f64> = (0..k).map(|_| rng.gen_range(5.0..15.0)).collect();
    let total: f64 = supply.iter().sum();
    for s in 0..k {
        let terms: Vec<_> = (0..k).map(|t| (vars[s][t], 1.0)).collect();
        m.add_con(&terms, Cmp::Eq, supply[s]);
    }
    for t in 0..k {
        let terms: Vec<_> = (0..k).map(|s| (vars[s][t], 1.0)).collect();
        m.add_con(&terms, Cmp::Eq, total / k as f64);
    }
    m
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_simplex");
    for k in [4usize, 8, 16] {
        let m = transportation(k);
        group.bench_with_input(BenchmarkId::new("sparse", k * k), &m, |b, m| {
            b.iter(|| m.solve().unwrap().objective)
        });
        group.bench_with_input(BenchmarkId::new("dense", k * k), &m, |b, m| {
            b.iter(|| m.solve_dense().unwrap().objective)
        });
    }
    // sparse-only on a size where the dense engine is impractical
    let big = transportation(32);
    group.sample_size(10);
    group.bench_function("sparse/1024", |b| b.iter(|| big.solve().unwrap().objective));
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
