//! Ablation: sequential vs parallel branch & bound on knapsack-style
//! binary programs whose trees are deep enough to amortise batching.
//!
//! Also persists node-throughput / warm-hit records for the deepest
//! knapsack into `results/BENCH_milp.json` (its own instance namespace,
//! merged alongside `milp_lotsizing`'s).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrp_bench::results::{self, Record};
use rrp_lp::{Cmp, Model, Sense};
use rrp_milp::{solve_parallel, MilpOptions, MilpProblem};

/// Correlated binary knapsack: profits ≈ weights makes the LP bound weak
/// and forces real tree search.
fn knapsack(n: usize, seed: u64) -> MilpProblem {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Maximize);
    let mut weights = Vec::with_capacity(n);
    let mut vars = Vec::with_capacity(n);
    for i in 0..n {
        let w: f64 = rng.gen_range(10.0..30.0);
        let p = w + rng.gen_range(-1.0..1.0);
        vars.push(m.add_var(0.0, 1.0, p, &format!("x{i}")));
        weights.push(w);
    }
    let cap: f64 = weights.iter().sum::<f64>() * 0.5;
    let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
    m.add_con(&terms, Cmp::Le, cap);
    MilpProblem::new(m, vars)
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_bb");
    group.sample_size(10);
    for n in [14usize, 18] {
        let p = knapsack(n, 99);
        let opts = MilpOptions { node_limit: 50_000, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("sequential", n), &p, |b, p| {
            b.iter(|| p.solve(&opts).map(|s| s.objective).unwrap_or(0.0))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &p, |b, p| {
            b.iter(|| solve_parallel(p, &opts).map(|s| s.objective).unwrap_or(0.0))
        });
    }
    group.finish();

    persist_records();
}

/// Node-throughput record from one solve (see `sol.lp_stats` extras).
fn record_from(label: &str, wall_ms: f64, sol: &rrp_milp::MilpSolution) -> Record {
    let nodes = sol.nodes.max(1) as f64;
    Record {
        instance: label.to_string(),
        wall_ms,
        nodes: sol.nodes as u64,
        objective: sol.objective,
        extras: Vec::new(),
    }
    .with_extra("nodes_per_sec", nodes / (wall_ms / 1e3).max(1e-9))
    .with_extra("lp_iters_per_node", sol.lp_stats.iterations as f64 / nodes)
    .with_extra("warm_hit_rate", sol.lp_stats.warm_hit_rate())
}

/// Sequential warm vs cold (`warm_start: false`) plus parallel warm on the
/// n=18 knapsack, with cross-checked objectives, merged into
/// `BENCH_milp.json` under this bench's namespace.
fn persist_records() {
    let mut records: Vec<Record> = criterion::take_results()
        .into_iter()
        .map(|r| Record::timing(r.label, r.mean_ns as f64 / 1e6))
        .collect();

    let n = 18;
    let p = knapsack(n, 99);
    let warm_opts = MilpOptions { node_limit: 50_000, ..Default::default() };
    let cold_opts = MilpOptions { warm_start: false, ..warm_opts.clone() };
    let solve = |label: String, opts: &MilpOptions, parallel: bool| {
        let t0 = Instant::now();
        let sol = if parallel { solve_parallel(&p, opts) } else { p.solve(opts) }
            .expect("bench knapsack is feasible");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        record_from(&label, wall_ms, &sol)
    };
    let warm = solve(format!("parallel_bb/knapsack{n}/seq_warm"), &warm_opts, false);
    let cold = solve(format!("parallel_bb/knapsack{n}/seq_cold"), &cold_opts, false);
    let par = solve(format!("parallel_bb/knapsack{n}/par_warm"), &warm_opts, true);
    for other in [&cold, &par] {
        assert!(
            (warm.objective - other.objective).abs() <= 1e-6 * (1.0 + warm.objective.abs()),
            "optimal objectives diverged: {} vs {}",
            warm.objective,
            other.objective
        );
    }
    records.extend([warm, cold, par]);

    match results::merge_json("BENCH_milp.json", "parallel_bb", &records) {
        Ok(path) => eprintln!("wrote {} ({} records)", path.display(), records.len()),
        Err(e) => eprintln!("warning: could not write BENCH_milp.json: {e}"),
    }
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
