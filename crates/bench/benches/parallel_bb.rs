//! Ablation: sequential vs parallel branch & bound on knapsack-style
//! binary programs whose trees are deep enough to amortise batching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrp_lp::{Cmp, Model, Sense};
use rrp_milp::{solve_parallel, MilpOptions, MilpProblem};

/// Correlated binary knapsack: profits ≈ weights makes the LP bound weak
/// and forces real tree search.
fn knapsack(n: usize, seed: u64) -> MilpProblem {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Maximize);
    let mut weights = Vec::with_capacity(n);
    let mut vars = Vec::with_capacity(n);
    for i in 0..n {
        let w: f64 = rng.gen_range(10.0..30.0);
        let p = w + rng.gen_range(-1.0..1.0);
        vars.push(m.add_var(0.0, 1.0, p, &format!("x{i}")));
        weights.push(w);
    }
    let cap: f64 = weights.iter().sum::<f64>() * 0.5;
    let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
    m.add_con(&terms, Cmp::Le, cap);
    MilpProblem::new(m, vars)
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_bb");
    group.sample_size(10);
    for n in [14usize, 18] {
        let p = knapsack(n, 99);
        let opts = MilpOptions { node_limit: 50_000, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("sequential", n), &p, |b, p| {
            b.iter(|| p.solve(&opts).map(|s| s.objective).unwrap_or(0.0))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &p, |b, p| {
            b.iter(|| solve_parallel(p, &opts).map(|s| s.objective).unwrap_or(0.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
