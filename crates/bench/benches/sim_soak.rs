//! Multi-tenant closed-loop soak benchmark: N concurrent simulated
//! tenants drive full interruption/recovery episodes through one shared
//! engine, exercising the plan cache, the degradation ladder and the
//! metrics stack at once.
//!
//! Run with: `cargo bench --bench sim_soak`
//!
//! Besides the stderr report, the run persists its timings plus soak
//! throughput/interruption counters to `results/BENCH_sim.json` for
//! `cargo run -p xtask -- benchdiff`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rrp_bench::results::{self, Record};
use rrp_engine::Engine;
use rrp_sim::{run_soak, SoakConfig};

fn soak_cfg(tenants: usize) -> SoakConfig {
    SoakConfig { tenants, slots: 8, horizon: 4, ..Default::default() }
}

fn sim_soak(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_soak");
    group.sample_size(10);

    // cold: a fresh engine per iteration, every tenant's episode solves
    for tenants in [32usize, 128] {
        group.bench_with_input(BenchmarkId::new("cold", tenants), &tenants, |b, &n| {
            b.iter(|| {
                let engine = Engine::new(4);
                black_box(run_soak(&engine, &soak_cfg(n)))
            })
        });
    }

    // warm: one engine, first soak heats the plan cache, reruns replay
    group.bench_function("warm/128", |b| {
        let engine = Engine::new(4);
        let _ = run_soak(&engine, &soak_cfg(128));
        b.iter(|| black_box(run_soak(&engine, &soak_cfg(128))));
        let m = engine.metrics();
        assert!(m.cache_hits > 0, "warm soak produced zero cache hits");
        eprintln!("warm soak cache: {} hits / {} misses", m.cache_hits, m.cache_misses);
    });

    group.finish();

    // Persist the trajectory: shim timing records plus one instrumented
    // cold soak with its throughput and interruption counters as extras.
    let mut records: Vec<Record> = criterion::take_results()
        .into_iter()
        .map(|r| Record::timing(r.label, r.mean_ns as f64 / 1e6))
        .collect();
    let engine = Engine::new(4);
    let out = run_soak(&engine, &soak_cfg(128));
    assert!(out.unrecovered_gb < 1e-6, "failover soak stranded demand");
    records.push(
        Record::timing("sim_soak/cold/128+counters", out.wall_ms)
            .with_extra("rps", out.rps)
            .with_extra("requests", out.requests as f64)
            .with_extra("interruptions", out.interruptions as f64)
            .with_extra("violated_slots", out.violated_slots as f64)
            .with_extra("deadline_misses", out.deadline_misses as f64),
    );

    match results::write_json("BENCH_sim.json", &records) {
        Ok(path) => eprintln!("wrote {} ({} records)", path.display(), records.len()),
        Err(e) => eprintln!("warning: could not write BENCH_sim.json: {e}"),
    }
}

criterion_group!(benches, sim_soak);
criterion_main!(benches);
