//! Throughput of the planning service on a 64-request mixed-policy batch:
//! 1 worker vs 4 workers on a cold cache, plus a cache-warm rerun.
//!
//! Run with: `cargo bench --bench engine_throughput`
//!
//! Besides the stderr report, the run persists its timings (and one
//! telemetry-instrumented cold run's node count / total objective) to
//! `results/BENCH_engine.json` so later PRs can diff engine performance.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrp_bench::results::{self, Record};
use rrp_core::{CostSchedule, PlanningParams, ScenarioTree};
use rrp_engine::{Engine, EngineConfig, PlanRequest, PolicyKind};
use rrp_spotmarket::{CostRates, EmpiricalDist};

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Stochastic,
    PolicyKind::Deterministic,
    PolicyKind::DynamicProgram,
    PolicyKind::OnDemand,
];

fn batch() -> Vec<PlanRequest> {
    (0..64)
        .map(|i| {
            // horizon 7–8 keeps a stochastic solve around 25–100 ms — heavy
            // enough that worker parallelism, not queue overhead, dominates
            let horizon = 7 + i % 2;
            let mut rng = StdRng::seed_from_u64(7000 + i as u64);
            let demand: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.1..1.0)).collect();
            let policy = POLICIES[i % POLICIES.len()];
            let tree = matches!(policy, PolicyKind::Stochastic).then(|| {
                let d = EmpiricalDist::from_parts(vec![0.04, 0.12], vec![0.6, 0.4]);
                ScenarioTree::from_stage_distributions(&vec![d; horizon], 100_000)
            });
            PlanRequest {
                app_id: format!("bench-{i}"),
                vm_class: "m1.small".into(),
                schedule: CostSchedule::ec2(vec![0.06; horizon], demand, &CostRates::ec2_2011()),
                params: PlanningParams::default(),
                tree,
                policy,
                deadline: Duration::from_secs(60),
                seed: i as u64,
            }
        })
        .collect()
}

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    let requests = batch();
    // the 1-vs-4-worker comparison only shows a speedup when the host
    // actually has cores to hand out — print it so results are readable
    eprintln!("available parallelism: {:?}", std::thread::available_parallelism().map(|n| n.get()));

    // cold cache: a fresh engine per iteration, so every request solves
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("cold_64req", workers), &workers, |b, &w| {
            b.iter(|| {
                let engine = Engine::new(w);
                black_box(engine.run_batch(requests.clone()))
            })
        });
    }

    // warm cache: one engine, batch pre-solved once, reruns replay plans
    group.bench_function("warm_64req/4", |b| {
        let engine = Engine::new(4);
        let _ = engine.run_batch(requests.clone());
        b.iter(|| black_box(engine.run_batch(requests.clone())));
        let m = engine.metrics();
        assert!(m.cache_hits > 0, "warm rerun produced zero cache hits");
        eprintln!(
            "warm cache: {} hits / {} misses (hit rate {:.3})",
            m.cache_hits, m.cache_misses, m.cache_hit_rate
        );
    });

    group.finish();

    // Persist the trajectory: the shim's timing records, plus one cold run
    // with solver-event counting on for search-tree size and objective.
    let mut records: Vec<Record> = criterion::take_results()
        .into_iter()
        .map(|r| Record::timing(r.label, r.mean_ns as f64 / 1e6))
        .collect();
    let engine =
        Engine::with_config(4, EngineConfig { count_solver_events: true, ..Default::default() });
    let t0 = Instant::now();
    let responses = engine.run_batch(requests.clone());
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let metrics = engine.metrics();
    let objective: f64 =
        responses.iter().filter_map(|r| r.plan.as_ref()).map(|p| p.objective).sum();
    records.push(Record {
        instance: "engine_throughput/cold_64req/4+counters".to_string(),
        wall_ms,
        nodes: metrics.milp_nodes_total,
        objective,
        extras: Vec::new(),
    });

    // The observability overhead record: metrics exposition on, with a
    // 10 Hz scraper pulling /metrics for the whole run — the acceptance
    // scenario ("metrics enabled + scraper within 5% of the baseline").
    records.push(cold_run_with_scraper(&requests));

    // The profiler overhead pair: profiler-off vs 97 Hz sampling + flight
    // recorder, measured back-to-back (see `prof_overhead_records`). CI
    // gates their ratio at 1.02 with `xtask benchdiff --assert-ratio`.
    records.extend(prof_overhead_records(&requests));

    // The SLO overhead pair: error budgets + burn-rate windows + tail
    // sampling on vs off, same interleaved min-of-pairs protocol. CI
    // gates `+slo_on` at ≤ 1.02 × `+slo_off`.
    records.extend(slo_overhead_records(&requests));

    // The sharded-vs-global submit-path pair: a warm cache-hit storm where
    // per-request work is a hash lookup, so dispatch overhead (channel
    // wakeups vs batched shard drains + one wave signal) is the whole
    // measurement. CI gates `sharded4` at ≤ 0.5 × `global` — the ≥2×
    // scale-out acceptance.
    records.extend(submit_path_records());

    // The batched-vs-unbatched re-plan pair: same sharded engine, same
    // cold instances; `run_replan_wave` shares each shape group's leader
    // basis and completes through one wave instead of per-request waits.
    records.extend(replan_records());

    // merge (not overwrite): `engine_soak` owns its own namespace in the
    // same BENCH_engine.json
    match results::merge_json("BENCH_engine.json", "engine_throughput/", &records) {
        Ok(path) => eprintln!("wrote {} ({} records)", path.display(), records.len()),
        Err(e) => eprintln!("warning: could not write BENCH_engine.json: {e}"),
    }
}

/// 2048 cache-hitting requests per run: 32 distinct problems × 64 tenant
/// aliases, so the sharded engine spreads them across all 4 shards while
/// every request after the warm-up run replays a cached plan.
fn storm_batch() -> Vec<PlanRequest> {
    (0..2048)
        .map(|i| {
            let horizon = 6;
            let mut rng = StdRng::seed_from_u64(9000 + (i % 32) as u64);
            let demand: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.1..1.0)).collect();
            PlanRequest {
                app_id: format!("storm-{i}"),
                vm_class: "m1.small".into(),
                schedule: CostSchedule::ec2(vec![0.06; horizon], demand, &CostRates::ec2_2011()),
                params: PlanningParams::default(),
                tree: None,
                policy: PolicyKind::Deterministic,
                deadline: Duration::from_secs(60),
                seed: i as u64,
            }
        })
        .collect()
}

/// The scale-out acceptance pair: submit-path throughput of the sharded
/// engine vs the global-lock baseline, both with 4 workers, measured on
/// the warm cache-hit storm with the interleaved min-of-pairs protocol
/// (see [`prof_overhead_records`] for why min-of-pairs). The storm flows
/// in back-to-back 512-request waves — the same wave discipline as the
/// `engine_soak` intake loop — so the pair measures sustained submission,
/// not one monolithic batch. `xtask benchdiff --assert-ratio
/// …/sharded4:…/global --max-ratio 0.5` gates the ≥2×.
fn submit_path_records() -> [Record; 2] {
    const PAIRS: usize = 8;
    const WAVE: usize = 512;
    let requests = storm_batch();
    let global = Engine::new(4);
    let sharded = Engine::with_config(
        4,
        EngineConfig { shard: Some(rrp_engine::ShardConfig::default()), ..Default::default() },
    );
    // pre-solve once per engine so the timed runs are pure cache hits
    for engine in [&global, &sharded] {
        let warm = engine.run_batch(requests.clone());
        assert_eq!(warm.len(), requests.len());
    }
    let run = |engine: &Engine| -> f64 {
        // clone the waves outside the timed region: request construction
        // is identical on both sides and would only dilute the
        // dispatch-path ratio
        let waves: Vec<Vec<PlanRequest>> = requests.chunks(WAVE).map(|w| w.to_vec()).collect();
        let t0 = Instant::now();
        for wave in waves {
            let out = black_box(engine.run_batch(wave));
            debug_assert!(out.iter().all(|r| r.cache_hit), "storm rerun must be all hits");
        }
        t0.elapsed().as_secs_f64() * 1e3
    };
    let (mut global_ms, mut sharded_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..PAIRS {
        global_ms = global_ms.min(run(&global));
        sharded_ms = sharded_ms.min(run(&sharded));
    }
    let n = requests.len() as f64;
    eprintln!(
        "submit path storm ({n} hits): global {global_ms:.2} ms vs sharded4 {sharded_ms:.2} ms \
         (speedup {:.2}x, {:.0} vs {:.0} req/s)",
        global_ms / sharded_ms,
        n / (global_ms / 1e3),
        n / (sharded_ms / 1e3),
    );
    [
        Record::timing("engine_throughput/submit_path/global".to_string(), global_ms)
            .with_extra("req_per_sec", n / (global_ms / 1e3)),
        Record::timing("engine_throughput/submit_path/sharded4".to_string(), sharded_ms)
            .with_extra("req_per_sec", n / (sharded_ms / 1e3)),
    ]
}

/// The re-plan batching pair: 24 cold rolling-horizon requests in two
/// shape groups, solved by one `run_replan_wave` vs 24 sequential
/// submit/wait round trips. Fresh engines per iteration keep both sides
/// cold (a warm cache would short-circuit the solves this pair measures).
fn replan_records() -> [Record; 2] {
    const PAIRS: usize = 4;
    let reqs: Vec<PlanRequest> = (0..24)
        .map(|i| {
            let horizon = 9 + i % 2; // two shape groups
            let mut rng = StdRng::seed_from_u64(11_000 + i as u64);
            let demand: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.1..1.0)).collect();
            PlanRequest {
                app_id: format!("replan-{i}"),
                vm_class: "m1.small".into(),
                schedule: CostSchedule::ec2(vec![0.06; horizon], demand, &CostRates::ec2_2011()),
                params: PlanningParams::default(),
                tree: None,
                policy: PolicyKind::Deterministic,
                deadline: Duration::from_secs(60),
                seed: i as u64,
            }
        })
        .collect();
    let fresh = || {
        Engine::with_config(
            4,
            EngineConfig { shard: Some(rrp_engine::ShardConfig::default()), ..Default::default() },
        )
    };
    let run = |batched: bool| -> f64 {
        let engine = fresh();
        let t0 = Instant::now();
        if batched {
            black_box(engine.run_replan_wave(reqs.clone()));
        } else {
            for req in reqs.clone() {
                black_box(engine.submit(req).wait());
            }
        }
        t0.elapsed().as_secs_f64() * 1e3
    };
    run(true); // warm-up, untimed
    let (mut unbatched_ms, mut batched_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..PAIRS {
        unbatched_ms = unbatched_ms.min(run(false));
        batched_ms = batched_ms.min(run(true));
    }
    eprintln!(
        "replan pair (24 cold): unbatched {unbatched_ms:.1} ms vs batched {batched_ms:.1} ms \
         (speedup {:.2}x)",
        unbatched_ms / batched_ms
    );
    [
        Record::timing("engine_throughput/replan/unbatched24".to_string(), unbatched_ms),
        Record::timing("engine_throughput/replan/batched24".to_string(), batched_ms),
    ]
}

/// One cold 64-request batch on a metrics-serving engine while a second
/// thread scrapes `/metrics` at 10 Hz, like a tight Prometheus poll.
fn cold_run_with_scraper(requests: &[PlanRequest]) -> Record {
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let engine = Engine::with_config(
        4,
        EngineConfig {
            metrics: Some(rrp_engine::MetricsConfig {
                addr: Some("127.0.0.1:0".to_string()),
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let addr = engine.metrics_addr().expect("bench engine serves metrics");
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                    let _ = s.write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n");
                    let mut buf = String::new();
                    let _ = s.read_to_string(&mut buf);
                    assert!(buf.contains("rrp_completed_total"), "scrape missing families");
                    scrapes += 1;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            scrapes
        })
    };
    let t0 = Instant::now();
    let responses = engine.run_batch(requests.to_vec());
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper thread");
    let metrics = engine.metrics();
    eprintln!("metrics+scraper cold run: {wall_ms:.1} ms under {scrapes} scrapes");
    let objective: f64 =
        responses.iter().filter_map(|r| r.plan.as_ref()).map(|p| p.objective).sum();
    Record {
        instance: "engine_throughput/cold_64req/4+metrics+scraper".to_string(),
        wall_ms,
        nodes: metrics.milp_nodes_total,
        objective,
        extras: Vec::new(),
    }
}

/// The profiler-overhead pair for the CI `profiler-overhead` gate:
/// cold 64-request batches with the profiler off vs sampling at 97 Hz
/// (flight recorder armed, spike triggers pinned shut so no dump pollutes
/// the timing).
///
/// The two configurations run *interleaved* in one process and each
/// records its **min** wall time: scheduler noise on a loaded runner is
/// one-sided (preemption only ever adds time), so the min-of-pairs ratio
/// isolates the configuration delta where a ratio of two means would
/// mostly compare noise. `xtask benchdiff --assert-ratio` then gates
/// `+prof97` at ≤ 1.02 × `+prof_off`.
fn prof_overhead_records(requests: &[PlanRequest]) -> [Record; 2] {
    const PAIRS: usize = 6;
    let run = |prof: bool| -> f64 {
        let engine = Engine::with_config(
            4,
            EngineConfig {
                prof: prof.then(|| rrp_engine::ProfConfig {
                    sample_hz: 97,
                    deadline_miss_spike: 0,
                    budget_exhaustion_spike: 0,
                    ..Default::default()
                }),
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        black_box(engine.run_batch(requests.to_vec()));
        t0.elapsed().as_secs_f64() * 1e3
    };
    run(false); // warm-up, untimed
    let (mut off_ms, mut on_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..PAIRS {
        off_ms = off_ms.min(run(false));
        on_ms = on_ms.min(run(true));
    }
    eprintln!(
        "profiler overhead pair: off {off_ms:.1} ms vs 97 Hz {on_ms:.1} ms (ratio {:.4})",
        on_ms / off_ms
    );
    [
        Record::timing("engine_throughput/cold_64req/4+prof_off".to_string(), off_ms),
        Record::timing("engine_throughput/cold_64req/4+prof97".to_string(), on_ms),
    ]
}

/// The SLO-overhead pair for the CI `slo-overhead` gate: cold 64-request
/// batches with the SLO engine off vs on (default objectives, burn-rate
/// windows, and tail sampling — the healthy path, where retention
/// assembles then discards every timeline).
///
/// Both sides keep the trace pipeline on (`count_solver_events`), so the
/// pair isolates the SLO engine's own cost — ledger updates, window
/// rings, timeline capture — instead of re-measuring the cost of turning
/// tracing on, which the `+counters` record already carries.
///
/// Same interleaved min-of-pairs protocol as [`prof_overhead_records`],
/// and for the same reason: scheduler preemption only ever adds time, so
/// min-of-pairs isolates the configuration delta. `xtask benchdiff
/// --assert-ratio` gates `+slo_on` at ≤ 1.02 × `+slo_off`.
fn slo_overhead_records(requests: &[PlanRequest]) -> [Record; 2] {
    const PAIRS: usize = 6;
    let run = |slo: bool| -> f64 {
        let engine = Engine::with_config(
            4,
            EngineConfig {
                count_solver_events: true,
                slo: slo.then(rrp_engine::SloConfig::default),
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        black_box(engine.run_batch(requests.to_vec()));
        t0.elapsed().as_secs_f64() * 1e3
    };
    run(false); // warm-up, untimed
    let (mut off_ms, mut on_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..PAIRS {
        off_ms = off_ms.min(run(false));
        on_ms = on_ms.min(run(true));
    }
    eprintln!(
        "slo overhead pair: off {off_ms:.1} ms vs on {on_ms:.1} ms (ratio {:.4})",
        on_ms / off_ms
    );
    [
        Record::timing("engine_throughput/cold_64req/4+slo_off".to_string(), off_ms),
        Record::timing("engine_throughput/cold_64req/4+slo_on".to_string(), on_ms),
    ]
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
