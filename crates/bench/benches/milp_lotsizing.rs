//! Ablation: generic branch & bound vs the structure-exploiting
//! Wagner–Whitin DP on uncapacitated DRRP instances of growing horizon —
//! quantifying the value of the paper's "dynamic lot-sizing" observation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrp_core::demand::DemandModel;
use rrp_core::{wagner_whitin, CostSchedule, DrrpProblem, PlanningParams};
use rrp_milp::MilpOptions;
use rrp_spotmarket::CostRates;

fn instance(horizon: usize) -> CostSchedule {
    let demand = DemandModel::paper_default().sample(horizon, horizon as u64);
    let compute: Vec<f64> = (0..horizon).map(|t| 0.2 + 0.1 * ((t % 24) as f64 / 24.0)).collect();
    CostSchedule::ec2(compute, demand, &CostRates::ec2_2011())
}

fn bench_lotsizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_lotsizing");
    // B&B solves take ~1 s at 24 slots; keep sampling modest
    group.sample_size(10);
    for horizon in [12usize, 24] {
        let s = instance(horizon);
        let p = DrrpProblem::new(s.clone(), PlanningParams::default());
        group.bench_with_input(BenchmarkId::new("bb_milp", horizon), &p, |b, p| {
            b.iter(|| p.solve_milp(&MilpOptions::default()).unwrap().objective)
        });
        group.bench_with_input(BenchmarkId::new("wagner_whitin", horizon), &s, |b, s| {
            b.iter(|| wagner_whitin::solve(s, &PlanningParams::default()).objective)
        });
    }
    // WW-only long-horizon scaling (a week, a month)
    for horizon in [168usize, 720] {
        let s = instance(horizon);
        group.bench_with_input(BenchmarkId::new("wagner_whitin", horizon), &s, |b, s| {
            b.iter(|| wagner_whitin::solve(s, &PlanningParams::default()).objective)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lotsizing);
criterion_main!(benches);
