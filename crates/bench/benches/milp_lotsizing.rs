//! Ablation: generic branch & bound vs the structure-exploiting
//! Wagner–Whitin DP on uncapacitated DRRP instances of growing horizon —
//! quantifying the value of the paper's "dynamic lot-sizing" observation.
//!
//! Besides the stderr report, the run persists node-throughput records —
//! warm dual-simplex B&B vs a cold (`warm_start: false`) baseline on a
//! capacitated DRRP instance — into `results/BENCH_milp.json` (merged with
//! `parallel_bb`'s namespace) for `xtask benchdiff`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrp_bench::results::{self, Record};
use rrp_core::demand::DemandModel;
use rrp_core::{wagner_whitin, CostSchedule, DrrpProblem, PlanningParams};
use rrp_milp::{MilpOptions, MilpProblem};
use rrp_spotmarket::CostRates;

fn instance(horizon: usize) -> CostSchedule {
    let demand = DemandModel::paper_default().sample(horizon, horizon as u64);
    let compute: Vec<f64> = (0..horizon).map(|t| 0.2 + 0.1 * ((t % 24) as f64 / 24.0)).collect();
    CostSchedule::ec2(compute, demand, &CostRates::ec2_2011())
}

fn bench_lotsizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_lotsizing");
    // B&B solves take ~1 s at 24 slots; keep sampling modest
    group.sample_size(10);
    for horizon in [12usize, 24] {
        let s = instance(horizon);
        let p = DrrpProblem::new(s.clone(), PlanningParams::default());
        group.bench_with_input(BenchmarkId::new("bb_milp", horizon), &p, |b, p| {
            b.iter(|| p.solve_milp(&MilpOptions::default()).unwrap().objective)
        });
        group.bench_with_input(BenchmarkId::new("wagner_whitin", horizon), &s, |b, s| {
            b.iter(|| wagner_whitin::solve(s, &PlanningParams::default()).objective)
        });
    }
    // WW-only long-horizon scaling (a week, a month)
    for horizon in [168usize, 720] {
        let s = instance(horizon);
        group.bench_with_input(BenchmarkId::new("wagner_whitin", horizon), &s, |b, s| {
            b.iter(|| wagner_whitin::solve(s, &PlanningParams::default()).objective)
        });
    }
    group.finish();

    persist_records();
}

/// Solve once and turn the search statistics into a BENCH record: wall
/// clock, tree size, and the warm-start extras (`nodes_per_sec`,
/// `lp_iters_per_node`, `warm_hit_rate`) the perf acceptance gate reads.
fn measure(label: &str, milp: &MilpProblem, opts: &MilpOptions) -> Record {
    let t0 = Instant::now();
    let sol = milp.solve(opts).expect("bench instance is feasible");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let nodes = sol.nodes.max(1) as f64;
    Record {
        instance: label.to_string(),
        wall_ms,
        nodes: sol.nodes as u64,
        objective: sol.objective,
        extras: Vec::new(),
    }
    .with_extra("nodes_per_sec", nodes / (wall_ms / 1e3).max(1e-9))
    .with_extra("lp_iters_per_node", sol.lp_stats.iterations as f64 / nodes)
    .with_extra("warm_hit_rate", sol.lp_stats.warm_hit_rate())
}

/// The warm-vs-cold node-throughput comparison on a capacitated DRRP
/// instance (capacity binds, so the tree is non-trivial), plus the shim's
/// timing records, merged into this bench's namespace of BENCH_milp.json.
fn persist_records() {
    let mut records: Vec<Record> = criterion::take_results()
        .into_iter()
        .map(|r| Record::timing(r.label, r.mean_ns as f64 / 1e6))
        .collect();

    let horizon = 24;
    let s = instance(horizon);
    let peak = s.demand.iter().cloned().fold(0.0_f64, f64::max);
    // capacity at ~1.15× peak demand binds in the busy slots without
    // making the instance infeasible
    let params = PlanningParams { capacity: Some(peak * 1.15), ..Default::default() };
    let (milp, _) = DrrpProblem::new(s, params).to_milp();
    let warm_opts = MilpOptions::default();
    let cold_opts = MilpOptions { warm_start: false, ..Default::default() };
    let warm = measure(&format!("milp_lotsizing/drrp_cap{horizon}/warm"), &milp, &warm_opts);
    let cold = measure(&format!("milp_lotsizing/drrp_cap{horizon}/cold"), &milp, &cold_opts);
    assert!(
        (warm.objective - cold.objective).abs() <= 1e-6 * (1.0 + cold.objective.abs()),
        "warm and cold B&B disagree: {} vs {}",
        warm.objective,
        cold.objective
    );
    eprintln!(
        "drrp_cap{horizon}: warm {:.1} ms / {} nodes, cold {:.1} ms / {} nodes",
        warm.wall_ms, warm.nodes, cold.wall_ms, cold.nodes
    );
    records.push(warm);
    records.push(cold);

    match results::merge_json("BENCH_milp.json", "milp_lotsizing", &records) {
        Ok(path) => eprintln!("wrote {} ({} records)", path.display(), records.len()),
        Err(e) => eprintln!("warning: could not write BENCH_milp.json: {e}"),
    }
}

criterion_group!(benches, bench_lotsizing);
criterion_main!(benches);
