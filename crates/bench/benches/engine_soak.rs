//! 100k-tenant engine soak: sustained submission of synthetic tenants
//! through the sharded engine and the global-lock baseline, with p99
//! latency and deadline-miss SLOs *asserted*, not just reported.
//!
//! Run with: `cargo bench --bench engine_soak` (full 100k tenants), or
//! `ENGINE_SOAK_TENANTS=10000 cargo bench --bench engine_soak` for the
//! scaled-down CI soak. Each tenant submits one cheap DP-policy request
//! (unique demand, so every request takes the full audit + solve path);
//! requests flow in back-to-back waves so the queues stay loaded for the
//! whole run.
//!
//! Persists `engine_soak/<count>/{sharded4,global4}` record pairs into
//! `results/BENCH_engine.json` (merge — `engine_throughput` owns its own
//! namespace in the same file); CI gates the sharded-vs-global ratio with
//! `xtask benchdiff --assert-ratio`.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrp_bench::results::{self, Record};
use rrp_core::{CostSchedule, PlanningParams};
use rrp_engine::{Engine, EngineConfig, PlanRequest, PolicyKind, ShardConfig};
use rrp_spotmarket::CostRates;

/// Per-request wall-clock budget — the deadline SLO.
const DEADLINE: Duration = Duration::from_secs(1);
/// Asserted tail-latency SLO (per-request solve latency, ms).
const P99_SLO_MS: f64 = 250.0;
/// Asserted ceiling on the deadline-miss rate.
const MISS_RATE_SLO: f64 = 0.001;
/// Requests in flight per submission wave.
const WAVE: usize = 512;
const WORKERS: usize = 4;

fn tenant_request(i: usize) -> PlanRequest {
    let horizon = 6;
    let mut rng = StdRng::seed_from_u64(0x50AC ^ i as u64);
    let demand: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.1..1.0)).collect();
    PlanRequest {
        app_id: format!("soak-{i}"),
        vm_class: "m1.small".into(),
        schedule: CostSchedule::ec2(vec![0.06; horizon], demand, &CostRates::ec2_2011()),
        params: PlanningParams::default(),
        tree: None,
        policy: PolicyKind::DynamicProgram,
        deadline: DEADLINE,
        seed: i as u64,
    }
}

struct SoakOutcome {
    wall_ms: f64,
    p99_ms: f64,
    miss_rate: f64,
    req_per_sec: f64,
}

/// Push `tenants` requests through `engine` in back-to-back waves and
/// check the SLOs on what came back.
fn soak(engine: &Engine, tenants: usize, label: &str) -> SoakOutcome {
    let t0 = Instant::now();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(tenants);
    let mut served = 0usize;
    let mut start = 0usize;
    while start < tenants {
        let end = (start + WAVE).min(tenants);
        let reqs: Vec<PlanRequest> = (start..end).map(tenant_request).collect();
        let responses = engine.run_batch(reqs);
        for resp in &responses {
            assert!(resp.plan.is_some(), "{label}: {} got no plan", resp.app_id);
            latencies_ms.push(resp.latency.as_secs_f64() * 1e3);
        }
        served += responses.len();
        start = end;
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(served, tenants, "{label}: dropped requests");

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let p99_ms = latencies_ms[((latencies_ms.len() - 1) as f64 * 0.99) as usize];
    let metrics = engine.metrics();
    assert_eq!(metrics.completed, tenants as u64, "{label}: ledger disagrees");
    let miss_rate = metrics.deadline_misses as f64 / tenants as f64;
    let req_per_sec = tenants as f64 / (wall_ms / 1e3);
    eprintln!(
        "{label}: {tenants} tenants in {:.1} s — {req_per_sec:.0} req/s, p99 {p99_ms:.2} ms, \
         miss rate {:.5} ({} misses), p50/p99 snapshot {:.2}/{:.2} ms",
        wall_ms / 1e3,
        miss_rate,
        metrics.deadline_misses,
        metrics.p50_latency_ms,
        metrics.p99_latency_ms,
    );

    // the soak SLOs — a breach fails the bench run (and the CI job)
    assert!(p99_ms <= P99_SLO_MS, "{label}: p99 {p99_ms:.2} ms blew the {P99_SLO_MS} ms SLO");
    assert!(
        miss_rate <= MISS_RATE_SLO,
        "{label}: deadline-miss rate {miss_rate:.5} blew the {MISS_RATE_SLO} SLO \
         ({} of {tenants})",
        metrics.deadline_misses
    );
    SoakOutcome { wall_ms, p99_ms, miss_rate, req_per_sec }
}

fn count_label(tenants: usize) -> String {
    if tenants.is_multiple_of(1000) {
        format!("{}k", tenants / 1000)
    } else {
        tenants.to_string()
    }
}

fn main() {
    let tenants: usize =
        std::env::var("ENGINE_SOAK_TENANTS").ok().and_then(|v| v.parse().ok()).unwrap_or(100_000);
    assert!(tenants > 0, "ENGINE_SOAK_TENANTS must be positive");
    eprintln!(
        "engine soak: {tenants} tenants, {WORKERS} workers, wave {WAVE}, deadline {DEADLINE:?} \
         (available parallelism {:?})",
        std::thread::available_parallelism().map(|n| n.get())
    );

    let sharded = Engine::with_config(
        WORKERS,
        EngineConfig { shard: Some(ShardConfig::default()), ..Default::default() },
    );
    let sharded_out = soak(&sharded, tenants, "sharded4");
    drop(sharded);

    let global = Engine::new(WORKERS);
    let global_out = soak(&global, tenants, "global4");
    drop(global);

    eprintln!(
        "soak throughput: sharded4 {:.0} req/s vs global4 {:.0} req/s ({:.2}x)",
        sharded_out.req_per_sec,
        global_out.req_per_sec,
        sharded_out.req_per_sec / global_out.req_per_sec
    );

    let prefix = format!("engine_soak/{}/", count_label(tenants));
    let records = [
        Record::timing(format!("{prefix}sharded4"), sharded_out.wall_ms)
            .with_extra("p99_ms", sharded_out.p99_ms)
            .with_extra("deadline_miss_rate", sharded_out.miss_rate)
            .with_extra("req_per_sec", sharded_out.req_per_sec),
        Record::timing(format!("{prefix}global4"), global_out.wall_ms)
            .with_extra("p99_ms", global_out.p99_ms)
            .with_extra("deadline_miss_rate", global_out.miss_rate)
            .with_extra("req_per_sec", global_out.req_per_sec),
    ];
    match results::merge_json("BENCH_engine.json", &prefix, &records) {
        Ok(path) => eprintln!("wrote {} ({} records)", path.display(), records.len()),
        Err(e) => eprintln!("warning: could not write BENCH_engine.json: {e}"),
    }
}
