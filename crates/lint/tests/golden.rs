//! Golden tests for the lint passes: each fixture crate under
//! `tests/fixtures/<lint>/` is analysed in isolation and its findings
//! JSON compared byte-for-byte against `tests/golden/<lint>.json`.
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p rrp-lint --test golden` and review
//! the diff like any other source change.

use std::fs;
use std::path::PathBuf;

use rrp_lint::allow::Allowlist;
use rrp_lint::findings::render_json;
use rrp_lint::model::Workspace;
use rrp_lint::parse::parse_file;
use rrp_lint::{analyze_workspace, Analysis};

fn run_fixture(name: &str) -> (String, Analysis) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = fs::read_to_string(dir.join("src/lib.rs")).expect("fixture source");
    let ws = Workspace::from_files(vec![parse_file(
        format!("fixtures/{name}/src/lib.rs"),
        format!("fixture_{name}"),
        src,
    )]);
    let analysis = analyze_workspace(&ws, &Allowlist::default(), None);
    (render_json(&analysis.findings), analysis)
}

fn check_golden(name: &str, json: &str) {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.json"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, json).expect("write golden");
        return;
    }
    let want = fs::read_to_string(&path).expect("golden file; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        json, want,
        "golden mismatch for `{name}`; if intended, rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// Acceptance criterion: an AB/BA acquisition cycle must fail the run.
#[test]
fn lock_order_fixture_fails_on_ab_ba_cycle() {
    let (json, analysis) = run_fixture("lock_order");
    check_golden("lock_order", &json);
    assert!(!analysis.is_clean(), "AB/BA cycle must make the analysis fail");
    let cycles: Vec<_> = analysis.findings.iter().filter(|f| f.lint == "lock-order").collect();
    assert!(!cycles.is_empty(), "expected a lock-order finding");
    assert!(cycles.iter().all(|f| f.key.contains("Tangle")), "cycle must involve Tangle");
    assert!(
        !analysis.findings.iter().any(|f| f.key.contains("Straight")),
        "consistent AB order must stay clean"
    );
}

#[test]
fn held_blocking_fixture_flags_guard_across_write() {
    let (json, analysis) = run_fixture("held_blocking");
    check_golden("held_blocking", &json);
    let held: Vec<_> = analysis.findings.iter().filter(|f| f.lint == "held-lock").collect();
    assert_eq!(held.len(), 1, "exactly the `bad` fn should be flagged: {held:?}");
    assert!(held[0].key.contains("write_all"));
    assert!(
        !analysis.findings.iter().any(|f| f.lint == "held-lock" && f.key.contains("recv")),
        "blocking after the guard's scope closes is fine"
    );
}

#[test]
fn relaxed_fixture_flags_only_unjustified_use() {
    let (json, analysis) = run_fixture("relaxed");
    check_golden("relaxed", &json);
    let relaxed: Vec<_> = analysis.findings.iter().filter(|f| f.lint == "relaxed").collect();
    assert_eq!(relaxed.len(), 1, "only the uncommented Relaxed use: {relaxed:?}");
    assert_eq!(relaxed[0].line, 12, "the `bump` site, not the relaxed-ok or SeqCst ones");
}

#[test]
fn growth_fixture_flags_uncapped_shared_map() {
    let (json, analysis) = run_fixture("growth");
    check_golden("growth", &json);
    let growth: Vec<_> =
        analysis.findings.iter().filter(|f| f.lint == "unbounded-growth").collect();
    assert_eq!(growth.len(), 1, "only Cache.map grows unbounded: {growth:?}");
    assert!(growth[0].key.contains("Cache.map"));
    assert!(
        !analysis.findings.iter().any(|f| f.key.contains("Scratch")),
        "a struct without sync state is not long-lived"
    );
}
