//! The lexer's totality contract, pinned two ways: (1) every `.rs`
//! file in the workspace lexes without panicking and the concatenated
//! token texts reproduce the source byte-for-byte; (2) property tests
//! feed generated strings — fragment soup with unbalanced quotes and
//! comment openers, and raw unicode — and demand the same round-trip,
//! with every byte covered by exactly one token in order.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use rrp_lint::lexer::lex;

fn roundtrip(src: &str) {
    let toks = lex(src);
    let mut pos = 0;
    for t in &toks {
        assert_eq!(t.start, pos, "tokens must tile the input with no gap or overlap");
        assert!(t.end > t.start, "empty token at {pos}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens must cover the whole input");
    let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
    assert_eq!(rebuilt, src, "concatenated token texts must reproduce the source");
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_source_file_roundtrips() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    for top in ["crates", "shims", "xtask"] {
        walk(&root.join(top), &mut files);
    }
    assert!(files.len() > 50, "workspace walk looks broken: only {} files", files.len());
    for path in files {
        let src = fs::read_to_string(&path).expect("read source");
        roundtrip(&src);
    }
}

/// Fragments with tricky termination rules: unbalanced quotes, raw-string
/// openers and closers, comment delimiters, lifetimes vs char literals.
const FRAGMENTS: &[&str] = &[
    "\"", "'", "r#\"", "\"#", "r\"", "//", "/*", "*/", "b'x'", "b\"", "'a ", "'\\''", "\\", "\n",
    "\r\n", "0x1f", "1.0e-3", "1_000u64", "r#fn", "🦀", "::", "..=", "let", " ", "\t", "{", "}",
];

fn fragment_soup((len, seed): (usize, u64)) -> String {
    let mut x = seed | 1;
    let mut out = String::new();
    for _ in 0..len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        out.push_str(FRAGMENTS[(x >> 33) as usize % FRAGMENTS.len()]);
    }
    out
}

fn unicode_soup((len, seed): (usize, u64)) -> String {
    let mut x = seed | 1;
    let mut out = String::new();
    for _ in 0..len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Dense in ASCII (where the lexer's structure lives), sparse above.
        let c = if x & 1 == 0 {
            ((x >> 33) as u8 % 0x80) as char
        } else {
            char::from_u32((x >> 33) as u32 % 0xD800).unwrap_or('?')
        };
        out.push(c);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn tricky_fragment_soup_roundtrips(src in (0usize..24, any::<u64>()).prop_map(fragment_soup)) {
        let src: String = src;
        roundtrip(&src);
    }

    #[test]
    fn arbitrary_unicode_roundtrips(src in (0usize..64, any::<u64>()).prop_map(unicode_soup)) {
        let src: String = src;
        roundtrip(&src);
    }
}
