//! Lock-order fixture. Positive: `Tangle` acquires its two locks in
//! both orders (AB in `ab`, BA in `ba`) — a cycle the pass must report.
//! Negative: `Straight` always takes a before b.

pub struct Tangle {
    a: Mutex<u8>,
    b: Mutex<u8>,
}

impl Tangle {
    pub fn ab(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
        let _ = (g, h);
    }

    pub fn ba(&self) {
        let g = self.b.lock();
        let h = self.a.lock();
        let _ = (g, h);
    }
}

pub struct Straight {
    a: Mutex<u8>,
    b: Mutex<u8>,
}

impl Straight {
    pub fn one(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
        let _ = (g, h);
    }

    pub fn two(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
        let _ = (g, h);
    }
}
