//! Atomic-ordering fixture. Positive: `bump` uses `Relaxed` with no
//! justification. Negative: `bump_ok` carries a `// relaxed-ok:`
//! comment; `strict` uses `SeqCst`; `relaxed_ident` mentions a plain
//! identifier named Relaxed that is not a path segment.

pub struct Counters {
    n: AtomicU64,
}

impl Counters {
    pub fn bump(&self) {
        self.n.fetch_add(1, Ordering::Relaxed);
    }

    pub fn bump_ok(&self) {
        // relaxed-ok: monotonic counter, nothing gates on its value
        self.n.fetch_add(1, Ordering::Relaxed);
    }

    pub fn strict(&self) {
        self.n.fetch_add(1, Ordering::SeqCst);
    }

    pub fn relaxed_ident(&self) {
        let Relaxed = 1u8;
        let _ = Relaxed;
    }
}
