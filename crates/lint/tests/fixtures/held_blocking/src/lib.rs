//! Held-lock-across-blocking fixture. Positive: `bad` keeps the writer
//! guard alive across `write_all` and `good_scope`'s sibling `recv`.
//! Negative: `good_scope` closes the guard's scope before blocking;
//! `no_lock` blocks without ever holding a lock.

pub struct Sinky {
    out: Mutex<u8>,
    rx: u8,
}

impl Sinky {
    pub fn bad(&self) {
        let g = self.out.lock();
        g.write_all(b"x");
        let _ = g;
    }

    pub fn good_scope(&self) {
        {
            let g = self.out.lock();
            let _ = g;
        }
        self.rx.recv();
    }

    pub fn no_lock(&self) {
        self.rx.recv();
    }
}
