//! Unbounded-growth fixture. Positive: `fill` inserts into a shared
//! (sync-state-bearing) struct's collection in a loop with no cap.
//! Negative: `fill_capped` shows eviction evidence in the same
//! function; `Scratch` has no sync state so it is not long-lived.

pub struct Cache {
    map: Mutex<HashMap<u64, u8>>,
    hits: AtomicU64,
}

impl Cache {
    pub fn fill(&self) {
        for k in 0..10 {
            self.map.lock().insert(k, 1);
        }
    }

    pub fn fill_capped(&self) {
        let mut m = self.map.lock();
        for k in 0..10 {
            if m.len() >= CAP {
                m.clear();
            }
            m.insert(k, 1);
        }
    }
}

pub struct Scratch {
    rows: Vec<u8>,
}

impl Scratch {
    pub fn build(&mut self) {
        for k in 0..10 {
            self.rows.push(k);
        }
    }
}
