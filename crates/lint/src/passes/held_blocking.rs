//! Held-lock-across-blocking pass: flags guard scopes that span a call
//! which can block for unbounded time — socket I/O (`write_all`,
//! `accept`), channel receives (`recv`), thread joins (`join`), and
//! condvar waits (`wait`). Holding a mutex across such a call serializes
//! every other acquirer behind a third party's latency.
//!
//! What this proves: no *named lock field* is held across a blocking
//! call by the same function's code. What it does NOT prove: blocking
//! deeper in the callee chain (only direct calls are inspected), or
//! blocking behind trait objects the resolver cannot see through.

use crate::findings::Finding;
use crate::model::Workspace;
use crate::passes::{flow, Pass};

/// Calls treated as potentially unboundedly blocking.
const BLOCKING: &[&str] = &[
    "write_all",
    "write_fmt",
    "flush",
    "accept",
    "recv",
    "recv_timeout",
    "join",
    "wait",
    "wait_timeout",
    "read_exact",
    "read_to_string",
    "read_to_end",
    "read_line",
    "connect",
];

pub struct HeldBlockingPass;

impl Pass for HeldBlockingPass {
    fn name(&self) -> &'static str {
        "held-lock"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out: Vec<Finding> = Vec::new();
        for &id in ws.calls.keys() {
            let file = ws.file(id.0);
            if ws.fn_def(id).in_test {
                continue;
            }
            flow::walk_fn(ws, id, |ctx| {
                if !ctx.site.method || !BLOCKING.contains(&ctx.site.name.as_str()) {
                    return;
                }
                for lock in &ctx.held {
                    let key = format!("held-lock {}: {lock} across {}", file.path, ctx.site.name);
                    if out.iter().any(|f| f.key == key && f.line == ctx.site.line) {
                        continue;
                    }
                    out.push(Finding {
                        lint: "held-lock".to_string(),
                        file: file.path.clone(),
                        line: ctx.site.line,
                        key,
                        message: format!(
                            "lock {lock} held across blocking call `{}`",
                            ctx.site.name
                        ),
                        justified: false,
                    });
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run(src: &str) -> Vec<Finding> {
        let ws =
            Workspace::from_files(vec![parse_file("src/lib.rs".into(), "t".into(), src.into())]);
        HeldBlockingPass.run(&ws)
    }

    #[test]
    fn guard_across_write_all_is_flagged() {
        let src = "struct S { out: Mutex<u8> }\n\
                   impl S { fn emit(&self) { let g = self.out.lock(); g.write_all(b\"x\"); } }\n";
        let fs = run(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].key, "held-lock src/lib.rs: S.out across write_all");
    }

    #[test]
    fn temp_guard_chained_into_blocking_call_is_flagged() {
        let src = "struct S { out: Mutex<u8> }\n\
                   impl S { fn emit(&self) { let _ = self.out.lock().write_all(b\"x\"); } }\n";
        let fs = run(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("S.out"));
    }

    #[test]
    fn blocking_after_guard_scope_ends_is_clean() {
        let src = "struct S { out: Mutex<u8>, rx: u8 }\n\
                   impl S { fn step(&self) { { let g = self.out.lock(); } self.rx.recv(); } }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn condvar_wait_with_guard_held_is_flagged() {
        let src = "struct Shared { queue: Mutex<u8>, ready: Condvar }\n\
                   impl Shared { fn take(&self) { let mut q = self.queue.lock(); \
                   q = self.ready.wait(q); } }\n";
        let fs = run(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].key.contains("Shared.queue across wait"));
    }

    #[test]
    fn recv_without_lock_is_clean() {
        let src = "fn worker(rx: Receiver) { while let Ok(j) = rx.recv() { work(j); } }\n\
                   fn work(_j: u8) {}\n";
        assert!(run(src).is_empty());
    }
}
