//! Atomic-ordering audit: every `Ordering::Relaxed` load/store in
//! library code must be justified — either inline with a
//! `// relaxed-ok: <why>` comment on the same line or the line above,
//! or at module scope with a `relaxed-module <path>` allowlist entry
//! (for designated counter modules where every atomic is a
//! monotonically increasing statistic nothing synchronizes on).
//!
//! What this proves: no Relaxed operation lands without a human having
//! written down why the ordering is sufficient. What it does NOT prove:
//! that the justification is *correct* — that is what the loom-style
//! model tests are for.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::model::Workspace;
use crate::passes::Pass;

pub struct RelaxedPass;

impl Pass for RelaxedPass {
    fn name(&self) -> &'static str {
        "relaxed"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &ws.files {
            // token ranges belonging to #[cfg(test)] functions
            let test_ranges: Vec<(usize, usize)> =
                file.fns.iter().filter(|f| f.in_test).filter_map(|f| f.body).collect();
            for (i, tok) in file.toks.iter().enumerate() {
                if tok.kind != TokKind::Ident || tok.text(&file.src) != "Relaxed" {
                    continue;
                }
                // require the `Ordering::Relaxed` path form — a bare
                // `Relaxed` ident (e.g. an enum variant definition in a
                // shim) is not a use site
                if !preceded_by_path_sep(file, i) {
                    continue;
                }
                if test_ranges.iter().any(|&(lo, hi)| i >= lo && i < hi) {
                    continue;
                }
                if has_justifying_comment(file, tok.line, "relaxed-ok") {
                    continue;
                }
                out.push(Finding {
                    lint: "relaxed".to_string(),
                    file: file.path.clone(),
                    line: tok.line,
                    key: format!("relaxed {}:{}", file.path, tok.line),
                    message: "Ordering::Relaxed without a `// relaxed-ok:` justification \
                              (or a relaxed-module allowlist entry)"
                        .to_string(),
                    justified: false,
                });
            }
        }
        out
    }
}

fn preceded_by_path_sep(file: &crate::parse::ParsedFile, i: usize) -> bool {
    let mut seen_colons = 0;
    for j in (0..i).rev() {
        let t = &file.toks[j];
        if t.is_trivia() {
            continue;
        }
        if t.text(&file.src) == ":" {
            seen_colons += 1;
            if seen_colons == 2 {
                return true;
            }
        } else {
            return false;
        }
    }
    false
}

/// A line or block comment containing `marker` on the same line or the
/// line immediately above.
pub fn has_justifying_comment(file: &crate::parse::ParsedFile, line: u32, marker: &str) -> bool {
    file.toks.iter().any(|t| {
        matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
            && (t.line == line || t.line + 1 == line)
            && t.text(&file.src).contains(marker)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run(src: &str) -> Vec<Finding> {
        let ws =
            Workspace::from_files(vec![parse_file("src/lib.rs".into(), "t".into(), src.into())]);
        RelaxedPass.run(&ws)
    }

    #[test]
    fn bare_relaxed_use_is_flagged() {
        let fs = run("fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].key, "relaxed src/lib.rs:1");
    }

    #[test]
    fn same_line_comment_justifies() {
        let fs = run(
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); } // relaxed-ok: stat counter\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn line_above_comment_justifies() {
        let fs = run(
            "fn f(c: &AtomicU64) {\n    // relaxed-ok: nothing reads this for synchronization\n    c.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let fs = run(
            "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn variant_definitions_are_not_use_sites() {
        let fs = run("enum Ordering { Relaxed, SeqCst }\n");
        assert!(fs.is_empty(), "{fs:?}");
    }
}
