//! Intra-procedural guard tracking: which locks are held at each call
//! site inside a function body. Shared by the lock-order and
//! held-lock-across-blocking passes (and the growth pass, which needs
//! guard-name → lock aliases).
//!
//! The model is scopes, not borrows:
//! - `let g = self.x.lock()…;` binds a **named guard** that lives until
//!   its enclosing block closes or an explicit `drop(g)`.
//! - `self.x.lock().f(…)` (or `let _ = …`) creates a **temp guard** that
//!   dies at the end of the statement (`;`).
//! - `lock`/`read`/`write` count as acquisitions only when the receiver
//!   chain resolves to a struct field whose type is `Mutex`/`RwLock` —
//!   `file.read(buf)` does not.

use crate::lexer::TokKind;
use crate::model::{CallSite, FnId, Workspace};
use std::collections::BTreeMap;

/// What the walker reports at every call site.
pub struct CallCtx<'a> {
    pub site: &'a CallSite,
    /// Lock ids held when the call happens (acquisition order preserved,
    /// deduplicated). Excludes the lock this very call acquires.
    pub held: Vec<String>,
    /// `Some(lock_id)` when this call is itself a lock acquisition.
    pub acquired: Option<String>,
    /// Live named guards: `(binding name, lock id)`.
    pub named_guards: Vec<(String, String)>,
}

struct Guard {
    /// `None` for temp guards (including `let _ =` bindings).
    name: Option<String>,
    lock: String,
    depth: usize,
}

/// Walk one function body in token order, calling `visit` at each call
/// site with the set of held locks.
pub fn walk_fn(ws: &Workspace, id: FnId, mut visit: impl FnMut(CallCtx<'_>)) {
    let file = ws.file(id.0);
    let f = ws.fn_def(id);
    let Some((lo, hi)) = f.body else { return };
    let sig: Vec<usize> = (lo..hi).filter(|&i| !file.toks[i].is_trivia()).collect();
    let text = |si: usize| file.toks[sig[si]].text(&file.src);
    let by_tok: BTreeMap<usize, &CallSite> =
        ws.calls.get(&id).into_iter().flatten().map(|c| (c.tok, c)).collect();

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut stmt_start = 0usize; // sig index where the current statement began

    for si in 0..sig.len() {
        let t = text(si);
        match t {
            "{" => {
                depth += 1;
                stmt_start = si + 1;
            }
            "}" => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
                stmt_start = si + 1;
            }
            ";" => {
                guards.retain(|g| g.name.is_some());
                stmt_start = si + 1;
            }
            _ => {}
        }
        let Some(site) = by_tok.get(&sig[si]) else { continue };

        // explicit drop(g) releases the named guard
        if site.name == "drop" && !site.method {
            if si + 2 < sig.len() && file.toks[sig[si + 2]].kind == TokKind::Ident {
                let arg = text(si + 2).to_string();
                if si + 3 < sig.len() && text(si + 3) == ")" {
                    guards.retain(|g| g.name.as_deref() != Some(arg.as_str()));
                }
            }
            continue;
        }

        let mut acquired = None;
        if site.method && matches!(site.name.as_str(), "lock" | "read" | "write") {
            if let Some(lid) =
                ws.resolve_field(&file.crate_name, f.owner.as_deref(), &site.receiver)
            {
                if ws.lock_fields.contains(&lid) {
                    acquired = Some(lid);
                }
            }
        }

        let mut held: Vec<String> = Vec::new();
        for g in &guards {
            if !held.contains(&g.lock) {
                held.push(g.lock.clone());
            }
        }
        let named_guards: Vec<(String, String)> = guards
            .iter()
            .filter_map(|g| g.name.as_ref().map(|n| (n.clone(), g.lock.clone())))
            .collect();
        visit(CallCtx { site, held, acquired: acquired.clone(), named_guards });

        if let Some(lock) = acquired {
            // binding: the statement is `let [mut] name = …` — anything
            // else (`let _`, destructuring, bare expression) is a temp
            // guard that dies at `;`
            let mut name = None;
            if stmt_start < sig.len() && text(stmt_start) == "let" {
                let mut j = stmt_start + 1;
                if j < sig.len() && text(j) == "mut" {
                    j += 1;
                }
                if j + 1 < sig.len()
                    && file.toks[sig[j]].kind == TokKind::Ident
                    && text(j) != "_"
                    && (text(j + 1) == "=" || text(j + 1) == ":")
                {
                    name = Some(text(j).to_string());
                }
            }
            guards.push(Guard { name, lock, depth });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn ws(src: &str) -> Workspace {
        Workspace::from_files(vec![parse_file("src/lib.rs".into(), "t".into(), src.into())])
    }

    fn calls_with_held(src: &str) -> Vec<(String, Vec<String>)> {
        let w = ws(src);
        let id = *w.calls.keys().find(|&&(fi, ni)| w.files[fi].fns[ni].name == "f").expect("fn f");
        let mut out = Vec::new();
        walk_fn(&w, id, |ctx| out.push((ctx.site.name.clone(), ctx.held.clone())));
        out
    }

    #[test]
    fn named_guard_spans_statements_until_scope_end() {
        let src = "struct S { a: Mutex<u8> }\n\
                   impl S { fn f(&self) { let g = self.a.lock(); step(); } fn g(&self) {} }\n\
                   fn step() {}\n";
        let calls = calls_with_held(src);
        let step = calls.iter().find(|(n, _)| n == "step").expect("step call");
        assert_eq!(step.1, ["S.a"]);
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let src = "struct S { a: Mutex<u8> }\n\
                   impl S { fn f(&self) { self.a.lock().push(1); step(); } }\n\
                   fn step() {}\n";
        let calls = calls_with_held(src);
        let push = calls.iter().find(|(n, _)| n == "push").expect("push");
        assert_eq!(push.1, ["S.a"], "temp guard held during chained call");
        let step = calls.iter().find(|(n, _)| n == "step").expect("step");
        assert!(step.1.is_empty(), "temp guard released at `;`");
    }

    #[test]
    fn drop_releases_named_guard() {
        let src = "struct S { a: Mutex<u8> }\n\
                   impl S { fn f(&self) { let g = self.a.lock(); drop(g); step(); } }\n\
                   fn step() {}\n";
        let calls = calls_with_held(src);
        let step = calls.iter().find(|(n, _)| n == "step").expect("step");
        assert!(step.1.is_empty(), "drop(g) released the lock: {step:?}");
    }

    #[test]
    fn inner_scope_guard_released_at_close() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   impl S { fn f(&self) { { let g = self.a.lock(); } let h = self.b.lock(); step(); } }\n\
                   fn step() {}\n";
        let calls = calls_with_held(src);
        let step = calls.iter().find(|(n, _)| n == "step").expect("step");
        assert_eq!(step.1, ["S.b"], "inner-scope guard gone: {step:?}");
    }

    #[test]
    fn acquire_while_held_reports_prior_lock() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   impl S { fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); } }\n";
        let w = ws(src);
        let id = *w.calls.keys().next().expect("fn");
        let mut second = None;
        walk_fn(&w, id, |ctx| {
            if ctx.acquired.as_deref() == Some("S.b") {
                second = Some(ctx.held.clone());
            }
        });
        assert_eq!(second.expect("saw S.b acquire"), ["S.a"]);
    }
}
