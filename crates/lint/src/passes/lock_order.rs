//! Lock-order pass: builds the lock-acquisition graph — an edge A → B
//! means some code path acquires lock B while holding lock A — from
//! intra-procedural guard tracking plus one level of call-graph
//! inlining (a call made while holding A contributes edges from A to
//! every lock the callee's own body acquires). Any cycle in the graph
//! is a potential deadlock and is reported once, canonically rotated.
//!
//! What this proves: no two functions in the analysed tree disagree on
//! the order of named lock *fields*. What it does NOT prove: absence of
//! deadlock through locks the resolver cannot name (locals, trait
//! objects), through call chains deeper than one level, or through
//! channel/condvar waits (the held-blocking pass covers those).

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::Finding;
use crate::model::Workspace;
use crate::passes::{flow, Pass};

pub struct LockOrderPass;

impl Pass for LockOrderPass {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        // edges with the site that created them: (from, to) -> (file, line)
        let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
        for &id in ws.calls.keys() {
            let file = ws.file(id.0);
            if ws.fn_def(id).in_test {
                continue;
            }
            flow::walk_fn(ws, id, |ctx| {
                let mut targets: Vec<String> = Vec::new();
                if let Some(acq) = &ctx.acquired {
                    targets.push(acq.clone());
                } else if !ctx.held.is_empty() {
                    // one level of inlining: locks the callee acquires
                    for callee in ws.resolve_call(id, ctx.site, &ctx.named_guards) {
                        if callee == id {
                            continue;
                        }
                        for lock in ws.fn_lock_summary(callee) {
                            if !targets.contains(&lock) {
                                targets.push(lock);
                            }
                        }
                    }
                }
                for to in targets {
                    for from in &ctx.held {
                        if *from != to {
                            edges
                                .entry((from.clone(), to.clone()))
                                .or_insert_with(|| (file.path.clone(), ctx.site.line));
                        }
                    }
                }
            });
        }
        cycles(&edges)
            .into_iter()
            .map(|cycle| {
                // attribute the cycle to the first edge's site
                let (file, line) =
                    edges.get(&(cycle[0].clone(), cycle[1].clone())).cloned().unwrap_or_default();
                let path = cycle.join(" -> ");
                Finding {
                    lint: "lock-order".to_string(),
                    file: file.clone(),
                    line,
                    key: format!("lock-order {file}: cycle {path}"),
                    message: format!("lock acquisition cycle (potential deadlock): {path}"),
                    justified: false,
                }
            })
            .collect()
    }
}

/// Every elementary cycle in the edge set, canonically rotated so the
/// lexicographically smallest lock comes first, deduplicated, and
/// rendered closed (`A -> B -> A`).
fn cycles(edges: &BTreeMap<(String, String), (String, u32)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS from every node; a back edge onto the current path is a cycle
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        dfs(start, &adj, &mut path, &mut on_path, &mut found);
    }
    found.into_iter().collect()
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    found: &mut BTreeSet<Vec<String>>,
) {
    for &next in adj.get(node).into_iter().flatten() {
        if on_path.contains(next) {
            // cycle: the path slice from `next` to the end, closed
            let pos = path.iter().position(|&n| n == next).unwrap_or(0);
            let mut cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
            // canonical rotation: smallest element first
            let min_i = cycle
                .iter()
                .enumerate()
                .min_by_key(|&(_, s)| s.clone())
                .map(|(i, _)| i)
                .unwrap_or(0);
            cycle.rotate_left(min_i);
            let first = cycle[0].clone();
            cycle.push(first);
            found.insert(cycle);
        } else if path.len() < 16 {
            path.push(next);
            on_path.insert(next);
            dfs(next, adj, path, on_path, found);
            path.pop();
            on_path.remove(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run(src: &str) -> Vec<Finding> {
        let ws =
            Workspace::from_files(vec![parse_file("src/lib.rs".into(), "t".into(), src.into())]);
        LockOrderPass.run(&ws)
    }

    #[test]
    fn ab_ba_cycle_is_reported() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   impl S {\n\
                     fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                     fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
                   }\n";
        let fs = run(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].key.contains("cycle S.a -> S.b -> S.a"), "{}", fs[0].key);
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   impl S {\n\
                     fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                     fn ab2(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn cycle_through_one_level_of_calls_is_caught() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   impl S {\n\
                     fn outer(&self) { let g = self.a.lock(); self.inner(); }\n\
                     fn inner(&self) { let h = self.b.lock(); }\n\
                     fn reversed(&self) { let h = self.b.lock(); let g = self.a.lock(); }\n\
                   }\n";
        let fs = run(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn nested_distinct_structs_without_reversal_are_clean() {
        let src = "struct M { counters: Mutex<u8> }\n\
                   struct R { families: Mutex<u8> }\n\
                   impl M { fn bump(&self, r: &R) { let g = self.counters.lock(); r.touch(); } }\n\
                   impl R { fn touch(&self) { let h = self.families.lock(); } }\n";
        assert!(run(src).is_empty());
    }
}
