//! Unbounded-growth pass: `push`/`insert` (and `entry().or_insert_*`)
//! into a long-lived collection from loop context, with no cap or
//! eviction logic in the same function and no `// growth-ok:` comment.
//!
//! "Long-lived" is approximated as: the collection is a field of a
//! struct that also carries sync state (`Mutex`/`RwLock`/`Atomic`/
//! `Arc`) — local scratch vectors and plain model builders do not
//! qualify. "Loop context" means the call site is lexically inside a
//! `for`/`while`/`loop`, or the enclosing function is reachable within
//! two call-graph hops from one (a worker loop calling `process()`
//! calling `cache.insert()` counts).
//!
//! What this proves: every growth site on shared state either shows its
//! bound in the same function or carries a written justification. What
//! it does NOT prove: that the bound is enforced on every path, or that
//! growth through aliases the resolver cannot name is bounded.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::model::Workspace;
use crate::passes::relaxed::has_justifying_comment;
use crate::passes::{flow, Pass};

/// Calls that add an element to a collection.
const GROWTH_CALLS: &[&str] =
    &["push", "push_back", "push_front", "insert", "extend", "or_insert_with", "or_default"];

/// Method segments stripped from receiver chains before field
/// resolution: `self.map.lock().entry(k)` resolves as `self.map`.
const ADAPTERS: &[&str] = &[
    "lock",
    "read",
    "write",
    "unwrap",
    "expect",
    "unwrap_or_else",
    "borrow",
    "borrow_mut",
    "as_mut",
    "as_ref",
    "get_mut",
    "entry",
    "iter",
    "iter_mut",
];

/// Identifiers that count as cap/eviction evidence when they appear in
/// the same function body.
const EVICTION_IDENTS: &[&str] = &[
    "truncate",
    "pop",
    "pop_front",
    "pop_back",
    "evict",
    "retain",
    "drain",
    "clear",
    "remove",
    "swap_remove",
    "split_off",
    "shrink_to",
];

pub struct GrowthPass;

impl Pass for GrowthPass {
    fn name(&self) -> &'static str {
        "unbounded-growth"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out: Vec<Finding> = Vec::new();
        for &id in ws.calls.keys() {
            let file = ws.file(id.0);
            let f = ws.fn_def(id);
            if f.in_test {
                continue;
            }
            let loop_reachable = ws.loop_reachable.contains(&id);
            let capped = fn_has_cap_evidence(ws, id);
            flow::walk_fn(ws, id, |ctx| {
                if !ctx.site.method || !GROWTH_CALLS.contains(&ctx.site.name.as_str()) {
                    return;
                }
                if !(ctx.site.in_loop || loop_reachable) {
                    return;
                }
                let Some(field) = resolve_target(ws, &file.crate_name, f.owner.as_deref(), &ctx)
                else {
                    return;
                };
                if !ws.collection_fields.contains(&field) {
                    return;
                }
                let owner_struct = field.split('.').next().unwrap_or("");
                if !ws.concurrent_structs.contains(owner_struct) {
                    return;
                }
                if capped || has_justifying_comment(file, ctx.site.line, "growth-ok") {
                    return;
                }
                let key = format!("unbounded-growth {}: {field}", file.path);
                if out.iter().any(|x| x.key == key && x.line == ctx.site.line) {
                    return;
                }
                out.push(Finding {
                    lint: "unbounded-growth".to_string(),
                    file: file.path.clone(),
                    line: ctx.site.line,
                    key,
                    message: format!(
                        "`{}` into long-lived collection {field} from loop context with no \
                         cap/eviction in `{}`",
                        ctx.site.name, f.name
                    ),
                    justified: false,
                });
            });
        }
        out
    }
}

/// The `Struct.field` a growth call targets: through a live named guard
/// (`let m = self.map.lock(); m.insert(…)`) or by resolving the
/// receiver chain with adapter segments stripped.
fn resolve_target(
    ws: &Workspace,
    krate: &str,
    owner: Option<&str>,
    ctx: &flow::CallCtx<'_>,
) -> Option<String> {
    if let Some(first) = ctx.site.receiver.first() {
        if let Some((_, lock)) = ctx.named_guards.iter().find(|(n, _)| n == first) {
            return Some(lock.clone());
        }
    }
    let chain: Vec<String> =
        ctx.site.receiver.iter().filter(|seg| !ADAPTERS.contains(&seg.as_str())).cloned().collect();
    if chain.is_empty() {
        return None;
    }
    ws.resolve_field(krate, owner, &chain)
}

/// Does the function body contain cap/eviction evidence — an eviction
/// method name or a `cap`-ish identifier (`series_cap`, `MAX_CAP`,
/// `capacity`)?
fn fn_has_cap_evidence(ws: &Workspace, id: crate::model::FnId) -> bool {
    let file = ws.file(id.0);
    let Some((lo, hi)) = ws.fn_def(id).body else {
        return false;
    };
    file.toks[lo..hi].iter().any(|t| {
        if t.kind != TokKind::Ident {
            return false;
        }
        let s = t.text(&file.src);
        EVICTION_IDENTS.contains(&s)
            || s.starts_with("cap")
            || s.starts_with("Cap")
            || s.contains("_cap")
            || s.contains("CAP")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run(src: &str) -> Vec<Finding> {
        let ws =
            Workspace::from_files(vec![parse_file("src/lib.rs".into(), "t".into(), src.into())]);
        GrowthPass.run(&ws)
    }

    const CACHE: &str = "struct Cache { map: Mutex<HashMap<u64, u8>>, hits: AtomicU64 }\n";

    #[test]
    fn uncapped_insert_in_loop_is_flagged() {
        let src = format!(
            "{CACHE}impl Cache {{ fn fill(&self) {{ for k in 0..10 {{ \
             self.map.lock().insert(k, 1); }} }} }}\n"
        );
        let fs = run(&src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].key, "unbounded-growth src/lib.rs: Cache.map");
    }

    #[test]
    fn insert_reached_from_worker_loop_is_flagged() {
        let src = format!(
            "{CACHE}impl Cache {{ fn store(&self) {{ self.map.lock().insert(1, 1); }} }}\n\
             fn worker(c: &Cache) {{ loop {{ process(c); }} }}\n\
             fn process(c: &Cache) {{ c.store(); }}\n"
        );
        let fs = run(&src);
        assert_eq!(fs.len(), 1, "two-hop loop reachability: {fs:?}");
    }

    #[test]
    fn cap_evidence_in_fn_exempts() {
        let src = format!(
            "{CACHE}impl Cache {{ fn store(&self) {{ let mut m = self.map.lock(); \
             for k in 0..10 {{ if m.len() >= CAP {{ m.clear(); }} m.insert(k, 1); }} }} }}\n"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn growth_ok_comment_exempts() {
        let src = format!(
            "{CACHE}impl Cache {{ fn store(&self) {{ for k in 0..10 {{ \
             // growth-ok: keyed by a closed static set\n\
             self.map.lock().insert(k, 1); }} }} }}\n"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn plain_builder_structs_are_not_long_lived() {
        let src = "struct Model { rows: Vec<u8> }\n\
                   impl Model {\n\
                     fn build(&mut self) { for k in 0..10 { self.rows.push(k); } }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn named_guard_insert_resolves_to_lock_field() {
        let src = format!(
            "{CACHE}impl Cache {{ fn fill(&self) {{ let mut m = self.map.lock(); \
             for k in 0..10 {{ m.insert(k, 1); }} }} }}\n"
        );
        let fs = run(&src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].key.ends_with("Cache.map"));
    }
}
