//! The token pass: the original `xtask lint` solver-safety scan, ported
//! onto the framework. Line-based on purpose — it is a tripwire against
//! new abort/float-equality debt, not a parser — and its finding keys
//! (`<path>: <trimmed line>`) are the legacy `lint-allow.txt` format.

use crate::findings::Finding;
use crate::model::Workspace;
use crate::passes::Pass;

/// One forbidden pattern: the needle searched for and the rule label
/// reported with a hit.
const PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "no-unwrap"),
    (".expect(", "no-expect"),
    ("panic!(", "no-panic"),
    ("unreachable!(", "no-unreachable"),
    ("todo!(", "no-todo"),
    ("unimplemented!(", "no-unimplemented"),
    (".iter().nth(", "no-linear-nth"),
    (".remove(0)", "no-front-remove"),
];

pub struct TokenPass;

impl Pass for TokenPass {
    fn name(&self) -> &'static str {
        "token"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !in_scope(&file.path) {
                continue;
            }
            scan_file(&file.path, &file.src, &mut out);
        }
        out
    }
}

/// Library code under `crates/*/src` only: xtask and this crate carry
/// the forbidden patterns as search needles, `src/bin` CLI tools may
/// abort on bad input, and shims mirror external crates' own APIs.
fn in_scope(path: &str) -> bool {
    path.starts_with("crates/")
        && !path.starts_with("crates/xtask/")
        && !path.starts_with("crates/lint/")
        && !path.contains("/bin/")
}

/// Scan one file, appending findings. Lines inside `#[cfg(test)]`-gated
/// blocks and `//` comments are exempt.
fn scan_file(rel: &str, src: &str, out: &mut Vec<Finding>) {
    // depth of the brace block being skipped, when inside #[cfg(test)]
    let mut skip_depth: Option<i64> = None;
    let mut pending_cfg_test = false;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if let Some(depth) = skip_depth.as_mut() {
            *depth += brace_delta(line);
            if *depth <= 0 {
                skip_depth = None;
            }
            continue;
        }
        if line.starts_with("//") {
            continue;
        }
        if line.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if line.starts_with("#[") || line.is_empty() {
                continue; // more attributes between cfg(test) and the item
            }
            let d = brace_delta(line);
            pending_cfg_test = false;
            if d > 0 {
                skip_depth = Some(d);
            }
            continue;
        }
        let code = strip_line_comment(line);
        for &(needle, rule) in PATTERNS {
            if code.contains(needle) {
                out.push(finding(rel, idx + 1, rule, line));
            }
        }
        if has_float_eq(code) {
            out.push(finding(rel, idx + 1, "no-float-eq", line));
        }
    }
}

fn finding(rel: &str, line: usize, rule: &str, content: &str) -> Finding {
    Finding {
        lint: "token".to_string(),
        file: rel.to_string(),
        line: line as u32,
        key: format!("{rel}: {content}"),
        message: format!("[{rule}] {content}"),
        justified: false,
    }
}

/// `{`-minus-`}` count of a line, ignoring braces inside string literals.
fn brace_delta(line: &str) -> i64 {
    let mut delta = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '{' if !in_str => delta += 1,
            '}' if !in_str => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Cut the line at a `//` that is not inside a string literal.
fn strip_line_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    for i in 0..b.len() {
        if escaped {
            escaped = false;
            continue;
        }
        match b[i] {
            b'\\' if in_str => escaped = true,
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < b.len() && b[i + 1] == b'/' => return &line[..i],
            _ => {}
        }
    }
    line
}

/// True when the line compares with `==`/`!=` and either operand is a
/// floating-point literal. Exact float equality on a solver path is
/// almost always a tolerance bug; spell a genuine bit-compare via
/// `to_bits()` or allowlist it.
fn has_float_eq(code: &str) -> bool {
    let b = code.as_bytes();
    let mut i = 0;
    while i + 1 < b.len() {
        let is_eq = b[i] == b'=' && b[i + 1] == b'=';
        let is_ne = b[i] == b'!' && b[i + 1] == b'=';
        if is_eq || is_ne {
            let prev = if i == 0 { b' ' } else { b[i - 1] };
            let next = if i + 2 < b.len() { b[i + 2] } else { b' ' };
            // for `==`, make sure this is not the tail of `!=`/`<=`-style
            // compounds; `!=` is unambiguous on its own
            let standalone = is_ne || (!matches!(prev, b'<' | b'>' | b'=' | b'!') && next != b'=');
            if standalone {
                let left = token_before(code, i);
                let right = token_after(code, i + 2);
                if is_float_literal(&left) || is_float_literal(&right) {
                    return true;
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    false
}

fn token_before(code: &str, end: usize) -> String {
    let b = code.as_bytes();
    let mut i = end;
    while i > 0 && (b[i - 1] == b' ') {
        i -= 1;
    }
    let stop = i;
    while i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'.' || b[i - 1] == b'_') {
        i -= 1;
    }
    code[i..stop].to_string()
}

fn token_after(code: &str, start: usize) -> String {
    let b = code.as_bytes();
    let mut i = start;
    while i < b.len() && b[i] == b' ' {
        i += 1;
    }
    let begin = i;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'.' || b[i] == b'_') {
        i += 1;
    }
    code[begin..i].to_string()
}

/// `1.0`, `0.5f64`, `1e-9`, `2.` — digits with a dot or an exponent.
/// Must start with a digit (Rust has no `.5` literal, and `.0` here is a
/// tuple field access).
fn is_float_literal(tok: &str) -> bool {
    let t = tok.trim_end_matches("f64").trim_end_matches("f32").trim_end_matches('_');
    if !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let mut has_digit = false;
    let mut has_dot_or_exp = false;
    for c in t.chars() {
        match c {
            '0'..='9' => has_digit = true,
            '.' => has_dot_or_exp = true,
            'e' | 'E' => has_dot_or_exp = has_digit, // exponent needs a mantissa
            '_' | '+' | '-' => {}
            _ => return false,
        }
    }
    has_digit && has_dot_or_exp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(src: &str) -> Vec<String> {
        let mut v = Vec::new();
        scan_file("crates/x/src/x.rs", src, &mut v);
        v.into_iter()
            .map(|f| f.message.split(']').next().unwrap_or("").trim_start_matches('[').to_string())
            .collect()
    }

    #[test]
    fn forbidden_patterns_flagged_outside_tests() {
        let rules = hits("fn f() {\n    let x = y.unwrap();\n}\n");
        assert_eq!(rules, ["no-unwrap"]);
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn lib2() { z.unwrap(); }\n";
        assert_eq!(hits(src), ["no-unwrap"]); // only lib2's
    }

    #[test]
    fn comments_are_exempt() {
        assert!(hits("// calls .unwrap() freely\nfn f() {} // then .unwrap()\n").is_empty());
    }

    #[test]
    fn float_eq_detected() {
        assert_eq!(hits("fn f(a: f64) { if a == 0.0 {} }\n"), ["no-float-eq"]);
        assert_eq!(hits("fn f(a: f64) { if 1.5 != a {} }\n"), ["no-float-eq"]);
        assert!(hits("fn f(a: usize) { if a == 0 {} }\n").is_empty());
        assert!(hits("fn f(a: f64, b: f64) { if a <= 0.0 {} }\n").is_empty());
    }

    #[test]
    fn scope_excludes_tooling_and_shims() {
        assert!(in_scope("crates/engine/src/cache.rs"));
        assert!(!in_scope("crates/xtask/src/main.rs"));
        assert!(!in_scope("crates/lint/src/lexer.rs"));
        assert!(!in_scope("crates/bench/src/bin/run.rs"));
        assert!(!in_scope("shims/crossbeam/src/lib.rs"));
    }

    #[test]
    fn finding_keys_use_legacy_allowlist_format() {
        let mut v = Vec::new();
        scan_file("crates/x/src/a.rs", "fn f() { y.unwrap(); }\n", &mut v);
        assert_eq!(v[0].key, "crates/x/src/a.rs: fn f() { y.unwrap(); }");
    }
}
