//! Lint passes. Each pass sees the whole [`Workspace`] model and emits
//! findings; justification (allowlist matching) happens in the driver,
//! not here, so passes stay pure and the golden tests can run them
//! without an allowlist.

pub mod flow;
pub mod growth;
pub mod held_blocking;
pub mod lock_order;
pub mod relaxed;
pub mod token;

use crate::findings::Finding;
use crate::model::Workspace;

/// A lint pass: a name (used as `Finding::lint`) and a run method.
pub trait Pass {
    fn name(&self) -> &'static str;
    fn run(&self, ws: &Workspace) -> Vec<Finding>;
}

/// Every pass, in pipeline order.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(token::TokenPass),
        Box::new(lock_order::LockOrderPass),
        Box::new(held_blocking::HeldBlockingPass),
        Box::new(relaxed::RelaxedPass),
        Box::new(growth::GrowthPass),
    ]
}
