//! A total, loss-free Rust lexer.
//!
//! Every byte of the input lands in exactly one token, so concatenating
//! the token texts reproduces the source byte-for-byte (the round-trip
//! property the `lexer_roundtrip` test pins over the whole workspace).
//! The lexer never fails: malformed input degrades to `Unknown` tokens or
//! an unterminated literal that runs to end of file — analysis passes see
//! a best-effort token stream instead of an error.
//!
//! Comments and whitespace are kept as trivia tokens; the parser indexes
//! past them but lints like the atomic-ordering audit read them (the
//! `// relaxed-ok:` justification convention lives in trivia).

/// Token classification. Just enough resolution for item parsing and the
/// lint passes — operators stay one `Punct` per character (`::` is two
/// `Punct(':')` tokens; passes that care look at adjacency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Whitespace run (spaces, tabs, newlines).
    Ws,
    /// `// …` to end of line (newline excluded), including doc comments.
    LineComment,
    /// `/* … */`, nested per Rust rules; unterminated runs to EOF.
    BlockComment,
    /// String literal: `"…"`, `b"…"`, `c"…"`, and raw forms `r"…"`,
    /// `r#"…"#`, `br#"…"#` with any hash count.
    Str,
    /// Character or byte-character literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime or loop label: `'a`, `'static`, `'outer`.
    Lifetime,
    /// Identifier or keyword, including raw identifiers (`r#fn`).
    Ident,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation character.
    Punct,
    /// Any byte that fits no other class (stray `\u{…}` fragments, BOM…).
    Unknown,
}

/// One token: classification plus the byte range it covers and the
/// 1-based line its first byte sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Tok {
    /// The token's text within the source it was lexed from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// True for whitespace and comments — tokens the parser skips.
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokKind::Ws | TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lex `src` completely. Total: never panics, never drops a byte.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1 }.run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Tok> {
        let mut out = Vec::with_capacity(self.src.len() / 4 + 8);
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always advance");
            out.push(Tok { kind, start, end: self.pos, line });
        }
        out
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn next_kind(&mut self) -> TokKind {
        let c = self.peek(0);
        if c.is_ascii_whitespace() {
            while self.pos < self.src.len() && self.peek(0).is_ascii_whitespace() {
                self.bump();
            }
            return TokKind::Ws;
        }
        if c == b'/' && self.peek(1) == b'/' {
            while self.pos < self.src.len() && self.peek(0) != b'\n' {
                self.bump();
            }
            return TokKind::LineComment;
        }
        if c == b'/' && self.peek(1) == b'*' {
            self.bump();
            self.bump();
            let mut depth = 1usize;
            while self.pos < self.src.len() && depth > 0 {
                if self.peek(0) == b'/' && self.peek(1) == b'*' {
                    depth += 1;
                    self.bump();
                    self.bump();
                } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                    depth -= 1;
                    self.bump();
                    self.bump();
                } else {
                    self.bump();
                }
            }
            return TokKind::BlockComment;
        }
        if c == b'"' {
            return self.string_body();
        }
        // string/char prefixes and raw identifiers: r" r#" br" b" b' c" cr#"
        if matches!(c, b'r' | b'b' | b'c') {
            if let Some(kind) = self.try_prefixed_literal() {
                return kind;
            }
        }
        if c == b'\'' {
            return self.lifetime_or_char();
        }
        if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 {
            return self.ident_body();
        }
        if c.is_ascii_digit() {
            return self.number_body();
        }
        if c.is_ascii_punctuation() {
            self.bump();
            return TokKind::Punct;
        }
        self.bump();
        TokKind::Unknown
    }

    /// `"…"` with escapes; unterminated runs to EOF.
    fn string_body(&mut self) -> TokKind {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        TokKind::Str
    }

    /// Raw string starting at the current `r`/`br`/`cr` position:
    /// `r##"…"##` with any hash count. Caller verified the shape.
    fn raw_string_body(&mut self, prefix_len: usize, hashes: usize) -> TokKind {
        for _ in 0..prefix_len + hashes + 1 {
            self.bump(); // prefix, hashes, opening quote
        }
        while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                let mut matched = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != b'#' {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    for _ in 0..hashes + 1 {
                        self.bump();
                    }
                    return TokKind::Str;
                }
            }
            self.bump();
        }
        TokKind::Str
    }

    /// Try to lex `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, `c"…"`,
    /// `cr#"…"#` or a raw identifier `r#ident`. Returns `None` when the
    /// current position is a plain identifier starting with r/b/c.
    fn try_prefixed_literal(&mut self) -> Option<TokKind> {
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        // two-byte prefixes: br cr
        let (prefix_len, raw_capable) = if (c0 == b'b' || c0 == b'c') && c1 == b'r' {
            (2, true)
        } else if c0 == b'r' {
            (1, true)
        } else {
            (1, false) // b"…" / b'…' / c"…"
        };
        let after = self.peek(prefix_len);
        if raw_capable {
            // count hashes after the r
            let mut hashes = 0usize;
            while self.peek(prefix_len + hashes) == b'#' {
                hashes += 1;
            }
            let quote = self.peek(prefix_len + hashes);
            if quote == b'"' {
                return Some(self.raw_string_body(prefix_len, hashes));
            }
            // raw identifier r#ident
            if prefix_len == 1 && hashes == 1 && (after == b'#') {
                let id_start = self.peek(2);
                if id_start == b'_' || id_start.is_ascii_alphabetic() {
                    self.bump();
                    self.bump();
                    return Some(self.ident_body());
                }
            }
        }
        if prefix_len == 1 {
            if after == b'"' {
                self.bump();
                return Some(self.string_body());
            }
            if c0 == b'b' && after == b'\'' {
                self.bump();
                self.bump(); // b'
                return Some(self.char_tail());
            }
        }
        None
    }

    /// After the opening `'` of a character literal: consume up to and
    /// including the closing quote. Scanning byte-wise to the quote keeps
    /// multi-byte chars (`'·'`, `'😀'`) intact — `0x27` never occurs as a
    /// UTF-8 continuation byte. An unterminated literal stops at the end
    /// of line so a stray quote cannot swallow the rest of the file.
    fn char_tail(&mut self) -> TokKind {
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.bump();
                    return TokKind::Char;
                }
                b'\n' => return TokKind::Char,
                _ => self.bump(),
            }
        }
        TokKind::Char
    }

    /// `'` starts either a lifetime/label (`'a`, `'static`) or a char
    /// literal (`'x'`, `'\n'`). A quote whose next char begins an
    /// identifier is a lifetime unless the char after that closes it.
    fn lifetime_or_char(&mut self) -> TokKind {
        let n1 = self.peek(1);
        let n2 = self.peek(2);
        let ident_start = n1 == b'_' || n1.is_ascii_alphabetic();
        if ident_start && n2 != b'\'' {
            self.bump(); // '
            self.ident_body();
            return TokKind::Lifetime;
        }
        self.bump(); // '
        self.char_tail()
    }

    fn ident_body(&mut self) -> TokKind {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        TokKind::Ident
    }

    /// Number: digits with underscores, base prefixes, one `.` when a
    /// digit follows, exponent with optional sign, alphabetic suffix.
    fn number_body(&mut self) -> TokKind {
        let mut prev_exp = false;
        self.bump(); // leading digit
        while self.pos < self.src.len() {
            let c = self.peek(0);
            if c == b'_' || c.is_ascii_alphanumeric() {
                prev_exp = (c == b'e' || c == b'E') && !self.in_hex_prefix();
                self.bump();
            } else if (c == b'.' || ((c == b'+' || c == b'-') && prev_exp))
                && self.peek(1).is_ascii_digit()
            {
                prev_exp = false;
                self.bump();
            } else {
                break;
            }
        }
        TokKind::Num
    }

    /// True when this literal began with `0x`/`0X` (so `e` is a digit,
    /// not an exponent).
    fn in_hex_prefix(&self) -> bool {
        // scan back from pos to the literal start is overkill; checking the
        // two bytes that began the token is enough because number_body is
        // only entered on an ascii digit.
        let mut i = self.pos;
        while i > 0 && (self.src[i - 1].is_ascii_alphanumeric() || self.src[i - 1] == b'_') {
            i -= 1;
        }
        self.src.get(i) == Some(&b'0') && matches!(self.src.get(i + 1), Some(&b'x') | Some(&b'X'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lexer must reproduce input byte-for-byte");
    }

    #[test]
    fn roundtrips_basic_shapes() {
        roundtrip("fn main() { let x = 1.5e-3; }\n");
        roundtrip("let s = \"a \\\" b // not a comment\"; // real comment\n");
        roundtrip("let r = r#\"raw \" inside\"#; let b = b\"bytes\";\n");
        roundtrip("let c = 'x'; let nl = '\\n'; fn f<'a>(v: &'a str) {}\n");
        roundtrip("let dot = '\u{b7}'; let emoji = '\u{1F600}'; let q = '\\'';\n");
        roundtrip("/* nested /* block */ comment */ mod m;\n");
        roundtrip("let hex = 0xFFee_00u64; let f = 2.; let r = 1..4;\n");
        roundtrip("'outer: loop { break 'outer; }\n");
        roundtrip("");
    }

    #[test]
    fn classifies_lifetime_vs_char() {
        let src = "fn f<'a>(x: &'a u8) { let c = 'a'; }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2, "{toks:?}");
        assert_eq!(chars, 1);
    }

    #[test]
    fn braces_inside_strings_are_not_puncts() {
        let src = "let s = \"{ not a brace }\";";
        let toks = lex(src);
        let braces = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && matches!(t.text(src), "{" | "}"))
            .count();
        assert_eq!(braces, 0);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n  c";
        let toks = lex(src);
        let c = toks.iter().find(|t| t.text(src) == "c").expect("c token");
        assert_eq!(c.line, 3);
    }

    #[test]
    fn unterminated_literals_run_to_eof() {
        roundtrip("let s = \"never closed");
        roundtrip("let r = r#\"never closed");
        roundtrip("/* never closed");
    }

    #[test]
    fn total_on_arbitrary_bytes() {
        roundtrip("\u{FEFF}weird \u{1F600} bytes ~~ @@ ## '' ");
    }
}
