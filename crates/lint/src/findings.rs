//! Findings: what a lint pass reports, and the deterministic JSON
//! rendering the golden tests and `xtask analyze --json` share.

use std::fmt::Write as _;

/// One diagnostic from one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Pass name: `token`, `lock-order`, `held-lock`, `relaxed`,
    /// `unbounded-growth`.
    pub lint: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    pub line: u32,
    /// Stable allowlist key — what `lint-allow.txt` entries match on.
    pub key: String,
    /// Human-readable explanation.
    pub message: String,
    /// Set when an allowlist entry covered this finding; justified
    /// findings are reported but do not fail the build.
    pub justified: bool,
}

/// Sort findings into the canonical order used everywhere findings are
/// rendered: by file, line, lint, key.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.lint, &a.key).cmp(&(&b.file, b.line, &b.lint, &b.key))
    });
}

/// Render findings as a deterministic JSON document. Byte-for-byte
/// stable for a given finding set — the fixture goldens depend on it.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"lint\": {}, \"file\": {}, \"line\": {}, \"key\": {}, \"message\": {}, \"justified\": {}",
            escape(&f.lint),
            escape(&f.file),
            f.line,
            escape(&f.key),
            escape(&f.message),
            f.justified
        );
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    let open = findings.iter().filter(|f| !f.justified).count();
    let _ = write!(out, "],\n  \"total\": {},\n  \"unjustified\": {}\n}}\n", findings.len(), open);
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut fs = vec![
            Finding {
                lint: "token".into(),
                file: "b.rs".into(),
                line: 2,
                key: "b.rs: x.unwrap()".into(),
                message: "says \"hi\"".into(),
                justified: false,
            },
            Finding {
                lint: "token".into(),
                file: "a.rs".into(),
                line: 9,
                key: "a.rs: y.unwrap()".into(),
                message: "m".into(),
                justified: true,
            },
        ];
        sort_findings(&mut fs);
        assert_eq!(fs[0].file, "a.rs");
        let json = render_json(&fs);
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.contains("\"total\": 2"));
        assert!(json.contains("\"unjustified\": 1"));
        assert_eq!(json, render_json(&fs), "stable across calls");
    }

    #[test]
    fn empty_findings_render_compact() {
        let json = render_json(&[]);
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"unjustified\": 0"));
    }
}
