//! Lightweight item parser over the lexer's token stream.
//!
//! This is not a Rust front end — it recognises exactly the surface the
//! lint passes need: `use` paths, `mod` structure, `struct` fields with
//! their type text, `fn` signatures and body extents (associated to their
//! `impl`/`trait` owner), and `static`/`static mut` items. Everything else
//! is skipped with balanced-delimiter matching, which the lexer makes
//! safe (braces inside strings and comments are trivia, not structure).
//!
//! `#[cfg(test)]`-gated modules and functions are parsed but flagged, so
//! passes can exempt test code the way the original token lint did.

use crate::lexer::{lex, Tok, TokKind};

/// A parsed source file: raw text, full token stream, and the items found.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Name of the crate directory the file belongs to (e.g. `engine`).
    pub crate_name: String,
    pub src: String,
    pub toks: Vec<Tok>,
    pub fns: Vec<FnDef>,
    pub structs: Vec<StructDef>,
    pub uses: Vec<String>,
    pub mods: Vec<ModDecl>,
    pub statics: Vec<StaticDef>,
}

/// A function (free or associated) with its body's token extent.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// `impl`/`trait` type the fn is associated with, when any.
    pub owner: Option<String>,
    /// Token-index range of the body *contents* (inside the braces),
    /// `None` for bodiless declarations.
    pub body: Option<(usize, usize)>,
    /// True when the first parameter is a `self` receiver.
    pub has_self: bool,
    pub line: u32,
    /// Inside a `#[cfg(test)]` module or carrying `#[test]`/`#[cfg(test)]`.
    pub in_test: bool,
}

impl FnDef {
    /// `Owner::name` for methods, bare `name` for free functions.
    pub fn qual(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

#[derive(Debug)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
    pub line: u32,
}

#[derive(Debug)]
pub struct FieldDef {
    pub name: String,
    /// The field's type as space-joined token text, e.g.
    /// `Mutex < HashMap < u64 , CacheEntry > >`.
    pub ty: String,
}

#[derive(Debug)]
pub struct ModDecl {
    pub name: String,
    /// `mod x { … }` vs `mod x;`.
    pub inline: bool,
    pub cfg_test: bool,
    pub line: u32,
}

#[derive(Debug)]
pub struct StaticDef {
    pub name: String,
    pub mutable: bool,
    pub line: u32,
}

/// Parse one file's source. Total like the lexer: malformed source yields
/// a partial item list, never an error.
pub fn parse_file(path: String, crate_name: String, src: String) -> ParsedFile {
    let toks = lex(&src);
    // indices of non-trivia tokens, the parser's navigation plane
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_trivia()).collect();
    let mut out = ParsedFile {
        path,
        crate_name,
        src,
        toks,
        fns: Vec::new(),
        structs: Vec::new(),
        uses: Vec::new(),
        mods: Vec::new(),
        statics: Vec::new(),
    };
    let n = sig.len();
    let mut p = Parser { file: &mut out, sig: &sig };
    p.items(0, n, None, false);
    out
}

struct Parser<'f> {
    file: &'f mut ParsedFile,
    /// Indices into `file.toks` of non-trivia tokens.
    sig: &'f [usize],
}

impl<'f> Parser<'f> {
    fn text(&self, si: usize) -> &str {
        let t = self.file.toks[self.sig[si]];
        t.text(&self.file.src)
    }

    fn kind(&self, si: usize) -> TokKind {
        self.file.toks[self.sig[si]].kind
    }

    fn line(&self, si: usize) -> u32 {
        self.file.toks[self.sig[si]].line
    }

    /// Index (in sig space) just past the delimiter-balanced group whose
    /// opener sits at `si`. Openers: `(`, `[`, `{`.
    fn skip_group(&self, si: usize, end: usize) -> usize {
        let open = self.text(si);
        let close = match open {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return si + 1,
        };
        let mut depth = 0usize;
        let mut i = si;
        while i < end {
            let t = self.text(i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Skip a generics group `<…>` starting at `si` (which must be `<`).
    /// `->` arrows inside (Fn-trait sugar) do not close the group.
    fn skip_generics(&self, si: usize, end: usize) -> usize {
        let mut depth = 0i64;
        let mut i = si;
        while i < end {
            match self.text(i) {
                "<" => depth += 1,
                ">" => {
                    // `->` is an arrow, not a generics close
                    let arrow = i > 0 && self.text(i - 1) == "-";
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                }
                "(" | "[" | "{" => {
                    i = self.skip_group(i, end);
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Parse items in `sig[start..end]`. `owner` is the enclosing
    /// impl/trait type; `in_test` marks `#[cfg(test)]` scope.
    fn items(&mut self, start: usize, end: usize, owner: Option<&str>, in_test: bool) {
        let mut i = start;
        let mut attr_test = false; // #[cfg(test)] / #[test] seen since last item
        while i < end {
            match self.text(i) {
                "#" => {
                    // attribute: #[…] or #![…]
                    let mut j = i + 1;
                    if j < end && self.text(j) == "!" {
                        j += 1;
                    }
                    if j < end && self.text(j) == "[" {
                        let close = self.skip_group(j, end);
                        let attr: String =
                            (j..close).map(|k| self.text(k)).collect::<Vec<_>>().join(" ");
                        if attr.contains("cfg ( test )") || attr == "[ test ]" {
                            attr_test = true;
                        }
                        i = close;
                    } else {
                        i += 1;
                    }
                }
                "fn" => {
                    i = self.parse_fn(i, end, owner, in_test || attr_test);
                    attr_test = false;
                }
                "struct" => {
                    i = self.parse_struct(i, end);
                    attr_test = false;
                }
                "impl" | "trait" => {
                    i = self.parse_impl_or_trait(i, end, in_test || attr_test);
                    attr_test = false;
                }
                "mod" => {
                    i = self.parse_mod(i, end, owner, in_test || attr_test);
                    attr_test = false;
                }
                "use" => {
                    let mut j = i + 1;
                    let mut path = String::new();
                    while j < end && self.text(j) != ";" {
                        path.push_str(self.text(j));
                        j += 1;
                    }
                    self.file.uses.push(path);
                    i = j + 1;
                    attr_test = false;
                }
                "static" => {
                    let mutable = i + 1 < end && self.text(i + 1) == "mut";
                    let name_i = if mutable { i + 2 } else { i + 1 };
                    if name_i < end && self.kind(name_i) == TokKind::Ident {
                        self.file.statics.push(StaticDef {
                            name: self.text(name_i).to_string(),
                            mutable,
                            line: self.line(i),
                        });
                    }
                    i = name_i + 1;
                    attr_test = false;
                }
                "{" | "(" | "[" => {
                    i = self.skip_group(i, end);
                }
                _ => i += 1,
            }
        }
    }

    /// `fn name <generics>? ( params ) (-> ret)? (where …)? { body } | ;`
    fn parse_fn(&mut self, fn_i: usize, end: usize, owner: Option<&str>, in_test: bool) -> usize {
        let name_i = fn_i + 1;
        if name_i >= end || self.kind(name_i) != TokKind::Ident {
            return fn_i + 1;
        }
        let name = self.text(name_i).to_string();
        let line = self.line(fn_i);
        let mut i = name_i + 1;
        if i < end && self.text(i) == "<" {
            i = self.skip_generics(i, end);
        }
        if i >= end || self.text(i) != "(" {
            return name_i + 1;
        }
        let params_end = self.skip_group(i, end);
        let has_self =
            (i + 1..params_end.saturating_sub(1)).take(4).any(|k| self.text(k) == "self");
        i = params_end;
        // scan to body `{` or declaration `;` — return types and where
        // clauses contain no braces we care about, but skip grouped tokens
        while i < end {
            match self.text(i) {
                "{" => {
                    let close = self.skip_group(i, end);
                    self.file.fns.push(FnDef {
                        name,
                        owner: owner.map(str::to_string),
                        body: Some((self.sig[i] + 1, self.sig[close - 1])),
                        has_self,
                        line,
                        in_test,
                    });
                    return close;
                }
                ";" => {
                    self.file.fns.push(FnDef {
                        name,
                        owner: owner.map(str::to_string),
                        body: None,
                        has_self,
                        line,
                        in_test,
                    });
                    return i + 1;
                }
                "(" | "[" => {
                    i = self.skip_group(i, end);
                }
                "<" => {
                    i = self.skip_generics(i, end);
                }
                _ => i += 1,
            }
        }
        end
    }

    /// `struct Name <generics>? { fields } | ( … ); | ;`
    fn parse_struct(&mut self, struct_i: usize, end: usize) -> usize {
        let name_i = struct_i + 1;
        if name_i >= end || self.kind(name_i) != TokKind::Ident {
            return struct_i + 1;
        }
        let name = self.text(name_i).to_string();
        let line = self.line(struct_i);
        let mut i = name_i + 1;
        if i < end && self.text(i) == "<" {
            i = self.skip_generics(i, end);
        }
        // where clause tokens may precede the brace
        while i < end && !matches!(self.text(i), "{" | "(" | ";") {
            if self.text(i) == "<" {
                i = self.skip_generics(i, end);
            } else {
                i += 1;
            }
        }
        if i >= end {
            return end;
        }
        if self.text(i) != "{" {
            // tuple struct or unit struct: no named fields to index
            self.file.structs.push(StructDef { name, fields: Vec::new(), line });
            return self.skip_group(i, end).max(i + 1);
        }
        let close = self.skip_group(i, end);
        let fields = self.parse_fields(i + 1, close - 1);
        self.file.structs.push(StructDef { name, fields, line });
        close
    }

    /// Named fields between struct braces: `[attrs] [pub[(…)]] name : ty ,`
    fn parse_fields(&self, start: usize, end: usize) -> Vec<FieldDef> {
        let mut fields = Vec::new();
        let mut i = start;
        while i < end {
            // skip attributes and visibility
            while i < end && self.text(i) == "#" {
                let mut j = i + 1;
                if j < end && self.text(j) == "[" {
                    j = self.skip_group(j, end);
                }
                i = j;
            }
            if i < end && self.text(i) == "pub" {
                i += 1;
                if i < end && self.text(i) == "(" {
                    i = self.skip_group(i, end);
                }
            }
            if i + 1 < end && self.kind(i) == TokKind::Ident && self.text(i + 1) == ":" {
                let name = self.text(i).to_string();
                let mut j = i + 2;
                let mut ty = String::new();
                let mut angle = 0i64;
                while j < end {
                    let t = self.text(j);
                    match t {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "," if angle <= 0 => break,
                        "(" | "[" | "{" => {
                            let close = self.skip_group(j, end);
                            for k in j..close {
                                if !ty.is_empty() {
                                    ty.push(' ');
                                }
                                ty.push_str(self.text(k));
                            }
                            j = close;
                            continue;
                        }
                        _ => {}
                    }
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(t);
                    j += 1;
                }
                fields.push(FieldDef { name, ty });
                i = j + 1;
            } else {
                i += 1;
            }
        }
        fields
    }

    /// `impl <g>? Type { … }`, `impl <g>? Trait for Type { … }`,
    /// `trait Name { … }` — items inside get the type as `owner`.
    fn parse_impl_or_trait(&mut self, kw_i: usize, end: usize, in_test: bool) -> usize {
        let is_trait = self.text(kw_i) == "trait";
        let mut i = kw_i + 1;
        if i < end && self.text(i) == "<" {
            i = self.skip_generics(i, end);
        }
        // collect header tokens up to the brace, tracking `for`
        let mut after_for: Option<usize> = None;
        let header_start = i;
        while i < end && self.text(i) != "{" {
            match self.text(i) {
                "for" => {
                    after_for = Some(i + 1);
                    i += 1;
                }
                "<" => i = self.skip_generics(i, end),
                "(" | "[" => i = self.skip_group(i, end),
                "where" => {
                    // where clause runs to the brace
                    while i < end && self.text(i) != "{" {
                        if self.text(i) == "<" {
                            i = self.skip_generics(i, end);
                        } else {
                            i += 1;
                        }
                    }
                }
                _ => i += 1,
            }
        }
        if i >= end {
            return end;
        }
        let ty_start = after_for.unwrap_or(header_start);
        // owner = last plain ident of the type path before generics/brace
        let mut owner = None;
        let mut k = ty_start;
        while k < i {
            match self.kind(k) {
                TokKind::Ident if !matches!(self.text(k), "dyn" | "mut" | "const") => {
                    owner = Some(self.text(k).to_string());
                    k += 1;
                }
                _ if self.text(k) == "<" => {
                    k = self.skip_generics(k, i);
                }
                _ => k += 1,
            }
        }
        if is_trait && owner.is_none() {
            owner = Some(String::from("<trait>"));
        }
        let close = self.skip_group(i, end);
        let owner_ref = owner.as_deref();
        self.items(i + 1, close - 1, owner_ref, in_test);
        close
    }

    /// `mod name ;` or `mod name { … }` (recursing into the body).
    fn parse_mod(
        &mut self,
        mod_i: usize,
        end: usize,
        owner: Option<&str>,
        cfg_test: bool,
    ) -> usize {
        let name_i = mod_i + 1;
        if name_i >= end || self.kind(name_i) != TokKind::Ident {
            return mod_i + 1;
        }
        let name = self.text(name_i).to_string();
        let line = self.line(mod_i);
        let i = name_i + 1;
        if i < end && self.text(i) == "{" {
            let close = self.skip_group(i, end);
            let in_test = cfg_test || name == "tests";
            self.file.mods.push(ModDecl { name, inline: true, cfg_test: in_test, line });
            self.items(i + 1, close - 1, owner, in_test);
            return close;
        }
        self.file.mods.push(ModDecl { name, inline: false, cfg_test, line });
        i + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("x.rs".into(), "x".into(), src.into())
    }

    #[test]
    fn finds_free_and_associated_fns() {
        let f = parse(
            "fn free() { body(); }\nimpl Engine { fn submit(&self) -> u8 { 0 } }\n\
             impl Sink for Tee { fn emit(&self) {} }\ntrait T { fn decl(&self); }\n",
        );
        let quals: Vec<String> = f.fns.iter().map(FnDef::qual).collect();
        assert_eq!(quals, ["free", "Engine::submit", "Tee::emit", "T::decl"]);
        assert!(f.fns[1].has_self);
        assert!(!f.fns[0].has_self);
        assert!(f.fns[3].body.is_none());
    }

    #[test]
    fn struct_fields_carry_type_text() {
        let f = parse(
            "pub struct Cache {\n    map: Mutex<HashMap<u64, Entry>>,\n    hits: AtomicU64,\n}\n",
        );
        assert_eq!(f.structs.len(), 1);
        let fields = &f.structs[0].fields;
        assert_eq!(fields[0].name, "map");
        assert!(fields[0].ty.contains("Mutex"), "{}", fields[0].ty);
        assert!(fields[0].ty.contains("HashMap"), "{}", fields[0].ty);
        assert_eq!(fields[1].name, "hits");
    }

    #[test]
    fn cfg_test_modules_flag_their_fns() {
        let f = parse("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n");
        assert!(!f.fns[0].in_test);
        assert!(f.fns[1].in_test);
    }

    #[test]
    fn generics_with_fn_sugar_do_not_derail() {
        let f = parse("fn apply<F: Fn(usize) -> bool>(f: F) -> bool { f(1) }\n");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "apply");
        assert!(f.fns[0].body.is_some());
    }

    #[test]
    fn statics_and_uses_are_recorded() {
        let f = parse("use std::sync::Arc;\nstatic mut COUNTER: u64 = 0;\nstatic OK: u8 = 1;\n");
        assert_eq!(f.uses.len(), 1);
        assert!(f.uses[0].contains("Arc"));
        assert_eq!(f.statics.len(), 2);
        assert!(f.statics[0].mutable);
        assert!(!f.statics[1].mutable);
    }

    #[test]
    fn strings_with_braces_do_not_break_nesting() {
        let f = parse("fn a() { let s = \"}}}{{{\"; }\nfn b() {}\n");
        assert_eq!(f.fns.len(), 2);
    }
}
