//! `lint-allow.txt` parsing and validation.
//!
//! Entry format (one per line, `#` comments and blanks skipped):
//!
//! ```text
//! <key> reason="why this is acceptable"
//! ```
//!
//! Keys by lint:
//! - token lint (legacy): `crates/x/src/y.rs: let v = x.unwrap();`
//!   (path, colon, the trimmed offending line)
//! - held-lock: `held-lock crates/x/src/y.rs: Struct.field across recv`
//! - lock-order: `lock-order crates/x/src/y.rs: cycle A.m -> B.n -> A.m`
//! - unbounded-growth: `unbounded-growth crates/x/src/y.rs: Struct.field`
//! - relaxed (module scope): `relaxed-module crates/obs/src/registry.rs`
//!   — every `Relaxed` in that file is a justified counter use
//!
//! Validation is strict: a `reason=` is mandatory, the referenced path
//! must exist, and every entry must match at least one finding on the
//! current tree (stale entries fail `analyze`).

use std::cell::RefCell;
use std::fs;
use std::path::Path;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub key: String,
    pub reason: String,
    pub line: u32,
    /// Set when a finding matched this entry during a run.
    used: RefCell<bool>,
}

/// The parsed allowlist plus any format errors found while parsing.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    /// Format problems: missing reason, empty key. Each is
    /// `(line, message)`.
    pub errors: Vec<(u32, String)>,
}

impl Allowlist {
    pub fn parse(text: &str) -> Self {
        let mut out = Allowlist::default();
        for (i, raw) in text.lines().enumerate() {
            let line = (i + 1) as u32;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let Some(pos) = trimmed.find(" reason=\"") else {
                out.errors.push((line, format!("missing reason=\"…\" field: {trimmed}")));
                continue;
            };
            let key = trimmed[..pos].trim().to_string();
            let rest = &trimmed[pos + " reason=\"".len()..];
            let Some(end) = rest.rfind('"') else {
                out.errors.push((line, "unterminated reason string".to_string()));
                continue;
            };
            let reason = rest[..end].to_string();
            if key.is_empty() {
                out.errors.push((line, "empty allowlist key".to_string()));
                continue;
            }
            if reason.trim().is_empty() {
                out.errors.push((line, format!("empty reason for key: {key}")));
                continue;
            }
            out.entries.push(AllowEntry { key, reason, line, used: RefCell::new(false) });
        }
        out
    }

    pub fn load(path: &Path) -> std::io::Result<Self> {
        Ok(Self::parse(&fs::read_to_string(path)?))
    }

    /// Exact-key match; marks the entry used.
    pub fn matches(&self, key: &str) -> bool {
        let mut hit = false;
        for e in self.entries.iter().filter(|e| e.key == key) {
            *e.used.borrow_mut() = true;
            hit = true;
        }
        hit
    }

    /// Module-scope match for the `relaxed` lint: an entry
    /// `relaxed-module <path>` justifies every Relaxed in that file.
    pub fn matches_relaxed_module(&self, file: &str) -> bool {
        let key = format!("relaxed-module {file}");
        self.matches(&key)
    }

    /// The workspace-relative path an entry refers to, for existence
    /// validation. Prefixed keys carry it as the second word; token keys
    /// start with it.
    pub fn entry_path(key: &str) -> Option<&str> {
        let body = key
            .strip_prefix("held-lock ")
            .or_else(|| key.strip_prefix("lock-order "))
            .or_else(|| key.strip_prefix("unbounded-growth "))
            .or_else(|| key.strip_prefix("relaxed-module "))
            .unwrap_or(key);
        let path = body.split(':').next()?.trim();
        if path.ends_with(".rs") {
            Some(path)
        } else {
            None
        }
    }

    /// Validate entries against the tree rooted at `root`: referenced
    /// paths must exist. Returns `(line, message)` problems.
    pub fn validate_paths(&self, root: &Path) -> Vec<(u32, String)> {
        let mut out = Vec::new();
        for e in &self.entries {
            match Self::entry_path(&e.key) {
                Some(p) if root.join(p).is_file() => {}
                Some(p) => out.push((e.line, format!("allowlist path does not exist: {p}"))),
                None => out.push((e.line, format!("allowlist key has no .rs path: {}", e.key))),
            }
        }
        out
    }

    /// Entries never matched by any finding this run — stale; they fail
    /// `analyze` so the allowlist cannot rot.
    pub fn stale(&self) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !*e.used.borrow()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_reasons_and_flags_missing_ones() {
        let a = Allowlist::parse(
            "# comment\n\
             crates/x/src/a.rs: v.unwrap(); reason=\"checked above\"\n\
             crates/x/src/b.rs: w.unwrap();\n",
        );
        assert_eq!(a.entries.len(), 1);
        assert_eq!(a.entries[0].reason, "checked above");
        assert_eq!(a.errors.len(), 1);
        assert!(a.errors[0].1.contains("missing reason"));
    }

    #[test]
    fn matching_marks_used_and_stale_reports_the_rest() {
        let a = Allowlist::parse(
            "held-lock crates/t/src/sink.rs: S.out across write_all reason=\"serialized writer\"\n\
             unbounded-growth crates/e/src/cache.rs: C.map reason=\"capped elsewhere\"\n",
        );
        assert!(a.matches("held-lock crates/t/src/sink.rs: S.out across write_all"));
        assert!(!a.matches("no such key"));
        let stale = a.stale();
        assert_eq!(stale.len(), 1);
        assert!(stale[0].key.starts_with("unbounded-growth"));
    }

    #[test]
    fn entry_paths_extract_for_all_key_shapes() {
        assert_eq!(
            Allowlist::entry_path("crates/x/src/a.rs: foo.unwrap()"),
            Some("crates/x/src/a.rs")
        );
        assert_eq!(
            Allowlist::entry_path("held-lock shims/crossbeam/src/lib.rs: Shared.queue across wait"),
            Some("shims/crossbeam/src/lib.rs")
        );
        assert_eq!(
            Allowlist::entry_path("relaxed-module crates/obs/src/registry.rs"),
            Some("crates/obs/src/registry.rs")
        );
        assert_eq!(Allowlist::entry_path("garbage"), None);
    }

    #[test]
    fn reason_with_inner_quotes_is_kept_to_last_quote() {
        let a = Allowlist::parse("crates/x/src/a.rs: x reason=\"the \"why\" matters\"\n");
        assert_eq!(a.entries[0].reason, "the \"why\" matters");
    }
}
