//! `rrp-lint`: std-only static analysis for the workspace.
//!
//! Pipeline: [`lexer`] (total, loss-free tokenization) → [`parse`]
//! (lightweight item parser: fns, structs/fields, uses, mods, statics)
//! → [`model`] (module graph, struct/field indexes, approximate call
//! graph, loop reachability) → [`passes`] (token safety scan,
//! lock-order cycles, held-lock-across-blocking, atomic-ordering audit,
//! unbounded growth) → [`findings`] (deterministic JSON) gated by
//! [`allow`] (`lint-allow.txt` with mandatory `reason=` fields).
//!
//! The entry point is [`analyze`]; `cargo run -p xtask -- analyze`
//! drives it. See DESIGN.md § "Static analysis" for what each pass
//! proves and does not prove.

pub mod allow;
pub mod findings;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod passes;

use std::path::Path;

use allow::Allowlist;
use findings::{sort_findings, Finding};
use model::Workspace;

/// The result of a full analysis run.
pub struct Analysis {
    /// All findings, canonically sorted; `justified` set per allowlist.
    pub findings: Vec<Finding>,
    /// Allowlist problems (format errors, dead paths, stale entries) —
    /// each fails the run just like an unjustified finding.
    pub allow_errors: Vec<String>,
    /// Number of source files analysed.
    pub files: usize,
}

impl Analysis {
    /// Findings not covered by the allowlist.
    pub fn unjustified(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.justified)
    }

    /// The run is clean: no unjustified findings, no allowlist problems.
    pub fn is_clean(&self) -> bool {
        self.allow_errors.is_empty() && self.unjustified().next().is_none()
    }
}

/// Run every pass over an already-built workspace model, justify
/// findings against `allow`, and validate the allowlist itself (paths
/// exist relative to `root` when given; no entry is stale).
pub fn analyze_workspace(ws: &Workspace, allow: &Allowlist, root: Option<&Path>) -> Analysis {
    let mut findings = Vec::new();
    for pass in passes::default_passes() {
        findings.extend(pass.run(ws));
    }
    for f in &mut findings {
        f.justified =
            allow.matches(&f.key) || (f.lint == "relaxed" && allow.matches_relaxed_module(&f.file));
    }
    sort_findings(&mut findings);

    let mut allow_errors: Vec<String> =
        allow.errors.iter().map(|(line, msg)| format!("lint-allow.txt:{line}: {msg}")).collect();
    if let Some(root) = root {
        for (line, msg) in allow.validate_paths(root) {
            allow_errors.push(format!("lint-allow.txt:{line}: {msg}"));
        }
    }
    for e in allow.stale() {
        allow_errors.push(format!(
            "lint-allow.txt:{}: stale entry (matches no finding): {}",
            e.line, e.key
        ));
    }

    Analysis { findings, allow_errors, files: ws.files.len() }
}

/// Analyse the workspace rooted at `root` (`crates/*/src` and
/// `shims/*/src`) against its `lint-allow.txt`.
pub fn analyze(root: &Path) -> std::io::Result<Analysis> {
    let ws = Workspace::load(root)?;
    let allow_path = root.join("lint-allow.txt");
    let allow =
        if allow_path.is_file() { Allowlist::load(&allow_path)? } else { Allowlist::default() };
    Ok(analyze_workspace(&ws, &allow, Some(root)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parse::parse_file;

    #[test]
    fn end_to_end_on_a_tiny_tree() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   impl S {\n\
                     fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                     fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
                   }\n";
        let ws = Workspace::from_files(vec![parse_file(
            "crates/x/src/lib.rs".into(),
            "x".into(),
            src.into(),
        )]);
        let allow = Allowlist::default();
        let a = analyze_workspace(&ws, &allow, None);
        assert!(!a.is_clean());
        assert!(a.findings.iter().any(|f| f.lint == "lock-order"));
    }

    #[test]
    fn allowlisted_findings_are_justified_and_entries_not_stale() {
        let src = "struct S { out: Mutex<u8> }\n\
                   impl S { fn emit(&self) { let g = self.out.lock(); g.write_all(b\"x\"); } }\n";
        let ws = Workspace::from_files(vec![parse_file(
            "crates/x/src/lib.rs".into(),
            "x".into(),
            src.into(),
        )]);
        let allow = Allowlist::parse(
            "held-lock crates/x/src/lib.rs: S.out across write_all reason=\"writer mutex\"\n",
        );
        let a = analyze_workspace(&ws, &allow, None);
        assert!(a.is_clean(), "findings: {:?}, errors: {:?}", a.findings, a.allow_errors);
        assert_eq!(a.findings.len(), 1);
        assert!(a.findings[0].justified);
    }

    #[test]
    fn stale_allow_entry_fails_the_run() {
        let ws = Workspace::from_files(vec![parse_file(
            "crates/x/src/lib.rs".into(),
            "x".into(),
            "fn f() {}\n".into(),
        )]);
        let allow =
            Allowlist::parse("crates/x/src/lib.rs: gone.unwrap(); reason=\"was needed once\"\n");
        let a = analyze_workspace(&ws, &allow, None);
        assert!(!a.is_clean());
        assert!(a.allow_errors[0].contains("stale"));
    }
}
