//! The analysis model built on top of the parser: per-crate module
//! graph, struct/field indexes (which fields are locks, which are
//! growable collections), an approximate call graph, and per-function
//! body walkers the passes share.
//!
//! Resolution here is deliberately *approximate* — names, not types. A
//! receiver chain like `self.shared.queue` is resolved field-by-field
//! through the struct index; a bare method name resolves to every impl
//! that defines it. Lints built on this over-approximate reachability
//! (acceptable: every report is checked against the allowlist) and
//! under-approximate aliasing (documented in DESIGN.md: what each lint
//! does NOT prove).

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use crate::lexer::{Tok, TokKind};
use crate::parse::{parse_file, FnDef, ParsedFile, StructDef};

/// Identifies a function: (file index, fn index within that file).
pub type FnId = (usize, usize);

/// One resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (`process` for `process(x)`, `lock` for `.lock()`).
    pub name: String,
    /// Method call (`recv.x()`) vs free call (`x()`).
    pub method: bool,
    /// Receiver chain for method calls, innermost first:
    /// `self.shared.queue.lock()` → `["self", "shared", "queue"]`.
    pub receiver: Vec<String>,
    /// Index of the name token in the file's token stream.
    pub tok: usize,
    pub line: u32,
    /// The call site sits inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
}

/// A module in the per-crate module graph.
#[derive(Debug)]
pub struct ModuleNode {
    /// `crate_name::path::to::module` (files) or inline module path.
    pub path: String,
    /// File index backing the module, when it is file-backed.
    pub file: Option<usize>,
}

/// The whole analysed source tree.
pub struct Workspace {
    pub files: Vec<ParsedFile>,
    /// Calls per function, parallel to `files[f].fns`.
    pub calls: BTreeMap<FnId, Vec<CallSite>>,
    /// Struct name → every definition site (several crates may reuse a
    /// name — `Shared` exists in both `engine` and the crossbeam shim).
    pub structs: BTreeMap<String, Vec<(usize, usize)>>,
    /// Field name → owning struct names (for fallback resolution).
    pub field_owners: BTreeMap<String, Vec<String>>,
    /// `Struct.field` ids whose type is `Mutex<…>`/`RwLock<…>` (possibly
    /// behind `Arc`).
    pub lock_fields: BTreeSet<String>,
    /// `Struct.field` ids whose type contains a growable std collection.
    pub collection_fields: BTreeSet<String>,
    /// Struct names holding sync state (Mutex/RwLock/Atomic/Arc fields) —
    /// the "long-lived concurrent state" heuristic the growth lint keys on.
    pub concurrent_structs: BTreeSet<String>,
    /// Function name → every FnId bearing it (methods and free fns).
    pub fns_by_name: BTreeMap<String, Vec<FnId>>,
    /// Functions called (transitively, ≤2 hops) from inside a loop body.
    pub loop_reachable: BTreeSet<FnId>,
    /// Per-crate module graph.
    pub modules: Vec<ModuleNode>,
}

/// Receiver-chain tail segments after which a method call targets the
/// guarded/wrapped std value rather than a workspace function.
const CALL_ADAPTERS: [&str; 14] = [
    "lock",
    "read",
    "write",
    "unwrap",
    "expect",
    "unwrap_or_else",
    "borrow",
    "borrow_mut",
    "entry",
    "iter",
    "iter_mut",
    "get",
    "get_mut",
    "or_default",
];

const LOCK_MARKERS: [&str; 2] = ["Mutex <", "RwLock <"];
const COLLECTION_MARKERS: [&str; 6] =
    ["Vec <", "VecDeque <", "HashMap <", "BTreeMap <", "HashSet <", "BTreeSet <"];
const SYNC_MARKERS: [&str; 5] = ["Mutex <", "RwLock <", "Atomic", "Arc <", "Condvar"];

impl Workspace {
    /// Load and analyse every `.rs` under `crates/*/src` and
    /// `shims/*/src` below `root`.
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut files = Vec::new();
        for tier in ["crates", "shims"] {
            let dir = root.join(tier);
            let Ok(entries) = fs::read_dir(&dir) else { continue };
            let mut crates: Vec<_> = entries.flatten().map(|e| e.path()).collect();
            crates.sort();
            for krate in crates {
                let crate_name =
                    krate.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
                collect_rs(&krate.join("src"), root, &crate_name, &mut files)?;
            }
        }
        Ok(Self::from_files(files))
    }

    /// Load a single source directory as one crate — fixture trees and
    /// tests use this.
    pub fn load_dir(dir: &Path, crate_name: &str) -> std::io::Result<Self> {
        let mut files = Vec::new();
        collect_rs(dir, dir, crate_name, &mut files)?;
        Ok(Self::from_files(files))
    }

    /// Build the model from already-parsed files.
    pub fn from_files(parsed: Vec<ParsedFile>) -> Self {
        let mut ws = Workspace {
            files: parsed,
            calls: BTreeMap::new(),
            structs: BTreeMap::new(),
            field_owners: BTreeMap::new(),
            lock_fields: BTreeSet::new(),
            collection_fields: BTreeSet::new(),
            concurrent_structs: BTreeSet::new(),
            fns_by_name: BTreeMap::new(),
            loop_reachable: BTreeSet::new(),
            modules: Vec::new(),
        };
        ws.index_structs();
        ws.index_fns();
        ws.extract_calls();
        ws.compute_loop_reachability();
        ws.build_module_graph();
        ws
    }

    fn index_structs(&mut self) {
        for (fi, file) in self.files.iter().enumerate() {
            for (si, s) in file.structs.iter().enumerate() {
                self.structs.entry(s.name.clone()).or_default().push((fi, si));
                let mut concurrent = false;
                for field in &s.fields {
                    let id = format!("{}.{}", s.name, field.name);
                    if LOCK_MARKERS.iter().any(|m| field.ty.contains(m)) {
                        self.lock_fields.insert(id.clone());
                    }
                    if COLLECTION_MARKERS.iter().any(|m| field.ty.contains(m)) {
                        self.collection_fields.insert(id.clone());
                    }
                    if SYNC_MARKERS.iter().any(|m| field.ty.contains(m)) {
                        concurrent = true;
                    }
                    let owners = self.field_owners.entry(field.name.clone()).or_default();
                    if !owners.contains(&s.name) {
                        owners.push(s.name.clone());
                    }
                }
                if concurrent {
                    self.concurrent_structs.insert(s.name.clone());
                }
            }
        }
    }

    fn index_fns(&mut self) {
        for (fi, file) in self.files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                self.fns_by_name.entry(f.name.clone()).or_default().push((fi, ni));
            }
        }
    }

    fn extract_calls(&mut self) {
        let mut calls = BTreeMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                let Some((lo, hi)) = f.body else { continue };
                calls.insert((fi, ni), extract_calls(&file.toks, &file.src, lo, hi));
            }
        }
        self.calls = calls;
    }

    /// Functions invoked from a loop body, expanded one extra call-graph
    /// level — `worker_loop { process() }` makes `process` loop-reachable
    /// and everything `process` calls (e.g. `cache.insert`) as well.
    fn compute_loop_reachability(&mut self) {
        let mut level1: BTreeSet<FnId> = BTreeSet::new();
        for (&caller, sites) in &self.calls {
            for c in sites.iter().filter(|c| c.in_loop) {
                for id in self.resolve_call(caller, c, &[]) {
                    level1.insert(id);
                }
            }
        }
        let mut all = level1.clone();
        for &id in &level1 {
            for c in self.calls.get(&id).into_iter().flatten() {
                for callee in self.resolve_call(id, c, &[]) {
                    all.insert(callee);
                }
            }
        }
        self.loop_reachable = all;
    }

    /// The definition of `name` as seen from `krate`: a same-crate
    /// definition wins; otherwise the name must be globally unique.
    fn struct_in_crate(&self, name: &str, krate: &str) -> Option<(usize, usize)> {
        let defs = self.structs.get(name)?;
        if let Some(&d) = defs.iter().find(|&&(fi, _)| self.files[fi].crate_name == krate) {
            return Some(d);
        }
        if defs.len() == 1 {
            return Some(defs[0]);
        }
        None
    }

    /// The functions a call site may target, resolved by receiver type
    /// where possible. Deliberately under-approximate on ambiguity —
    /// a call through an unresolvable receiver with several same-named
    /// candidates targets *nothing* rather than everything (bare-name
    /// matching turned `map.lock().len()` into edges onto every `len`
    /// in the workspace).
    pub fn resolve_call(
        &self,
        caller: FnId,
        call: &CallSite,
        named_guards: &[(String, String)],
    ) -> Vec<FnId> {
        let Some(cands) = self.fns_by_name.get(&call.name) else {
            return Vec::new();
        };
        if !call.method {
            return cands.iter().copied().filter(|&id| self.fn_def(id).owner.is_none()).collect();
        }
        let recv = &call.receiver;
        // a call chained after a guard adapter (`.lock().len()`) or on a
        // named guard targets the guarded std value, not workspace code
        if recv.last().is_some_and(|l| CALL_ADAPTERS.contains(&l.as_str())) {
            return Vec::new();
        }
        if let Some(first) = recv.first() {
            if named_guards.iter().any(|(n, _)| n == first) {
                return Vec::new();
            }
        }
        let krate = &self.file(caller.0).crate_name;
        let owner_ty: Option<String> = if recv.len() == 1 && recv[0] == "self" {
            self.fn_def(caller).owner.clone()
        } else if recv.first().is_some_and(|f| f == "self") {
            self.resolve_field_walk(krate, self.fn_def(caller).owner.as_deref(), recv)
                .and_then(|(_, ty)| ty)
        } else {
            None
        };
        if let Some(ty) = owner_ty {
            return cands
                .iter()
                .copied()
                .filter(|&id| self.fn_def(id).owner.as_deref() == Some(ty.as_str()))
                .collect();
        }
        // unresolvable receiver (local variable, call result): accept only
        // a unique method candidate
        let methods: Vec<FnId> =
            cands.iter().copied().filter(|&id| self.fn_def(id).owner.is_some()).collect();
        if methods.len() == 1 {
            methods
        } else {
            Vec::new()
        }
    }

    /// Resolve a receiver chain (`["self", "shared", "queue"]`) starting
    /// inside `owner`'s impl to a `Struct.field` id, following field
    /// types through `Arc`/`Box` wrappers with same-crate struct
    /// preference. Falls back to "field name is unique across all
    /// structs" only for `self`-rooted chains.
    pub fn resolve_field(
        &self,
        krate: &str,
        owner: Option<&str>,
        chain: &[String],
    ) -> Option<String> {
        if chain.first().map(String::as_str) != Some("self") {
            return None;
        }
        if let Some((id, _)) = self.resolve_field_walk(krate, owner, chain) {
            return Some(id);
        }
        // fallback: last chain element names a field of exactly one struct
        let last = chain.last()?;
        let owners = self.field_owners.get(last)?;
        if owners.len() == 1 {
            return Some(format!("{}.{last}", owners[0]));
        }
        None
    }

    /// Walk a `self`-rooted chain through the struct index. Returns the
    /// deepest resolved `Struct.field` id and, when the whole chain
    /// resolved, the base type of the final field (for method lookup).
    fn resolve_field_walk(
        &self,
        krate: &str,
        owner: Option<&str>,
        chain: &[String],
    ) -> Option<(String, Option<String>)> {
        if chain.len() < 2 || chain[0] != "self" {
            return None;
        }
        let mut ty = owner?.to_string();
        let mut id = None;
        let mut final_ty = None;
        for field in &chain[1..] {
            let (fi, si) = self.struct_in_crate(&ty, krate)?;
            let s = &self.files[fi].structs[si];
            let fd = s.fields.iter().find(|f| &f.name == field)?;
            id = Some(format!("{ty}.{field}"));
            match base_type(&fd.ty) {
                Some(next) => {
                    final_ty = Some(next.clone());
                    ty = next;
                }
                None => {
                    final_ty = None;
                    break;
                }
            }
        }
        id.map(|id| (id, final_ty))
    }

    /// File-backed module paths: `crate::a::b` from `crates/x/src/a/b.rs`,
    /// plus inline `mod` declarations appended under their file's path.
    fn build_module_graph(&mut self) {
        let mut nodes = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            let rel = file
                .path
                .trim_end_matches(".rs")
                .trim_end_matches("/mod")
                .trim_end_matches("/lib")
                .trim_end_matches("/main");
            let tail = rel.split("/src").nth(1).unwrap_or("").trim_matches('/');
            let mut path = file.crate_name.clone();
            if !tail.is_empty() {
                path.push_str("::");
                path.push_str(&tail.replace('/', "::"));
            }
            nodes.push(ModuleNode { path: path.clone(), file: Some(fi) });
            for m in file.mods.iter().filter(|m| m.inline && !m.cfg_test) {
                nodes.push(ModuleNode { path: format!("{path}::{}", m.name), file: Some(fi) });
            }
        }
        nodes.sort_by(|a, b| a.path.cmp(&b.path));
        self.modules = nodes;
    }

    /// Locks acquired anywhere in `fn_id`'s body (the per-function
    /// summary the lock-order pass inlines one level deep).
    pub fn fn_lock_summary(&self, fn_id: FnId) -> Vec<String> {
        let (fi, ni) = fn_id;
        let file = &self.files[fi];
        let f = &file.fns[ni];
        let mut out = Vec::new();
        if f.body.is_none() {
            return out;
        }
        for c in self.calls.get(&fn_id).into_iter().flatten() {
            if matches!(c.name.as_str(), "lock" | "read" | "write") && c.method {
                if let Some(id) =
                    self.resolve_field(&file.crate_name, f.owner.as_deref(), &c.receiver)
                {
                    if self.lock_fields.contains(&id) && !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    pub fn file(&self, fi: usize) -> &ParsedFile {
        &self.files[fi]
    }

    pub fn fn_def(&self, id: FnId) -> &FnDef {
        &self.files[id.0].fns[id.1]
    }

    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        let &(fi, si) = self.structs.get(name)?.first()?;
        Some(&self.files[fi].structs[si])
    }
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<ParsedFile>,
) -> std::io::Result<()> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(());
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, root, crate_name, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p.strip_prefix(root).unwrap_or(&p).to_string_lossy().replace('\\', "/");
            let src = fs::read_to_string(&p)?;
            out.push(parse_file(rel, crate_name.to_string(), src));
        }
    }
    Ok(())
}

/// The base type ident of a field type, unwrapping `&`, `Arc<…>`,
/// `Box<…>`, `Rc<…>`, `Option<…>` and leading path segments:
/// `Arc < Shared < T > >` → `Shared`; `Mutex < … >` → `Mutex`.
pub fn base_type(ty: &str) -> Option<String> {
    let mut toks: Vec<&str> = ty.split_whitespace().collect();
    loop {
        // drop leading refs and path prefixes: `& 'a mut a :: b :: C`
        while matches!(toks.first(), Some(&"&") | Some(&"mut") | Some(&"dyn"))
            || toks.first().is_some_and(|t| t.starts_with('\''))
        {
            toks.remove(0);
        }
        while toks.len() >= 3 && toks[1] == ":" && toks[2] == ":" {
            toks.drain(0..3);
        }
        while toks.len() >= 2 && toks[1] == "::" {
            toks.drain(0..2);
        }
        match toks.first() {
            Some(&w @ ("Arc" | "Box" | "Rc" | "Option")) => {
                let _ = w;
                // unwrap one generic layer: Arc < inner … >
                if toks.get(1) == Some(&"<") {
                    toks.drain(0..2);
                    // trim the matching trailing `>` if present
                    if toks.last() == Some(&">") {
                        toks.pop();
                    }
                    continue;
                }
                return Some(w.to_string());
            }
            Some(first) => return Some((*first).to_string()),
            None => return None,
        }
    }
}

/// Walk a body token range extracting call sites with receiver chains
/// and loop context.
fn extract_calls(toks: &[Tok], src: &str, lo: usize, hi: usize) -> Vec<CallSite> {
    let sig: Vec<usize> = (lo..hi).filter(|&i| !toks[i].is_trivia()).collect();
    let text = |si: usize| toks[sig[si]].text(src);
    let mut out = Vec::new();
    // loop tracking: stack of (brace_depth, is_loop); pending flag set by
    // for/while/loop keywords until their `{` opens
    let mut depth = 0usize;
    let mut loop_depths: Vec<usize> = Vec::new();
    let mut pending_loop = false;
    let mut i = 0usize;
    while i < sig.len() {
        let t = text(i);
        match t {
            "for" | "while" | "loop" => pending_loop = true,
            "{" => {
                depth += 1;
                if pending_loop {
                    loop_depths.push(depth);
                    pending_loop = false;
                }
            }
            "}" => {
                if loop_depths.last() == Some(&depth) {
                    loop_depths.pop();
                }
                depth = depth.saturating_sub(1);
            }
            ";" => pending_loop = false,
            _ => {
                let is_ident = toks[sig[i]].kind == TokKind::Ident;
                let next_is = |s: &str| i + 1 < sig.len() && text(i + 1) == s;
                if is_ident && next_is("(") && !is_keyword(t) {
                    let method = i >= 1 && text(i - 1) == ".";
                    let receiver =
                        if method { receiver_chain(&sig, toks, src, i) } else { Vec::new() };
                    out.push(CallSite {
                        name: t.to_string(),
                        method,
                        receiver,
                        tok: sig[i],
                        line: toks[sig[i]].line,
                        in_loop: !loop_depths.is_empty(),
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Walk backwards from the method-name token at `sig[i]` collecting the
/// dotted receiver chain: for `self.shared.queue.lock()` at `lock`, the
/// chain is `["self", "shared", "queue"]`. A call or index in the chain
/// (e.g. `.lock().push(…)` seen from `push`) contributes a `()` marker
/// so callers can see the chain passed through a call.
fn receiver_chain(sig: &[usize], toks: &[Tok], src: &str, name_i: usize) -> Vec<String> {
    let text = |si: usize| toks[sig[si]].text(src);
    let mut chain: Vec<String> = Vec::new();
    // sig[name_i - 1] is the `.`; walk back segment by segment
    let mut i = name_i as i64 - 1;
    while i >= 1 {
        // before the dot: ident, `)` (call result), `]` (index result)
        let prev = i - 1;
        let pt = text(prev as usize);
        if pt == ")" || pt == "]" {
            // skip the balanced group backwards
            let close = pt.to_string();
            let open = if pt == ")" { "(" } else { "[" };
            let mut depth = 0i64;
            let mut j = prev;
            while j >= 0 {
                let tj = text(j as usize);
                if tj == close {
                    depth += 1;
                } else if tj == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            // the group is a call's args if an ident precedes `(`
            if open == "(" && j >= 1 && toks[sig[(j - 1) as usize]].kind == TokKind::Ident {
                chain.push(format!("{}()", text((j - 1) as usize)));
                i = j - 1;
            } else {
                chain.push("()".to_string());
                i = j;
            }
        } else if toks[sig[prev as usize]].kind == TokKind::Ident
            || toks[sig[prev as usize]].kind == TokKind::Num
        {
            chain.push(pt.to_string());
            i = prev;
        } else {
            break;
        }
        // continue only through another dot
        if i >= 1 && text((i - 1) as usize) == "." {
            i -= 1;
        } else {
            break;
        }
    }
    chain.reverse();
    // strip call markers: `queue.lock()` chains as [queue]; markers only
    // matter for guard-typed receivers which the passes handle separately
    chain.into_iter().map(|s| s.trim_end_matches("()").to_string()).collect()
}

fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "let"
            | "else"
            | "fn"
            | "move"
            | "in"
            | "as"
            | "break"
            | "continue"
            | "unsafe"
            | "where"
            | "impl"
            | "dyn"
            | "ref"
            | "mut"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "crate"
            | "super"
            | "Self"
            | "self"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_files(vec![parse_file("src/lib.rs".into(), "t".into(), src.into())])
    }

    #[test]
    fn lock_and_collection_fields_are_indexed() {
        let w = ws("struct Cache { map: Mutex<HashMap<u64, u8>>, hits: AtomicU64 }\n\
             struct Plain { v: Vec<u8> }\n");
        assert!(w.lock_fields.contains("Cache.map"));
        assert!(w.collection_fields.contains("Cache.map"));
        assert!(w.collection_fields.contains("Plain.v"));
        assert!(w.concurrent_structs.contains("Cache"));
        assert!(!w.concurrent_structs.contains("Plain"));
    }

    #[test]
    fn receiver_chains_resolve_through_arc_fields() {
        let w = ws("struct Shared { queue: Mutex<Vec<u8>> }\n\
             struct Sender { shared: Arc<Shared> }\n\
             impl Sender { fn send(&self) { self.shared.queue.lock(); } }\n");
        let id = w.calls.iter().next().expect("send has calls").0;
        let call = &w.calls[id][0];
        assert_eq!(call.name, "lock");
        assert_eq!(call.receiver, ["self", "shared", "queue"]);
        let fid = w.resolve_field("t", Some("Sender"), &call.receiver);
        assert_eq!(fid.as_deref(), Some("Shared.queue"));
    }

    #[test]
    fn loop_reachability_extends_two_hops() {
        let w = ws("fn worker() { loop { process(); } }\n\
             fn process() { store(); }\n\
             fn store() {}\n\
             fn cold() {}\n");
        let ids: Vec<&str> =
            w.loop_reachable.iter().map(|&(fi, ni)| w.files[fi].fns[ni].name.as_str()).collect();
        assert!(ids.contains(&"process"), "{ids:?}");
        assert!(ids.contains(&"store"), "{ids:?}");
        assert!(!ids.contains(&"cold"), "{ids:?}");
    }

    #[test]
    fn fn_lock_summary_lists_acquisitions() {
        let w = ws("struct R { families: Mutex<u8> }\n\
             impl R { fn render(&self) { let f = self.families.lock(); } }\n");
        let id = *w.calls.keys().next().expect("one fn");
        assert_eq!(w.fn_lock_summary(id), ["R.families"]);
    }

    #[test]
    fn base_type_unwraps_wrappers() {
        assert_eq!(base_type("Arc < Shared < T > >").as_deref(), Some("Shared"));
        assert_eq!(base_type("Mutex < HashMap < u64 , u8 > >").as_deref(), Some("Mutex"));
        assert_eq!(base_type("& 'a str").as_deref(), Some("str"));
        assert_eq!(base_type("std :: sync :: Arc < T >").as_deref(), Some("T"));
    }

    #[test]
    fn module_graph_maps_files_and_inline_mods() {
        let w = Workspace::from_files(vec![
            parse_file("crates/x/src/lib.rs".into(), "x".into(), "mod inner {}".into()),
            parse_file("crates/x/src/sub/deep.rs".into(), "x".into(), String::new()),
        ]);
        let paths: Vec<&str> = w.modules.iter().map(|m| m.path.as_str()).collect();
        assert!(paths.contains(&"x"), "{paths:?}");
        assert!(paths.contains(&"x::inner"), "{paths:?}");
        assert!(paths.contains(&"x::sub::deep"), "{paths:?}");
    }
}
