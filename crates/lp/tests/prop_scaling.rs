//! Property tests for geometric-mean equilibration: on random feasible LPs
//! with deliberately wild coefficient magnitudes, solving the scaled
//! problem and mapping back through [`rrp_lp::scaling::Scaling::unscale`]
//! must reproduce a certificate of the *original* problem — primal
//! feasibility, the optimal value, and the dual identities all hold in the
//! unscaled space.

use proptest::prelude::*;
use rrp_lp::scaling::scale;
use rrp_lp::simplex::solve_sparse;
use rrp_lp::{Cmp, Model, Sense, StandardLp, Status};

/// A random LP, feasible by construction (RHS set around a witness point),
/// whose coefficients span up to eight orders of magnitude.
#[derive(Debug, Clone)]
struct WildLp {
    nvars: usize,
    bounds: Vec<(f64, f64)>,
    costs: Vec<f64>,
    cons: Vec<(Vec<(usize, f64)>, Cmp, f64)>,
}

fn wild_lp() -> impl Strategy<Value = WildLp> {
    (2usize..7, 1usize..7, any::<u64>()).prop_map(|(nvars, ncons, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut bounds = Vec::new();
        let mut witness = Vec::new();
        let mut costs = Vec::new();
        for _ in 0..nvars {
            let l = rng.gen_range(-5.0..0.0);
            let u = l + rng.gen_range(0.5..10.0);
            bounds.push((l, u));
            witness.push(rng.gen_range(l..u));
            costs.push(rng.gen_range(-4.0..4.0));
        }
        let mut cons = Vec::new();
        for _ in 0..ncons {
            // each row lives at its own magnitude decade, so the raw matrix
            // is badly scaled on purpose
            let decade = 10f64.powi(rng.gen_range(-4..=4));
            let mut terms = Vec::new();
            for j in 0..nvars {
                if rng.gen_bool(0.7) {
                    terms.push((j, decade * rng.gen_range(0.5..3.0)));
                }
            }
            if terms.is_empty() {
                continue;
            }
            let lhs: f64 = terms.iter().map(|&(j, c)| c * witness[j]).sum();
            let (cmp, rhs) = match rng.gen_range(0..3) {
                0 => (Cmp::Le, lhs + decade * rng.gen_range(0.0..2.0)),
                1 => (Cmp::Ge, lhs - decade * rng.gen_range(0.0..2.0)),
                _ => (Cmp::Eq, lhs),
            };
            cons.push((terms, cmp, rhs));
        }
        WildLp { nvars, bounds, costs, cons }
    })
}

fn build(lp: &WildLp) -> Model {
    let mut m = Model::new(Sense::Minimize);
    for j in 0..lp.nvars {
        m.add_var(lp.bounds[j].0, lp.bounds[j].1, lp.costs[j], &format!("x{j}"));
    }
    for (terms, cmp, rhs) in &lp.cons {
        m.add_con(terms, *cmp, *rhs);
    }
    m
}

/// max |A·x − b| over the rows of a standard-form LP.
fn primal_residual(std: &StandardLp, x: &[f64]) -> f64 {
    let mut ax = vec![0.0; std.nrows()];
    for j in 0..std.ncols() {
        for (i, v) in std.a.col_iter(j) {
            ax[i] += v * x[j];
        }
    }
    ax.iter().zip(&std.b).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Solving scaled and unscaling yields an optimal certificate of the
    /// original standard-form problem.
    #[test]
    fn scale_solve_unscale_round_trips(lp in wild_lp()) {
        let std = build(&lp).to_standard();
        let direct = solve_sparse(&std);
        if !matches!(direct.status, Status::Optimal) {
            // infeasible/unbounded draws carry no certificate to compare
            return Ok(());
        }

        let (scaled, scaling) = scale(&std, 2);
        let raw = solve_sparse(&scaled);
        prop_assert!(matches!(raw.status, Status::Optimal), "scaled solve must stay optimal");
        let back = scaling.unscale(raw);

        // primal feasibility of the unscaled point in the ORIGINAL problem
        let scale_mag = std.b.iter().fold(1.0f64, |m, b| m.max(b.abs()));
        prop_assert!(
            primal_residual(&std, &back.x) <= 1e-6 * scale_mag,
            "unscaled point violates A x = b (residual {})",
            primal_residual(&std, &back.x)
        );
        for (j, &xj) in back.x.iter().enumerate() {
            prop_assert!(
                xj >= std.lower[j] - 1e-7 && xj <= std.upper[j] + 1e-7,
                "col {} out of bounds after unscale", j
            );
        }

        // optimal value is unique even when the optimal point is not
        let obj_direct: f64 = std.c.iter().zip(&direct.x).map(|(c, x)| c * x).sum();
        let obj_scaled: f64 = std.c.iter().zip(&back.x).map(|(c, x)| c * x).sum();
        prop_assert!(
            (obj_direct - obj_scaled).abs() <= 1e-6 * (1.0 + obj_direct.abs()),
            "objective drifted through scaling: {} vs {}", obj_direct, obj_scaled
        );

        // dual identity d = c − Aᵀ y must hold in the unscaled space
        for j in 0..std.ncols() {
            let aty: f64 = std.a.col_iter(j).map(|(i, v)| v * back.y[i]).sum();
            let resid = (std.c[j] - aty - back.d[j]).abs();
            prop_assert!(
                resid <= 1e-6 * (1.0 + std.c[j].abs() + aty.abs()),
                "reduced-cost identity broken at col {} (residual {})", j, resid
            );
        }
    }
}
