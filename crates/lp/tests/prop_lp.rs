//! Property-based tests: on random LPs that are feasible by construction,
//! the solver must return a primal-feasible point whose objective matches
//! the dual bound (strong duality) and agree across engines.

use proptest::prelude::*;
use rrp_lp::{Cmp, Model, Sense};

/// A randomly generated LP that is feasible by construction: we first draw a
/// point `x*` inside the box, then set every RHS so that `x*` satisfies it.
#[derive(Debug, Clone)]
struct FeasibleLp {
    nvars: usize,
    bounds: Vec<(f64, f64)>,
    costs: Vec<f64>,
    cons: Vec<(Vec<(usize, f64)>, Cmp, f64)>,
    witness: Vec<f64>,
}

fn feasible_lp() -> impl Strategy<Value = FeasibleLp> {
    (2usize..8, 1usize..8, any::<u64>()).prop_map(|(nvars, ncons, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut bounds = Vec::new();
        let mut witness = Vec::new();
        let mut costs = Vec::new();
        for _ in 0..nvars {
            let l = rng.gen_range(-5.0..0.0);
            let u = l + rng.gen_range(0.5..10.0);
            bounds.push((l, u));
            witness.push(rng.gen_range(l..u));
            costs.push(rng.gen_range(-4.0..4.0));
        }
        let mut cons = Vec::new();
        for _ in 0..ncons {
            let mut terms = Vec::new();
            for j in 0..nvars {
                if rng.gen_bool(0.7) {
                    terms.push((j, rng.gen_range(-3.0..3.0)));
                }
            }
            if terms.is_empty() {
                continue;
            }
            let lhs: f64 = terms.iter().map(|&(j, c)| c * witness[j]).sum();
            let (cmp, rhs) = match rng.gen_range(0..3) {
                0 => (Cmp::Le, lhs + rng.gen_range(0.0..2.0)),
                1 => (Cmp::Ge, lhs - rng.gen_range(0.0..2.0)),
                _ => (Cmp::Eq, lhs),
            };
            cons.push((terms, cmp, rhs));
        }
        FeasibleLp { nvars, bounds, costs, cons, witness }
    })
}

fn build(lp: &FeasibleLp) -> Model {
    let mut m = Model::new(Sense::Minimize);
    for j in 0..lp.nvars {
        m.add_var(lp.bounds[j].0, lp.bounds[j].1, lp.costs[j], &format!("x{j}"));
    }
    for (terms, cmp, rhs) in &lp.cons {
        m.add_con(terms, *cmp, *rhs);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_finds_feasible_optimum(lp in feasible_lp()) {
        let m = build(&lp);
        let sol = m.solve().expect("feasible by construction");
        // 1. primal feasibility
        for j in 0..lp.nvars {
            prop_assert!(sol.values[j] >= lp.bounds[j].0 - 1e-6);
            prop_assert!(sol.values[j] <= lp.bounds[j].1 + 1e-6);
        }
        for (terms, cmp, rhs) in &lp.cons {
            let lhs: f64 = terms.iter().map(|&(j, c)| c * sol.values[j]).sum();
            match cmp {
                Cmp::Le => prop_assert!(lhs <= rhs + 1e-6, "{lhs} </= {rhs}"),
                Cmp::Ge => prop_assert!(lhs >= rhs - 1e-6, "{lhs} >/= {rhs}"),
                Cmp::Eq => prop_assert!((lhs - rhs).abs() <= 1e-6),
            }
        }
        // 2. optimality: no better than the witness is required, but the
        // witness must never beat the reported optimum.
        let witness_obj: f64 = (0..lp.nvars).map(|j| lp.costs[j] * lp.witness[j]).sum();
        prop_assert!(sol.objective <= witness_obj + 1e-6,
            "optimum {} worse than witness {}", sol.objective, witness_obj);
    }

    #[test]
    fn engines_agree(lp in feasible_lp()) {
        let m = build(&lp);
        let a = m.solve().expect("sparse feasible");
        let b = m.solve_dense().expect("dense feasible");
        prop_assert!((a.objective - b.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
            "sparse {} vs dense {}", a.objective, b.objective);
    }

    #[test]
    fn strong_duality_holds(lp in feasible_lp()) {
        let m = build(&lp);
        let sol = m.solve().expect("feasible");
        // dual objective: yᵀrhs + bound terms from reduced costs
        // For bounded-variable LP: obj = yᵀb + Σ_j d_j · x_j at the active bound.
        let mut dual_obj = 0.0;
        for (i, (_, _, rhs)) in lp.cons.iter().enumerate() {
            dual_obj += sol.duals[i] * rhs;
        }
        for j in 0..lp.nvars {
            let d = sol.reduced_costs[j];
            if d.abs() > 1e-9 {
                // complementary slackness: variable sits on a bound
                let (l, u) = lp.bounds[j];
                let at = if d > 0.0 { l } else { u };
                dual_obj += d * at;
                prop_assert!((sol.values[j] - at).abs() <= 1e-5,
                    "var {j} has reduced cost {d} but is interior: {} (bounds {l},{u})",
                    sol.values[j]);
            }
        }
        prop_assert!((dual_obj - sol.objective).abs() <= 1e-5 * (1.0 + sol.objective.abs()),
            "duality gap: primal {} dual {}", sol.objective, dual_obj);
    }
}
