//! Property test for the warm-started dual simplex: on randomized
//! lot-sizing LPs, re-solving after branching-style bound tightenings from
//! the parent's optimal basis must agree with a cold primal solve — same
//! status, same objective — no matter how the warm attempt went.

use proptest::prelude::*;
use rrp_lp::dual;
use rrp_lp::simplex;
use rrp_lp::{Cmp, Model, Sense, StandardLp, Status};

/// A small single-level lot-sizing instance (the paper's DRRP skeleton):
/// production x_t with fixed-charge indicator y_t and carried stock s_t.
#[derive(Debug, Clone)]
struct LotLp {
    horizon: usize,
    demand: Vec<f64>,
    setup: Vec<f64>,
    unit: Vec<f64>,
    hold: Vec<f64>,
    capacity: f64,
    /// Branching-style tightenings applied to the child: (column, lower, upper).
    tightenings: Vec<(usize, f64, f64)>,
}

fn lot_lp() -> impl Strategy<Value = LotLp> {
    (2usize..7, any::<u64>()).prop_map(|(horizon, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let demand: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.2..3.0)).collect();
        let setup: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.5..6.0)).collect();
        let unit: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.1..2.0)).collect();
        let hold: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.05..0.8)).collect();
        let capacity = rng.gen_range(3.0..9.0);
        // Branch on a few indicator columns (y_t is column 3t+1, see build):
        // down fixes y_t = 0, up fixes y_t = 1 — exactly what B&B emits.
        let mut tightenings = Vec::new();
        for t in 0..horizon {
            if rng.gen_bool(0.4) {
                let col = 3 * t + 1;
                if rng.gen_bool(0.5) {
                    tightenings.push((col, f64::NEG_INFINITY, 0.0));
                } else {
                    tightenings.push((col, 1.0, f64::INFINITY));
                }
            }
        }
        LotLp { horizon, demand, setup, unit, hold, capacity, tightenings }
    })
}

/// Columns per period t: x_t = 3t, y_t = 3t+1, s_t = 3t+2.
fn build(lp: &LotLp) -> StandardLp {
    let mut m = Model::new(Sense::Minimize);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut ss = Vec::new();
    for t in 0..lp.horizon {
        xs.push(m.add_var(0.0, lp.capacity, lp.unit[t], &format!("x{t}")));
        ys.push(m.add_var(0.0, 1.0, lp.setup[t], &format!("y{t}")));
        ss.push(m.add_var(0.0, f64::INFINITY, lp.hold[t], &format!("s{t}")));
    }
    for t in 0..lp.horizon {
        // flow balance: s_{t-1} + x_t - s_t = d_t
        let mut terms = vec![(xs[t], 1.0), (ss[t], -1.0)];
        if t > 0 {
            terms.push((ss[t - 1], 1.0));
        }
        m.add_con(&terms, Cmp::Eq, lp.demand[t]);
        // forcing: x_t <= capacity * y_t
        m.add_con(&[(xs[t], 1.0), (ys[t], -lp.capacity)], Cmp::Le, 0.0);
    }
    m.to_standard()
}

fn tighten(std: &StandardLp, tightenings: &[(usize, f64, f64)]) -> StandardLp {
    let mut child = std.clone();
    for &(j, l, u) in tightenings {
        child.lower[j] = child.lower[j].max(l);
        child.upper[j] = child.upper[j].min(u);
    }
    child
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Warm dual re-solve of a bound-tightened child == cold primal solve.
    #[test]
    fn warm_resolve_matches_cold(lp in lot_lp()) {
        let std = build(&lp);
        let (parent, basis) = simplex::solve_sparse_snapshot(
            &std, &rrp_trace::TraceHandle::off(), rrp_trace::SpanId::ROOT);
        prop_assert_eq!(parent.status, Status::Optimal);
        let basis = basis.expect("optimal parent produces a basis");

        let child = tighten(&std, &lp.tightenings);
        let cold = simplex::solve_sparse(&child);
        let warm = dual::solve_warm(&child, Some(&basis));

        prop_assert!(warm.raw.status == cold.status,
            "status diverged: warm {:?} cold {:?} (warm path = {})",
            warm.raw.status, cold.status, warm.warm);
        if cold.status == Status::Optimal {
            let zc: f64 = cold.x.iter().zip(&child.c).map(|(x, c)| x * c).sum();
            let zw: f64 = warm.raw.x.iter().zip(&child.c).map(|(x, c)| x * c).sum();
            prop_assert!((zc - zw).abs() <= 1e-6 * (1.0 + zc.abs()),
                "objective diverged: cold {zc} warm {zw} (warm path = {})", warm.warm);
            // the warm result must itself be primal feasible
            for j in 0..child.ncols() {
                prop_assert!(warm.raw.x[j] >= child.lower[j] - 1e-6);
                prop_assert!(warm.raw.x[j] <= child.upper[j] + 1e-6);
            }
            prop_assert!(warm.basis.is_some(), "optimal warm solve must snapshot a basis");
        }
    }

    /// The unchanged problem re-solved from its own optimal basis is a
    /// zero-or-few-pivot warm hit with the identical objective.
    #[test]
    fn same_problem_warm_hit_is_cheap(lp in lot_lp()) {
        let std = build(&lp);
        let (parent, basis) = simplex::solve_sparse_snapshot(
            &std, &rrp_trace::TraceHandle::off(), rrp_trace::SpanId::ROOT);
        prop_assert_eq!(parent.status, Status::Optimal);
        let basis = basis.expect("optimal parent produces a basis");

        let warm = dual::solve_warm(&std, Some(&basis));
        prop_assert!(warm.warm, "identical problem must take the warm path");
        prop_assert_eq!(warm.raw.status, Status::Optimal);
        prop_assert!(warm.raw.iterations <= 2,
            "re-solve of an unchanged LP took {} pivots", warm.raw.iterations);
        let zp: f64 = parent.x.iter().zip(&std.c).map(|(x, c)| x * c).sum();
        let zw: f64 = warm.raw.x.iter().zip(&std.c).map(|(x, c)| x * c).sum();
        prop_assert!((zp - zw).abs() <= 1e-7 * (1.0 + zp.abs()));
    }
}
