//! Known-answer and cross-check tests for the simplex solver.

use rrp_lp::{Cmp, Model, Sense, Status};

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
}

#[test]
fn trivial_bounds_only() {
    // min x, 1 <= x <= 5 → 1
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(1.0, 5.0, 1.0, "x");
    let sol = m.solve().unwrap();
    assert_close(sol.objective, 1.0, 1e-9);
    assert_close(sol.values[x], 1.0, 1e-9);
}

#[test]
fn maximize_bounds_only() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var(-2.0, 7.0, 3.0, "x");
    let sol = m.solve().unwrap();
    assert_close(sol.objective, 21.0, 1e-9);
    assert_close(sol.values[x], 7.0, 1e-9);
}

#[test]
fn classic_2d_lp() {
    // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
    // (Hillier & Lieberman) → x=2, y=6, obj=36
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var(0.0, f64::INFINITY, 3.0, "x");
    let y = m.add_var(0.0, f64::INFINITY, 5.0, "y");
    m.add_con(&[(x, 1.0)], Cmp::Le, 4.0);
    m.add_con(&[(y, 2.0)], Cmp::Le, 12.0);
    m.add_con(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
    for sol in [m.solve().unwrap(), m.solve_dense().unwrap()] {
        assert_close(sol.objective, 36.0, 1e-8);
        assert_close(sol.values[x], 2.0, 1e-8);
        assert_close(sol.values[y], 6.0, 1e-8);
    }
}

#[test]
fn duals_of_classic_lp() {
    // Same LP; dual prices: y2 = 3/2, y3 = 1 for the binding rows, y1 = 0.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var(0.0, f64::INFINITY, 3.0, "x");
    let y = m.add_var(0.0, f64::INFINITY, 5.0, "y");
    m.add_con(&[(x, 1.0)], Cmp::Le, 4.0);
    m.add_con(&[(y, 2.0)], Cmp::Le, 12.0);
    m.add_con(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
    let sol = m.solve().unwrap();
    assert_close(sol.duals[0], 0.0, 1e-8);
    assert_close(sol.duals[1], 1.5, 1e-8);
    assert_close(sol.duals[2], 1.0, 1e-8);
}

#[test]
fn equality_constraints() {
    // min x + y  s.t. x + y = 10, x - y = 2 → x=6, y=4, obj=10
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(0.0, f64::INFINITY, 1.0, "x");
    let y = m.add_var(0.0, f64::INFINITY, 1.0, "y");
    m.add_con(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
    m.add_con(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
    let sol = m.solve().unwrap();
    assert_close(sol.values[x], 6.0, 1e-8);
    assert_close(sol.values[y], 4.0, 1e-8);
}

#[test]
fn infeasible_detected() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(0.0, 1.0, 1.0, "x");
    m.add_con(&[(x, 1.0)], Cmp::Ge, 5.0);
    assert_eq!(m.solve().unwrap_err(), Status::Infeasible);
    assert_eq!(m.solve_dense().unwrap_err(), Status::Infeasible);
}

#[test]
fn infeasible_system_of_equalities() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0, "x");
    m.add_con(&[(x, 1.0)], Cmp::Eq, 1.0);
    m.add_con(&[(x, 1.0)], Cmp::Eq, 2.0);
    assert_eq!(m.solve().unwrap_err(), Status::Infeasible);
}

#[test]
fn unbounded_detected() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0, "x");
    m.add_con(&[(x, 1.0)], Cmp::Le, 100.0);
    assert_eq!(m.solve().unwrap_err(), Status::Unbounded);
    assert_eq!(m.solve_dense().unwrap_err(), Status::Unbounded);
}

#[test]
fn maximization_unbounded() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var(0.0, f64::INFINITY, 1.0, "x");
    m.add_con(&[(x, -1.0)], Cmp::Le, 0.0);
    assert_eq!(m.solve().unwrap_err(), Status::Unbounded);
}

#[test]
fn free_variables() {
    // min 2x + y s.t. x + y >= 1, x - y >= -3, x,y free.
    // Feasible rays satisfy dx >= |dy| so 2dx + dy >= 0: bounded.
    // Optimum at the corner x + y = 1, x - y = -3 → x = -1, y = 2, obj = 0.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 2.0, "x");
    let y = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0, "y");
    m.add_con(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
    m.add_con(&[(x, 1.0), (y, -1.0)], Cmp::Ge, -3.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective, 0.0, 1e-8);
    assert_close(sol.values[x], -1.0, 1e-8);
    assert_close(sol.values[y], 2.0, 1e-8);
}

#[test]
fn fixed_variable_respected() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(3.0, 3.0, 1.0, "x");
    let y = m.add_var(0.0, f64::INFINITY, 1.0, "y");
    m.add_con(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
    let sol = m.solve().unwrap();
    assert_close(sol.values[x], 3.0, 1e-9);
    assert_close(sol.values[y], 2.0, 1e-8);
}

#[test]
fn upper_bounded_variables_flip() {
    // max x + y, x <= 1, y <= 1, x + y <= 1.5
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var(0.0, 1.0, 1.0, "x");
    let y = m.add_var(0.0, 1.0, 1.0, "y");
    m.add_con(&[(x, 1.0), (y, 1.0)], Cmp::Le, 1.5);
    let sol = m.solve().unwrap();
    assert_close(sol.objective, 1.5, 1e-8);
}

#[test]
fn degenerate_lp_terminates() {
    // Beale's cycling example (classic): without anti-cycling this loops.
    // min -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7
    // s.t. 0.25 x4 - 60 x5 - 0.04 x6 + 9 x7 <= 0
    //      0.5  x4 - 90 x5 - 0.02 x6 + 3 x7 <= 0
    //      x6 <= 1,   all >= 0.   Optimum: -0.05
    let mut m = Model::new(Sense::Minimize);
    let x4 = m.add_var(0.0, f64::INFINITY, -0.75, "x4");
    let x5 = m.add_var(0.0, f64::INFINITY, 150.0, "x5");
    let x6 = m.add_var(0.0, f64::INFINITY, -0.02, "x6");
    let x7 = m.add_var(0.0, f64::INFINITY, 6.0, "x7");
    m.add_con(&[(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)], Cmp::Le, 0.0);
    m.add_con(&[(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)], Cmp::Le, 0.0);
    m.add_con(&[(x6, 1.0)], Cmp::Le, 1.0);
    let sol = m.solve().unwrap();
    assert_close(sol.objective, -0.05, 1e-8);
}

#[test]
fn transportation_problem() {
    // 2 sources (supply 20, 30) × 3 sinks (demand 10, 25, 15);
    // costs [[2,3,1],[5,4,8]]. LP optimum = 20*?? — verify against known 125.
    // x[s][t] >= 0; supply rows Eq, demand cols Eq (balanced).
    let cost = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
    let supply = [20.0, 30.0];
    let demand = [10.0, 25.0, 15.0];
    let mut m = Model::new(Sense::Minimize);
    let mut vars = [[0usize; 3]; 2];
    for s in 0..2 {
        for t in 0..3 {
            vars[s][t] = m.add_var(0.0, f64::INFINITY, cost[s][t], &format!("x{s}{t}"));
        }
    }
    for s in 0..2 {
        let terms: Vec<_> = (0..3).map(|t| (vars[s][t], 1.0)).collect();
        m.add_con(&terms, Cmp::Eq, supply[s]);
    }
    for t in 0..3 {
        let terms: Vec<_> = (0..2).map(|s| (vars[s][t], 1.0)).collect();
        m.add_con(&terms, Cmp::Eq, demand[t]);
    }
    // Optimal: s0 ships 15 to t2 (cost 15), 5 to t0 (10); s1 ships 5 to t0 (25), 25 to t1 (100)
    // = 150.  Check both engines agree and are <= any feasible plan we try.
    let a = m.solve().unwrap();
    let b = m.solve_dense().unwrap();
    assert_close(a.objective, b.objective, 1e-7);
    assert_close(a.objective, 150.0, 1e-7);
}

#[test]
fn larger_random_cross_check() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    for trial in 0..30 {
        let n = 3 + rng.gen_range(0..10);
        let mrows = 2 + rng.gen_range(0..8);
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..n)
            .map(|j| {
                m.add_var(0.0, rng.gen_range(1.0..10.0), rng.gen_range(-5.0..5.0), &format!("v{j}"))
            })
            .collect();
        for _ in 0..mrows {
            let mut terms = Vec::new();
            for &v in &vars {
                if rng.gen_bool(0.6) {
                    terms.push((v, rng.gen_range(-3.0..3.0)));
                }
            }
            if terms.is_empty() {
                continue;
            }
            let cmp = match rng.gen_range(0..3) {
                0 => Cmp::Le,
                1 => Cmp::Ge,
                _ => Cmp::Eq,
            };
            // rhs chosen so that x=midpoint is "often" feasible
            m.add_con(&terms, cmp, rng.gen_range(-5.0..10.0));
        }
        let rs = m.solve();
        let rd = m.solve_dense();
        match (rs, rd) {
            (Ok(a), Ok(b)) => {
                assert!(
                    (a.objective - b.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
                    "trial {trial}: sparse {} vs dense {}",
                    a.objective,
                    b.objective
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "trial {trial}: status mismatch"),
            (a, b) => panic!("trial {trial}: divergent outcomes {a:?} vs {b:?}"),
        }
    }
}
