//! Bounded-variable dual simplex, warm-started from a [`Basis`] snapshot.
//!
//! Reduced costs depend only on `A` and `c`, so an optimal basis stays
//! *dual* feasible after any change to bounds or right-hand sides — exactly
//! what branch & bound does between a parent node and its children, and
//! what rolling-horizon re-plans do between periods. Starting from the
//! parent basis, the dual simplex drives out the (typically one or two)
//! primal bound violations in a handful of pivots instead of re-running the
//! full two-phase primal from the slack basis.
//!
//! The warm path is an optimisation, never a correctness dependency: any
//! structural mismatch, singular refactorisation, dual-infeasible start,
//! stall, or "no eligible entering column" outcome abandons the attempt and
//! falls back to the cold primal path ([`simplex::solve_sparse_snapshot`]).
//! In particular an infeasibility *verdict* is never taken from the warm
//! path — the cold primal confirms it — so warm and cold searches prune the
//! same nodes.

use rrp_trace::{EventKind, SpanId, TraceHandle};

use crate::engine::{BasisEngine, SparseEngine};
use crate::model::StandardLp;
use crate::simplex::{self, nonbasic_value, status_tag, Basis, RawResult, VStat, VarStatus};
use crate::solution::Status;
use crate::FEAS_TOL;

/// Reduced-cost tolerance when validating dual feasibility of a warm basis.
const DUAL_TOL: f64 = 1e-7;
/// Pivot magnitude below which a dual ratio-test candidate is rejected.
const DPIV_TOL: f64 = 1e-9;
/// Consecutive degenerate dual pivots before the warm attempt is abandoned.
const STALL_LIMIT: usize = 200;

/// Outcome of [`solve_warm`]: the raw LP result, the final basis snapshot
/// (`Some` only for optimal solves), and which path produced it.
#[derive(Debug, Clone)]
pub struct WarmResult {
    pub raw: RawResult,
    /// Final basis when the solve ended [`Status::Optimal`] — feed it to the
    /// next warm solve.
    pub basis: Option<Basis>,
    /// True when the warm dual path produced `raw` (false = cold fallback,
    /// including the no-hint case).
    pub warm: bool,
}

/// Why a warm attempt was abandoned (all funnel into the cold fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarmFail {
    /// Basis refactorisation failed.
    Singular,
    /// Reduced costs violate the resting-bound sign conditions.
    DualInfeasible,
    /// Too many degenerate pivots in a row.
    Stalled,
    /// Iteration limit.
    IterationLimit,
    /// No eligible entering column: a primal-infeasibility certificate that
    /// we deliberately re-verify on the cold path.
    NoEntering,
}

/// Solve `lp`, warm-starting from `hint` when possible. Equivalent to
/// [`simplex::solve_sparse`] in its result; only the path differs.
pub fn solve_warm(lp: &StandardLp, hint: Option<&Basis>) -> WarmResult {
    solve_warm_traced(lp, hint, &TraceHandle::off(), SpanId::ROOT)
}

/// [`solve_warm`] with telemetry: the finishing `lp_solved` event carries
/// `warm: true` when the dual path succeeded. Abandoned warm attempts emit
/// nothing — exactly one `lp_solved` is recorded per logical solve.
pub fn solve_warm_traced(
    lp: &StandardLp,
    hint: Option<&Basis>,
    trace: &TraceHandle,
    span: SpanId,
) -> WarmResult {
    if let Some(basis) = hint {
        if let Some(mut dual) = DualSimplex::from_hint(lp, basis) {
            dual.trace = trace.clone();
            dual.span = span;
            match dual.run() {
                Ok((raw, basis)) => return WarmResult { raw, basis, warm: true },
                Err(_fail) => {} // fall through to the cold path
            }
        }
    }
    let (raw, basis) = simplex::solve_sparse_snapshot(lp, trace, span);
    WarmResult { raw, basis, warm: false }
}

struct DualSimplex<'a> {
    lp: &'a StandardLp,
    engine: SparseEngine,
    m: usize,
    n: usize,
    basis: Vec<usize>,
    vstat: Vec<VStat>,
    /// Value per column (basic values maintained incrementally).
    x: Vec<f64>,
    /// Reduced cost per column (0 for basic columns), maintained
    /// incrementally and recomputed at every refactorisation.
    d: Vec<f64>,
    /// Scratch: row `r` of `B⁻¹A` restricted to nonbasic columns.
    alpha: Vec<f64>,
    iterations: usize,
    degenerate_run: usize,
    max_iters: usize,
    refactor_period: usize,
    since_refactor: usize,
    /// True right after a refactor + full recompute — a clean state whose
    /// feasibility/optimality conclusions can be trusted.
    clean: bool,
    trace: TraceHandle,
    span: SpanId,
}

impl<'a> DualSimplex<'a> {
    /// Rebuild solver state from a basis snapshot; `None` when the hint does
    /// not structurally fit `lp`.
    fn from_hint(lp: &'a StandardLp, hint: &Basis) -> Option<Self> {
        let m = lp.nrows();
        let n = lp.ncols();
        if !hint.fits(m, n) {
            return None;
        }
        let mut vstat = Vec::with_capacity(n);
        for j in 0..n {
            let (l, u) = (lp.lower[j], lp.upper[j]);
            // Reconcile the snapshot status with the *current* bounds: a
            // resting bound may have moved or vanished since the snapshot.
            let stat = match hint.status[j] {
                VarStatus::Basic => VStat::Basic(usize::MAX), // patched below
                VarStatus::AtLower => {
                    if l.is_finite() {
                        VStat::AtLower
                    } else if u.is_finite() {
                        VStat::AtUpper
                    } else {
                        VStat::FreeZero
                    }
                }
                VarStatus::AtUpper => {
                    if u.is_finite() {
                        VStat::AtUpper
                    } else if l.is_finite() {
                        VStat::AtLower
                    } else {
                        VStat::FreeZero
                    }
                }
                VarStatus::Free => {
                    if l.is_finite() {
                        VStat::AtLower
                    } else if u.is_finite() {
                        VStat::AtUpper
                    } else {
                        VStat::FreeZero
                    }
                }
            };
            vstat.push(stat);
        }
        for (r, &j) in hint.columns.iter().enumerate() {
            if !matches!(vstat[j], VStat::Basic(_)) {
                return None; // columns[] disagrees with status[]
            }
            vstat[j] = VStat::Basic(r);
        }
        if vstat.iter().any(|s| matches!(s, VStat::Basic(r) if *r == usize::MAX)) {
            return None; // a status[]-basic column missing from columns[]
        }
        let mut x = vec![0.0; n];
        for j in 0..n {
            if !matches!(vstat[j], VStat::Basic(_)) {
                x[j] = nonbasic_value(vstat[j], lp.lower[j], lp.upper[j]);
            }
        }
        Some(Self {
            lp,
            engine: SparseEngine::new(),
            m,
            n,
            basis: hint.columns.clone(),
            vstat,
            x,
            d: vec![0.0; n],
            alpha: vec![0.0; n],
            iterations: 0,
            degenerate_run: 0,
            max_iters: 200 * (m + n) + 10_000,
            refactor_period: 64,
            since_refactor: 0,
            clean: false,
            trace: TraceHandle::off(),
            span: SpanId::ROOT,
        })
    }

    fn run(&mut self) -> Result<(RawResult, Option<Basis>), WarmFail> {
        self.refresh(WarmFail::Singular, "warm_initial")?;
        if !self.dual_feasible() {
            return Err(WarmFail::DualInfeasible);
        }
        loop {
            if self.iterations >= self.max_iters {
                return Err(WarmFail::IterationLimit);
            }
            let leaving = self.most_violated_row();
            let (r, below) = match leaving {
                Some(rb) => rb,
                None => {
                    // Primal feasible. Trust it only from a clean state:
                    // incremental drift must not declare false optimality.
                    if self.clean {
                        return Ok(self.finish());
                    }
                    self.refresh(WarmFail::Singular, "confirm")?;
                    continue;
                }
            };

            // rho = B⁻ᵀ e_r, alpha_j = a_j · rho for nonbasic j.
            let mut rho = vec![0.0f64; self.m];
            rho[r] = 1.0;
            self.engine.btran(&mut rho);
            for j in 0..self.n {
                self.alpha[j] = if matches!(self.vstat[j], VStat::Basic(_)) {
                    0.0
                } else {
                    self.lp.a.col_dot(j, &rho)
                };
            }

            let entering = self.ratio_test(below);
            let q = match entering {
                Some(q) => q,
                None => {
                    // No entering column: the violated row proves primal
                    // infeasibility — but only trust a clean state, and even
                    // then hand the verdict to the cold path (see module doc).
                    if self.clean {
                        return Err(WarmFail::NoEntering);
                    }
                    self.refresh(WarmFail::Singular, "confirm")?;
                    continue;
                }
            };
            self.pivot(r, below, q)?;
        }
    }

    /// Refactorise and recompute basic values + reduced costs from scratch.
    fn refresh(&mut self, on_singular: WarmFail, reason: &'static str) -> Result<(), WarmFail> {
        if self.engine.refactor(&self.lp.a, &self.basis).is_err() {
            return Err(on_singular);
        }
        self.since_refactor = 0;
        if self.trace.is_enabled() {
            self.trace.emit(
                self.span,
                EventKind::Refactored {
                    iter: self.iterations,
                    nnz: self.engine.factor_nnz(),
                    reason,
                },
            );
        }
        self.recompute_basic_values();
        self.recompute_duals();
        self.clean = true;
        Ok(())
    }

    /// x_B = B⁻¹ (b − N x_N)
    fn recompute_basic_values(&mut self) {
        let lp = self.lp;
        let mut rhs = lp.b.clone();
        for j in 0..self.n {
            if !matches!(self.vstat[j], VStat::Basic(_)) {
                let v = self.x[j];
                if v != 0.0 {
                    lp.a.col_axpy(j, -v, &mut rhs);
                }
            }
        }
        self.engine.ftran(&mut rhs);
        for (r, &j) in self.basis.iter().enumerate() {
            self.x[j] = rhs[r];
        }
    }

    /// y = B⁻ᵀ c_B; d_j = c_j − a_j·y (0 for basic columns).
    fn recompute_duals(&mut self) {
        let lp = self.lp;
        let mut y = vec![0.0f64; self.m];
        for (r, &j) in self.basis.iter().enumerate() {
            y[r] = lp.c[j];
        }
        self.engine.btran(&mut y);
        for j in 0..self.n {
            self.d[j] = if matches!(self.vstat[j], VStat::Basic(_)) {
                0.0
            } else {
                lp.c[j] - lp.a.col_dot(j, &y)
            };
        }
    }

    /// Check the resting-bound sign conditions on the reduced costs.
    fn dual_feasible(&self) -> bool {
        let lp = self.lp;
        (0..self.n).all(|j| {
            if lp.lower[j] == lp.upper[j] {
                return true; // fixed columns carry no sign condition
            }
            match self.vstat[j] {
                VStat::Basic(_) => true,
                VStat::AtLower => self.d[j] >= -DUAL_TOL,
                VStat::AtUpper => self.d[j] <= DUAL_TOL,
                VStat::FreeZero => self.d[j].abs() <= DUAL_TOL,
            }
        })
    }

    /// Leaving-row choice: the basic variable most outside its bounds.
    /// Returns `(row, below_lower?)`.
    fn most_violated_row(&self) -> Option<(usize, bool)> {
        let lp = self.lp;
        let mut best: Option<(usize, bool, f64)> = None;
        for (r, &j) in self.basis.iter().enumerate() {
            let v = self.x[j];
            let below = lp.lower[j] - v;
            let above = v - lp.upper[j];
            let (viol, is_below) = if below >= above { (below, true) } else { (above, false) };
            if viol > FEAS_TOL && best.is_none_or(|(_, _, b)| viol > b) {
                best = Some((r, is_below, viol));
            }
        }
        best.map(|(r, is_below, _)| (r, is_below))
    }

    /// Dual ratio test over `self.alpha`: among sign-eligible nonbasic
    /// columns, pick the one minimising |d_j / alpha_j| (tie-break: larger
    /// pivot magnitude). `below` is the leaving variable's violation side.
    fn ratio_test(&self, below: bool) -> Option<usize> {
        const TIE: f64 = 1e-9;
        let lp = self.lp;
        let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
        for j in 0..self.n {
            if lp.lower[j] == lp.upper[j] {
                continue; // fixed columns cannot enter
            }
            let a = self.alpha[j];
            let eligible = match self.vstat[j] {
                VStat::Basic(_) => false,
                // Raising the leaving variable (below its lower bound) needs
                // x_p' = … − alpha_j·x_j to increase along the entering
                // variable's allowed direction; mirrored when above.
                VStat::AtLower => {
                    if below {
                        a < -DPIV_TOL
                    } else {
                        a > DPIV_TOL
                    }
                }
                VStat::AtUpper => {
                    if below {
                        a > DPIV_TOL
                    } else {
                        a < -DPIV_TOL
                    }
                }
                VStat::FreeZero => a.abs() > DPIV_TOL,
            };
            if !eligible {
                continue;
            }
            let ratio = self.d[j].abs() / a.abs();
            let better = match best {
                None => true,
                Some((_, rb, ab)) => ratio < rb - TIE || (ratio <= rb + TIE && a.abs() > ab),
            };
            if better {
                best = Some((j, ratio, a.abs()));
            }
        }
        best.map(|(j, _, _)| j)
    }

    /// Exchange basis row `r`'s variable (leaving to the violated bound)
    /// with entering column `q`, updating duals, primal values and factors.
    fn pivot(&mut self, r: usize, below: bool, q: usize) -> Result<(), WarmFail> {
        let lp = self.lp;
        let p = self.basis[r];
        let target = if below { lp.lower[p] } else { lp.upper[p] };
        let aq = self.alpha[q];

        // Dual step: keeps every nonbasic reduced cost sign-feasible.
        let theta = self.d[q] / aq;
        for j in 0..self.n {
            if !matches!(self.vstat[j], VStat::Basic(_)) && self.alpha[j] != 0.0 {
                self.d[j] -= theta * self.alpha[j];
            }
        }
        self.d[q] = 0.0;
        self.d[p] = -theta;

        // Primal step along the entering column.
        let dq = (self.x[p] - target) / aq;
        let mut w = vec![0.0f64; self.m];
        for (i, v) in lp.a.col_iter(q) {
            w[i] = v;
        }
        self.engine.ftran(&mut w);
        for (i, &bj) in self.basis.iter().enumerate() {
            self.x[bj] -= dq * w[i];
        }
        self.x[q] += dq;
        self.x[p] = target;

        self.vstat[p] =
            if below || lp.lower[p] == lp.upper[p] { VStat::AtLower } else { VStat::AtUpper };
        self.vstat[q] = VStat::Basic(r);
        self.basis[r] = q;
        self.clean = false;

        if theta.abs() <= 1e-12 {
            self.degenerate_run += 1;
            if self.degenerate_run > STALL_LIMIT {
                return Err(WarmFail::Stalled);
            }
        } else {
            self.degenerate_run = 0;
        }

        let update_rejected = self.engine.update(r, &w).is_err();
        if update_rejected || self.since_refactor + 1 >= self.refactor_period {
            self.refresh(
                WarmFail::Singular,
                if update_rejected { "update_rejected" } else { "periodic" },
            )?;
        } else {
            self.since_refactor += 1;
        }
        self.iterations += 1;
        Ok(())
    }

    fn finish(&mut self) -> (RawResult, Option<Basis>) {
        let status = Status::Optimal;
        if self.trace.is_enabled() {
            self.trace.emit(
                self.span,
                EventKind::LpSolved {
                    iters: self.iterations,
                    status: status_tag(status),
                    warm: true,
                },
            );
        }
        let lp = self.lp;
        let mut y = vec![0.0f64; self.m];
        for (r, &j) in self.basis.iter().enumerate() {
            y[r] = lp.c[j];
        }
        self.engine.btran(&mut y);
        let mut d = vec![0.0f64; self.n];
        for j in 0..self.n {
            d[j] = lp.c[j] - lp.a.col_dot(j, &y);
        }
        let basis = simplex::snapshot(&self.basis, &self.vstat);
        (RawResult { status, x: self.x.clone(), y, d, iterations: self.iterations }, Some(basis))
    }
}
