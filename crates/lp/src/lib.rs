//! # rrp-lp — linear programming substrate
//!
//! A self-contained LP solver used as the foundation of the rental-planning
//! MILP solver (`rrp-milp`). The paper solved its models with CPLEX™; this
//! crate supplies the equivalent building block in pure Rust:
//!
//! * [`Model`] — a mutable LP builder (variables with bounds, linear
//!   constraints, minimise/maximise objective).
//! * [`StandardLp`] — the computational form `min cᵀx, Ax = b, l ≤ x ≤ u`
//!   obtained by adding one slack per row.
//! * [`simplex::solve`] — a bounded-variable, two-phase primal simplex with
//!   pluggable basis engines: a dense explicit-inverse engine (reference,
//!   used for cross-checking) and a sparse LU engine with product-form
//!   updates (used for real workloads such as SRRP scenario trees).
//!
//! The solver reports primal values, duals, reduced costs and a solution
//! [`Status`]. Determinism: no randomness, no global state; identical inputs
//! give identical pivots.
//!
//! ```
//! use rrp_lp::{Model, Sense, Cmp};
//! let mut m = Model::new(Sense::Minimize);
//! let x = m.add_var(0.0, f64::INFINITY, 1.0, "x");
//! let y = m.add_var(0.0, f64::INFINITY, 2.0, "y");
//! m.add_con(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective - 3.0).abs() < 1e-9);
//! assert!((sol.values[x] - 3.0).abs() < 1e-9);
//! ```

pub mod dual;
pub mod engine;
pub mod lu;
pub mod matrix;
pub mod model;
pub mod presolve;
pub mod scaling;
pub mod simplex;
pub mod solution;

pub use dual::{solve_warm, solve_warm_traced, WarmResult};
pub use model::{Cmp, Model, Sense, StandardLp, VarId};
pub use presolve::{presolve, InfeasibleRow, PresolveOutcome, Presolved};
pub use simplex::{Basis, VarStatus};
pub use solution::{Solution, Status};

/// Feasibility tolerance used throughout the solver.
pub const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost (optimality) tolerance.
pub const OPT_TOL: f64 = 1e-9;
/// Pivot magnitude below which a candidate pivot is rejected as unstable.
pub const PIVOT_TOL: f64 = 1e-10;
/// Tolerance for comparing variable bounds (crossing detection and
/// tightening). Shared by [`presolve`] and the `rrp-audit` static analysis
/// pass so the two agree on what counts as proven infeasibility.
pub const BOUND_TOL: f64 = 1e-9;
