//! Bounded-variable two-phase primal simplex, generic over a basis engine.
//!
//! Phase 1 minimises the total bound violation of the basic variables
//! starting from the all-slack basis (which is always structurally valid
//! because every row carries a slack). Phase 2 minimises the true objective.
//! Both phases share one iteration kernel differing only in the cost vector
//! and in how infeasible basic variables block the ratio test.
//!
//! Anti-cycling: Dantzig pricing by default, switching to Bland's rule after
//! a run of degenerate pivots. Periodic refactorisation recomputes the basic
//! solution from scratch for numerical hygiene.

use rrp_trace::{EventKind, SpanId, TraceHandle};

use crate::engine::{BasisEngine, DenseEngine, SparseEngine};
use crate::model::StandardLp;
use crate::solution::Status;
use crate::{FEAS_TOL, OPT_TOL};

/// Emit a sampled `simplex_iter` event every this many iterations when a
/// trace is attached (keeps large solves from flooding the sink).
const ITER_SAMPLE: usize = 32;

/// Raw solver outcome in standard-form space (includes slack columns).
#[derive(Debug, Clone)]
pub struct RawResult {
    pub status: Status,
    /// Value per standard-form column.
    pub x: Vec<f64>,
    /// Dual per row.
    pub y: Vec<f64>,
    /// Reduced cost per standard-form column.
    pub d: Vec<f64>,
    pub iterations: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VStat {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free nonbasic variable resting at zero.
    FreeZero,
}

/// Where a standard-form column rests in a basis snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    /// In the basis (its row is recorded in [`Basis::columns`]).
    Basic,
    AtLower,
    AtUpper,
    /// Free nonbasic column resting at zero.
    Free,
}

/// A simplex basis snapshot: which column is basic in each row plus the
/// resting status of every column. Captured from an optimal [`Simplex`] run
/// and fed to [`crate::dual::solve_warm`] — after a bound change the basis
/// stays *dual* feasible (reduced costs depend only on `A` and `c`), so the
/// dual simplex re-solves in a handful of pivots instead of a cold
/// two-phase primal run.
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    /// Basic column per row (`columns[r]` is basic in row `r`); length m.
    pub columns: Vec<usize>,
    /// Resting status per standard-form column; length n.
    pub status: Vec<VarStatus>,
}

impl Basis {
    /// Whether this snapshot structurally fits an m-row, n-column LP.
    pub fn fits(&self, m: usize, n: usize) -> bool {
        self.columns.len() == m && self.status.len() == n && self.columns.iter().all(|&j| j < n)
    }
}

/// Solve with the sparse LU engine.
pub fn solve_sparse(lp: &StandardLp) -> RawResult {
    solve_with(lp, SparseEngine::new())
}

/// Solve with the dense reference engine.
pub fn solve_dense(lp: &StandardLp) -> RawResult {
    solve_with(lp, DenseEngine::new())
}

/// Cold solve from the all-slack basis with two-phase primal simplex. This
/// entry point never reuses a basis — warm re-solves after bound changes go
/// through [`crate::dual::solve_warm`], which starts from a [`Basis`]
/// snapshot and falls back here when the hint is unusable.
pub fn solve_with<E: BasisEngine>(lp: &StandardLp, engine: E) -> RawResult {
    Simplex::new(lp, engine).run().0
}

/// [`solve_sparse`] with telemetry: sampled `simplex_iter` events,
/// `refactored` basis events, and a closing `lp_solved` into `span`.
pub fn solve_sparse_traced(lp: &StandardLp, trace: &TraceHandle, span: SpanId) -> RawResult {
    solve_with_traced(lp, SparseEngine::new(), trace, span)
}

/// [`solve_dense`] with telemetry.
pub fn solve_dense_traced(lp: &StandardLp, trace: &TraceHandle, span: SpanId) -> RawResult {
    solve_with_traced(lp, DenseEngine::new(), trace, span)
}

/// [`solve_with`] with telemetry. A disabled handle costs one branch per
/// emission site — callers without a trace should still prefer the
/// un-traced entry points for clarity.
pub fn solve_with_traced<E: BasisEngine>(
    lp: &StandardLp,
    engine: E,
    trace: &TraceHandle,
    span: SpanId,
) -> RawResult {
    let mut s = Simplex::new(lp, engine);
    s.trace = trace.clone();
    s.span = span;
    s.run().0
}

/// Cold sparse solve that also returns the final [`Basis`] snapshot
/// (`Some` only when the solve ended [`Status::Optimal`]).
pub fn solve_sparse_snapshot(
    lp: &StandardLp,
    trace: &TraceHandle,
    span: SpanId,
) -> (RawResult, Option<Basis>) {
    let mut s = Simplex::new(lp, SparseEngine::new());
    s.trace = trace.clone();
    s.span = span;
    s.run()
}

struct Simplex<'a, E: BasisEngine> {
    lp: &'a StandardLp,
    engine: E,
    m: usize,
    n: usize,
    basis: Vec<usize>,
    vstat: Vec<VStat>,
    x: Vec<f64>,
    iterations: usize,
    degenerate_run: usize,
    bland: bool,
    max_iters: usize,
    refactor_period: usize,
    since_refactor: usize,
    trace: TraceHandle,
    span: SpanId,
}

impl<'a, E: BasisEngine> Simplex<'a, E> {
    fn new(lp: &'a StandardLp, engine: E) -> Self {
        let m = lp.nrows();
        let n = lp.ncols();
        Self {
            lp,
            engine,
            m,
            n,
            basis: Vec::new(),
            vstat: Vec::new(),
            x: vec![0.0; n],
            iterations: 0,
            degenerate_run: 0,
            bland: false,
            max_iters: 400 * (m + n) + 20_000,
            refactor_period: 64,
            since_refactor: 0,
            trace: TraceHandle::off(),
            span: SpanId::ROOT,
        }
    }

    fn run(mut self) -> (RawResult, Option<Basis>) {
        if let Err(st) = self.init_slack_basis() {
            return self.finish(st);
        }
        // Phase 1
        match self.iterate(true) {
            Ok(()) => {}
            Err(st) => return self.finish(st),
        }
        if self.total_infeasibility() > FEAS_TOL * (1.0 + self.m as f64) {
            return self.finish(Status::Infeasible);
        }
        // Phase 2
        match self.iterate(false) {
            Ok(()) => self.finish(Status::Optimal),
            Err(st) => self.finish(st),
        }
    }

    fn init_slack_basis(&mut self) -> Result<(), Status> {
        let lp = self.lp;
        self.basis = (0..self.m).map(|i| lp.nstruct + i).collect();
        self.vstat = vec![VStat::AtLower; self.n];
        for j in 0..self.n {
            let (l, u) = (lp.lower[j], lp.upper[j]);
            self.vstat[j] = if l.is_finite() {
                VStat::AtLower
            } else if u.is_finite() {
                VStat::AtUpper
            } else {
                VStat::FreeZero
            };
            self.x[j] = nonbasic_value(self.vstat[j], l, u);
        }
        for (r, &j) in self.basis.iter().enumerate() {
            self.vstat[j] = VStat::Basic(r);
        }
        if self.engine.refactor(&lp.a, &self.basis).is_err() {
            return Err(Status::Numerical);
        }
        self.since_refactor = 0;
        self.emit_refactored("initial");
        self.recompute_basic_values();
        Ok(())
    }

    fn emit_refactored(&self, reason: &'static str) {
        if self.trace.is_enabled() {
            self.trace.emit(
                self.span,
                EventKind::Refactored {
                    iter: self.iterations,
                    nnz: self.engine.factor_nnz(),
                    reason,
                },
            );
        }
    }

    /// Objective value of the current point (telemetry only).
    fn current_objective(&self) -> f64 {
        let lp = self.lp;
        (0..self.n).map(|j| lp.c[j] * self.x[j]).sum()
    }

    /// x_B = B⁻¹ (b − N x_N)
    fn recompute_basic_values(&mut self) {
        let lp = self.lp;
        let mut rhs = lp.b.clone();
        for j in 0..self.n {
            if !matches!(self.vstat[j], VStat::Basic(_)) {
                let v = self.x[j];
                if v != 0.0 {
                    lp.a.col_axpy(j, -v, &mut rhs);
                }
            }
        }
        self.engine.ftran(&mut rhs);
        for (r, &j) in self.basis.iter().enumerate() {
            self.x[j] = rhs[r];
        }
    }

    fn total_infeasibility(&self) -> f64 {
        let lp = self.lp;
        self.basis
            .iter()
            .map(|&j| {
                let v = self.x[j];
                (lp.lower[j] - v).max(0.0) + (v - lp.upper[j]).max(0.0)
            })
            .sum()
    }

    /// Phase-1 cost for the basic variable of row `r`: −1 below lower,
    /// +1 above upper, 0 when feasible.
    fn phase1_costs(&self, out: &mut [f64]) {
        let lp = self.lp;
        for (r, &j) in self.basis.iter().enumerate() {
            let v = self.x[j];
            out[r] = if v < lp.lower[j] - FEAS_TOL {
                -1.0
            } else if v > lp.upper[j] + FEAS_TOL {
                1.0
            } else {
                0.0
            };
        }
    }

    fn iterate(&mut self, phase1: bool) -> Result<(), Status> {
        let lp = self.lp;
        let mut cb = vec![0.0f64; self.m];
        let mut y = vec![0.0f64; self.m];
        let mut d = vec![0.0f64; self.m];

        loop {
            if self.iterations >= self.max_iters {
                return Err(Status::IterationLimit);
            }
            if phase1 && self.total_infeasibility() <= FEAS_TOL {
                return Ok(());
            }
            if self.trace.is_enabled() && self.iterations.is_multiple_of(ITER_SAMPLE) {
                self.trace.emit(
                    self.span,
                    EventKind::SimplexIter {
                        phase: if phase1 { 1 } else { 2 },
                        iter: self.iterations,
                        objective: self.current_objective(),
                    },
                );
            }

            // y = B⁻ᵀ c_B
            if phase1 {
                self.phase1_costs(&mut cb);
            } else {
                for (r, &j) in self.basis.iter().enumerate() {
                    cb[r] = lp.c[j];
                }
            }
            y.copy_from_slice(&cb);
            self.engine.btran(&mut y);

            // Pricing.
            let entering = self.price(phase1, &y);
            let (q, sigma, dq) = match entering {
                Some(e) => e,
                None => {
                    if phase1 && self.total_infeasibility() > FEAS_TOL {
                        // phase-1 optimum with residual infeasibility
                        return Ok(()); // caller declares Infeasible
                    }
                    return Ok(());
                }
            };
            let _ = dq;

            // d = B⁻¹ a_q
            for v in d.iter_mut() {
                *v = 0.0;
            }
            for (i, v) in lp.a.col_iter(q) {
                d[i] = v;
            }
            self.engine.ftran(&mut d);

            // Ratio test.
            let step = self.ratio_test(phase1, q, sigma, &d);
            let (t, leave) = match step {
                RatioOutcome::Unbounded => {
                    if phase1 {
                        // Infeasibility is bounded below by zero; an
                        // unbounded ray here means numerical trouble.
                        return Err(Status::Numerical);
                    }
                    return Err(Status::Unbounded);
                }
                RatioOutcome::BoundFlip(t) => (t, None),
                RatioOutcome::Pivot(t, r, to_upper) => (t, Some((r, to_upper))),
            };

            // Apply the step.
            if t.abs() <= 1e-12 {
                self.degenerate_run += 1;
                if self.degenerate_run > 100 {
                    self.bland = true;
                }
            } else {
                self.degenerate_run = 0;
                if !self.bland {
                    // keep Dantzig
                }
            }
            self.x[q] += sigma * t;
            for (r, &j) in self.basis.iter().enumerate() {
                self.x[j] -= sigma * t * d[r];
            }

            match leave {
                None => {
                    // bound flip of the entering variable
                    self.vstat[q] = match self.vstat[q] {
                        VStat::AtLower => VStat::AtUpper,
                        VStat::AtUpper => VStat::AtLower,
                        other => other,
                    };
                    // snap exactly to the bound
                    self.x[q] = nonbasic_value(self.vstat[q], lp.lower[q], lp.upper[q]);
                }
                Some((r, to_upper)) => {
                    let leaving = self.basis[r];
                    self.vstat[leaving] = if lp.lower[leaving] == lp.upper[leaving] {
                        VStat::AtLower
                    } else if to_upper {
                        VStat::AtUpper
                    } else if lp.lower[leaving].is_finite() {
                        VStat::AtLower
                    } else {
                        VStat::AtUpper
                    };
                    self.x[leaving] =
                        nonbasic_value(self.vstat[leaving], lp.lower[leaving], lp.upper[leaving]);
                    self.basis[r] = q;
                    self.vstat[q] = VStat::Basic(r);
                    let update_rejected = self.engine.update(r, &d).is_err();
                    if update_rejected || self.since_refactor + 1 >= self.refactor_period {
                        if self.engine.refactor(&lp.a, &self.basis).is_err() {
                            return Err(Status::Numerical);
                        }
                        self.since_refactor = 0;
                        self.emit_refactored(if update_rejected {
                            "update_rejected"
                        } else {
                            "periodic"
                        });
                        self.recompute_basic_values();
                    } else {
                        self.since_refactor += 1;
                    }
                }
            }

            self.iterations += 1;
        }
    }

    /// Choose the entering column. Returns `(column, direction, reduced cost)`.
    fn price(&self, phase1: bool, y: &[f64]) -> Option<(usize, f64, f64)> {
        let lp = self.lp;
        let mut best: Option<(usize, f64, f64)> = None;
        for j in 0..self.n {
            let stat = self.vstat[j];
            if matches!(stat, VStat::Basic(_)) {
                continue;
            }
            if lp.lower[j] == lp.upper[j] {
                continue; // fixed variable can never move
            }
            let cj = if phase1 { 0.0 } else { lp.c[j] };
            let dj = cj - lp.a.col_dot(j, y);
            let (eligible, sigma) = match stat {
                VStat::AtLower => (dj < -OPT_TOL, 1.0),
                VStat::AtUpper => (dj > OPT_TOL, -1.0),
                VStat::FreeZero => {
                    if dj < -OPT_TOL {
                        (true, 1.0)
                    } else if dj > OPT_TOL {
                        (true, -1.0)
                    } else {
                        (false, 1.0)
                    }
                }
                VStat::Basic(_) => unreachable!(),
            };
            if !eligible {
                continue;
            }
            if self.bland {
                return Some((j, sigma, dj));
            }
            let score = dj.abs();
            match best {
                Some((_, _, b)) if b.abs() >= score => {}
                _ => best = Some((j, sigma, dj)),
            }
        }
        best
    }

    fn ratio_test(&self, phase1: bool, q: usize, sigma: f64, d: &[f64]) -> RatioOutcome {
        const TIE: f64 = 1e-9;
        let lp = self.lp;

        // The entering variable itself blocks at its opposite bound.
        let room = match self.vstat[q] {
            VStat::AtLower | VStat::AtUpper => lp.upper[q] - lp.lower[q],
            VStat::FreeZero => f64::INFINITY,
            VStat::Basic(_) => unreachable!(),
        };

        let mut t_best = f64::INFINITY;
        let mut leave: Option<(usize, bool)> = None; // (row, leaving-to-upper)
        let mut best_pivot_mag = 0.0f64;

        for (r, &dr) in d.iter().enumerate() {
            let delta = -sigma * dr; // rate of change of this basic variable
            if delta.abs() <= 1e-11 {
                continue;
            }
            let j = self.basis[r];
            let v = self.x[j];
            let (l, u) = (lp.lower[j], lp.upper[j]);
            // (blocking step, variable ends at upper?)
            let below = v < l - FEAS_TOL;
            let above = v > u + FEAS_TOL;
            let (t_block, to_upper) = if delta > 0.0 {
                if phase1 && below {
                    // infeasible below, moving up: blocks on reaching l
                    ((l - v) / delta, false)
                } else if phase1 && above {
                    // already above upper and moving further up: the linear
                    // worsening is priced into the phase-1 gradient; no block
                    continue;
                } else if u.is_finite() {
                    ((u - v) / delta, true)
                } else {
                    continue;
                }
            } else if phase1 && above {
                // infeasible above, moving down: blocks on reaching u
                ((u - v) / delta, true)
            } else if phase1 && below {
                // already below lower and moving further down: no block
                continue;
            } else if l.is_finite() {
                ((l - v) / delta, false)
            } else {
                continue;
            };
            let t_block = t_block.max(0.0);
            let better =
                t_block < t_best - TIE || (t_block <= t_best + TIE && dr.abs() > best_pivot_mag);
            if better {
                t_best = t_block;
                best_pivot_mag = dr.abs();
                leave = Some((r, to_upper));
            }
        }

        if t_best >= room - TIE {
            // The entering variable reaches its opposite bound first (or no
            // basic variable blocks at all).
            if room.is_finite() {
                return RatioOutcome::BoundFlip(room);
            }
            if leave.is_none() {
                return RatioOutcome::Unbounded;
            }
        }
        match leave {
            Some((r, to_upper)) => RatioOutcome::Pivot(t_best, r, to_upper),
            None => RatioOutcome::Unbounded,
        }
    }

    fn finish(mut self, status: Status) -> (RawResult, Option<Basis>) {
        if self.trace.is_enabled() {
            self.trace.emit(
                self.span,
                EventKind::LpSolved {
                    iters: self.iterations,
                    status: status_tag(status),
                    warm: false,
                },
            );
        }
        let lp = self.lp;
        // Final duals and reduced costs from the true objective.
        let mut y = vec![0.0f64; self.m];
        let mut d = vec![0.0f64; self.n];
        let mut basis = None;
        if status == Status::Optimal {
            let mut cb = vec![0.0f64; self.m];
            for (r, &j) in self.basis.iter().enumerate() {
                cb[r] = lp.c[j];
            }
            y.copy_from_slice(&cb);
            self.engine.btran(&mut y);
            for j in 0..self.n {
                d[j] = lp.c[j] - lp.a.col_dot(j, &y);
            }
            basis = Some(snapshot(&self.basis, &self.vstat));
        }
        (RawResult { status, x: self.x, y, d, iterations: self.iterations }, basis)
    }
}

/// Capture the public [`Basis`] form of a solver's internal basis state.
pub(crate) fn snapshot(basis: &[usize], vstat: &[VStat]) -> Basis {
    let status = vstat
        .iter()
        .map(|s| match s {
            VStat::Basic(_) => VarStatus::Basic,
            VStat::AtLower => VarStatus::AtLower,
            VStat::AtUpper => VarStatus::AtUpper,
            VStat::FreeZero => VarStatus::Free,
        })
        .collect();
    Basis { columns: basis.to_vec(), status }
}

/// Snake_case status tag used in trace events.
pub(crate) fn status_tag(status: Status) -> &'static str {
    match status {
        Status::Optimal => "optimal",
        Status::Infeasible => "infeasible",
        Status::Unbounded => "unbounded",
        Status::IterationLimit => "iteration_limit",
        Status::Numerical => "numerical",
    }
}

enum RatioOutcome {
    Unbounded,
    /// The entering variable travels to its opposite bound; no basis change.
    BoundFlip(f64),
    /// Pivot: step length, leaving row, leaving variable ends at upper bound.
    Pivot(f64, usize, bool),
}

pub(crate) fn nonbasic_value(stat: VStat, l: f64, u: f64) -> f64 {
    match stat {
        VStat::AtLower => l,
        VStat::AtUpper => u,
        VStat::FreeZero => 0.0,
        VStat::Basic(_) => unreachable!("nonbasic_value on basic"),
    }
}
