//! Solution and status types.

/// Terminal status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below (after min conversion).
    Unbounded,
    /// Iteration limit was hit before convergence.
    IterationLimit,
    /// Numerical difficulties prevented convergence.
    Numerical,
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::IterationLimit => "iteration limit",
            Status::Numerical => "numerical failure",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Status {}

/// An optimal LP solution in model space.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Objective value in the model's original sense.
    pub objective: f64,
    /// Value per structural variable.
    pub values: Vec<f64>,
    /// Dual value per constraint (sign follows the minimisation convention,
    /// flipped for maximisation models).
    pub duals: Vec<f64>,
    /// Reduced cost per structural variable.
    pub reduced_costs: Vec<f64>,
    /// Simplex iterations across both phases.
    pub iterations: usize,
}
