//! LP model builder and conversion to computational standard form.

use crate::matrix::{Csc, CscBuilder};
use crate::solution::{Solution, Status};

/// Index of a decision variable in a [`Model`].
pub type VarId = usize;

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    Minimize,
    Maximize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Le,
    Ge,
    Eq,
}

#[derive(Debug, Clone)]
struct Var {
    lower: f64,
    upper: f64,
    obj: f64,
    name: String,
}

#[derive(Debug, Clone)]
struct Con {
    terms: Vec<(VarId, f64)>,
    cmp: Cmp,
    rhs: f64,
}

/// A mutable linear-program builder.
///
/// Variables are continuous with (possibly infinite) bounds; constraints are
/// linear with `≤`, `≥` or `=` against a scalar right-hand side. Integrality
/// is layered on top by `rrp-milp`, which treats a [`Model`] plus a set of
/// integer-marked columns as a MILP.
#[derive(Debug, Clone)]
pub struct Model {
    sense: Sense,
    vars: Vec<Var>,
    cons: Vec<Con>,
}

impl Model {
    pub fn new(sense: Sense) -> Self {
        Self { sense, vars: Vec::new(), cons: Vec::new() }
    }

    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a variable with bounds `[lower, upper]` and objective coefficient.
    pub fn add_var(&mut self, lower: f64, upper: f64, obj: f64, name: &str) -> VarId {
        assert!(lower <= upper, "variable '{name}': lower {lower} > upper {upper}");
        assert!(!lower.is_nan() && !upper.is_nan() && obj.is_finite());
        self.vars.push(Var { lower, upper, obj, name: name.to_string() });
        self.vars.len() - 1
    }

    /// Add a linear constraint `Σ coeff·var  cmp  rhs`.
    pub fn add_con(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) -> usize {
        for &(v, c) in terms {
            assert!(v < self.vars.len(), "constraint references unknown variable {v}");
            assert!(c.is_finite());
        }
        assert!(rhs.is_finite());
        self.cons.push(Con { terms: terms.to_vec(), cmp, rhs });
        self.cons.len() - 1
    }

    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v].lower, self.vars[v].upper)
    }

    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v].name
    }

    pub fn var_obj(&self, v: VarId) -> f64 {
        self.vars[v].obj
    }

    /// Constraint `i` as `(terms, cmp, rhs)`.
    pub fn con(&self, i: usize) -> (&[(VarId, f64)], Cmp, f64) {
        let c = &self.cons[i];
        (&c.terms, c.cmp, c.rhs)
    }

    /// Tighten a variable's bounds in place (used by branch & bound).
    pub fn set_var_bounds(&mut self, v: VarId, lower: f64, upper: f64) {
        assert!(lower <= upper, "set_var_bounds: lower {lower} > upper {upper}");
        self.vars[v].lower = lower;
        self.vars[v].upper = upper;
    }

    /// Replace the coefficient of `v` in constraint `row` (used by the
    /// audit pass to tighten loose big-M forcing coefficients). The variable
    /// must already appear in the row — silently adding terms would change
    /// the model's sparsity pattern behind the builder's back.
    pub fn set_con_coeff(&mut self, row: usize, v: VarId, coeff: f64) {
        assert!(coeff.is_finite());
        let con = &mut self.cons[row];
        let pos = con.terms.iter().position(|&(var, _)| var == v);
        assert!(pos.is_some(), "set_con_coeff: variable {v} not in constraint {row}");
        if let Some(p) = pos {
            con.terms[p].1 = coeff;
        }
    }

    /// Convert to the computational form `min cᵀx, Ax = b, l ≤ x ≤ u`.
    ///
    /// One slack column is appended per row: `Σ a·x + s = rhs` with slack
    /// bounds `[0, ∞)` for `≤`, `(-∞, 0]` for `≥`, `[0, 0]` for `=`. A
    /// maximisation objective is negated (and the final objective negated
    /// back when reporting).
    pub fn to_standard(&self) -> StandardLp {
        let n = self.vars.len();
        let m = self.cons.len();
        let ncols = n + m;
        let mut builder = CscBuilder::new(m, ncols);
        let mut lower = Vec::with_capacity(ncols);
        let mut upper = Vec::with_capacity(ncols);
        let mut c = Vec::with_capacity(ncols);
        let obj_scale = match self.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for (j, v) in self.vars.iter().enumerate() {
            lower.push(v.lower);
            upper.push(v.upper);
            c.push(v.obj * obj_scale);
            let _ = j;
        }
        let mut b = Vec::with_capacity(m);
        for (i, con) in self.cons.iter().enumerate() {
            for &(v, coeff) in &con.terms {
                builder.push(i, v, coeff);
            }
            let s = n + i;
            builder.push(i, s, 1.0);
            let (sl, su) = match con.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lower.push(sl);
            upper.push(su);
            c.push(0.0);
            b.push(con.rhs);
        }
        StandardLp { a: builder.build(), b, c, lower, upper, nstruct: n, obj_scale }
    }

    /// Solve with the sparse engine (the default production path).
    pub fn solve(&self) -> Result<Solution, Status> {
        let std = self.to_standard();
        let raw = crate::simplex::solve_sparse(&std);
        std.report(self, raw)
    }

    /// Solve with the dense reference engine (small models, cross-checking).
    pub fn solve_dense(&self) -> Result<Solution, Status> {
        let std = self.to_standard();
        let raw = crate::simplex::solve_dense(&std);
        std.report(self, raw)
    }
}

/// Computational standard form `min cᵀx, Ax = b, l ≤ x ≤ u`.
///
/// Columns `0..nstruct` are the model's structural variables; columns
/// `nstruct..` are row slacks in row order.
#[derive(Debug, Clone)]
pub struct StandardLp {
    pub a: Csc,
    pub b: Vec<f64>,
    pub c: Vec<f64>,
    pub lower: Vec<f64>,
    pub upper: Vec<f64>,
    pub nstruct: usize,
    /// `+1` if the original model minimised, `-1` if it maximised.
    pub obj_scale: f64,
}

impl StandardLp {
    pub fn nrows(&self) -> usize {
        self.a.nrows()
    }

    pub fn ncols(&self) -> usize {
        self.a.ncols()
    }

    /// Translate a raw simplex outcome back into model space.
    pub(crate) fn report(
        &self,
        model: &Model,
        raw: crate::simplex::RawResult,
    ) -> Result<Solution, Status> {
        match raw.status {
            Status::Optimal => {
                let values = raw.x[..self.nstruct].to_vec();
                let duals = raw.y.iter().map(|d| d * self.obj_scale).collect();
                let reduced_costs =
                    raw.d[..self.nstruct].iter().map(|d| d * self.obj_scale).collect();
                let objective: f64 =
                    values.iter().enumerate().map(|(j, x)| model.var_obj(j) * x).sum();
                Ok(Solution { objective, values, duals, reduced_costs, iterations: raw.iterations })
            }
            s => Err(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_form_shapes() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 10.0, 1.0, "x");
        let y = m.add_var(-1.0, 1.0, -2.0, "y");
        m.add_con(&[(x, 1.0), (y, 2.0)], Cmp::Le, 5.0);
        m.add_con(&[(x, 1.0)], Cmp::Eq, 3.0);
        let s = m.to_standard();
        assert_eq!(s.ncols(), 4);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.nstruct, 2);
        // Le slack: [0, inf); Eq slack fixed at 0.
        assert_eq!(s.lower[2], 0.0);
        assert_eq!(s.upper[2], f64::INFINITY);
        assert_eq!((s.lower[3], s.upper[3]), (0.0, 0.0));
        assert_eq!(s.b, vec![5.0, 3.0]);
    }

    #[test]
    fn maximize_negates_costs() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 4.0, 3.0, "x");
        let _ = x;
        let s = m.to_standard();
        assert_eq!(s.c[0], -3.0);
        assert_eq!(s.obj_scale, -1.0);
    }

    #[test]
    #[should_panic(expected = "lower")]
    fn bad_bounds_panic() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var(1.0, 0.0, 0.0, "bad");
    }
}
