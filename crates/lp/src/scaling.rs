//! Geometric-mean equilibration scaling for standard-form LPs.
//!
//! Badly scaled models (coefficients spanning many orders of magnitude)
//! degrade simplex pivot quality. [`scale`] rescales rows and columns of
//! `A` towards unit magnitude by iterated geometric-mean equilibration and
//! returns the transformed problem plus a [`Scaling`] that maps solutions
//! back:
//!
//! ```text
//! A' = R·A·C,  b' = R·b,  c' = C·c,  l' = C⁻¹·l,  u' = C⁻¹·u
//! x = C·x',    y = R·y',  d = C·d'   (duals / reduced costs)
//! ```
//!
//! Scaling is opt-in: the default solve path works on the raw model (the
//! planning LPs of this workspace are already well scaled); it exists for
//! callers feeding numerically wild data into the substrate.

use crate::matrix::CscBuilder;
use crate::model::StandardLp;
use crate::simplex::RawResult;

/// Row and column scale factors applied to a [`StandardLp`].
#[derive(Debug, Clone)]
pub struct Scaling {
    pub row: Vec<f64>,
    pub col: Vec<f64>,
}

impl Scaling {
    /// Map a raw solution of the scaled problem back to the original space.
    pub fn unscale(&self, mut r: RawResult) -> RawResult {
        for (x, c) in r.x.iter_mut().zip(&self.col) {
            *x *= c;
        }
        for (y, rw) in r.y.iter_mut().zip(&self.row) {
            *y *= rw;
        }
        // d' = c' − A'ᵀy' = C·(c − Aᵀ·R·y'), so the original reduced cost
        // is d'/C — division, unlike the primal values
        for (d, c) in r.d.iter_mut().zip(&self.col) {
            *d /= c;
        }
        r
    }
}

/// Equilibrate `lp` with `passes` rounds of row/column geometric-mean
/// scaling (2 is the customary default). Scale factors are rounded to
/// powers of two so the transform is exact in floating point.
pub fn scale(lp: &StandardLp, passes: usize) -> (StandardLp, Scaling) {
    let m = lp.nrows();
    let n = lp.ncols();
    let mut row = vec![1.0f64; m];
    let mut col = vec![1.0f64; n];

    for _ in 0..passes {
        // column pass: geometric mean of |a_ij·r_i|
        for j in 0..n {
            let mut log_sum = 0.0;
            let mut count = 0usize;
            for (i, v) in lp.a.col_iter(j) {
                let mag = (v * row[i] * col[j]).abs();
                if mag > 0.0 {
                    log_sum += mag.ln();
                    count += 1;
                }
            }
            if count > 0 {
                let gm = (log_sum / count as f64).exp();
                col[j] /= pow2_round(gm);
            }
        }
        // row pass
        let mut log_sum = vec![0.0f64; m];
        let mut count = vec![0usize; m];
        for j in 0..n {
            for (i, v) in lp.a.col_iter(j) {
                let mag = (v * row[i] * col[j]).abs();
                if mag > 0.0 {
                    log_sum[i] += mag.ln();
                    count[i] += 1;
                }
            }
        }
        for i in 0..m {
            if count[i] > 0 {
                let gm = (log_sum[i] / count[i] as f64).exp();
                row[i] /= pow2_round(gm);
            }
        }
    }

    // build the scaled problem
    let mut builder = CscBuilder::new(m, n);
    for j in 0..n {
        for (i, v) in lp.a.col_iter(j) {
            builder.push(i, j, v * row[i] * col[j]);
        }
    }
    let scaled = StandardLp {
        a: builder.build(),
        b: lp.b.iter().zip(&row).map(|(b, r)| b * r).collect(),
        c: lp.c.iter().zip(&col).map(|(c, s)| c * s).collect(),
        lower: lp.lower.iter().zip(&col).map(|(l, s)| l / s).collect(),
        upper: lp.upper.iter().zip(&col).map(|(u, s)| u / s).collect(),
        nstruct: lp.nstruct,
        obj_scale: lp.obj_scale,
    };
    (scaled, Scaling { row, col })
}

/// Nearest power of two (exact floating-point scaling).
fn pow2_round(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    2.0f64.powi(x.log2().round() as i32)
}

/// Convenience: solve with scaling and return the solution in original
/// space.
pub fn solve_scaled(lp: &StandardLp) -> RawResult {
    let (scaled, s) = scale(lp, 2);
    let raw = crate::simplex::solve_sparse(&scaled);
    s.unscale(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};
    use crate::solution::Status;

    #[test]
    fn pow2_rounding() {
        assert_eq!(pow2_round(1.0), 1.0);
        assert_eq!(pow2_round(3.0), 4.0);
        assert_eq!(pow2_round(0.3), 0.25);
    }

    #[test]
    fn scaling_preserves_optimum_on_wild_model() {
        // coefficients spanning 9 orders of magnitude
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 1e7, 1e-4, "x");
        let y = m.add_var(0.0, 1e-3, 1e5, "y");
        m.add_con(&[(x, 1e-5), (y, 1e4)], Cmp::Ge, 2.0);
        let lp = m.to_standard();
        let direct = crate::simplex::solve_sparse(&lp);
        let scaled = solve_scaled(&lp);
        assert_eq!(direct.status, Status::Optimal);
        assert_eq!(scaled.status, Status::Optimal);
        let obj = |r: &RawResult| -> f64 { r.x.iter().zip(&lp.c).map(|(x, c)| x * c).sum() };
        let (a, b) = (obj(&direct), obj(&scaled));
        assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
    }

    #[test]
    fn duals_unscale_consistently() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 4000.0, "x");
        let y = m.add_var(0.0, f64::INFINITY, 0.003, "y");
        m.add_con(&[(x, 200.0), (y, 0.004)], Cmp::Ge, 8.0);
        let lp = m.to_standard();
        let direct = crate::simplex::solve_sparse(&lp);
        let scaled = solve_scaled(&lp);
        for (a, b) in direct.y.iter().zip(&scaled.y) {
            assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()), "dual {a} vs {b}");
        }
    }

    #[test]
    fn scale_factors_are_powers_of_two() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 10.0, 3.7, "x");
        m.add_con(&[(x, 123.4)], Cmp::Le, 500.0);
        let lp = m.to_standard();
        let (_, s) = scale(&lp, 2);
        for v in s.row.iter().chain(&s.col) {
            let l = v.log2();
            assert!((l - l.round()).abs() < 1e-12, "{v} is not a power of two");
        }
    }

    #[test]
    fn well_scaled_model_nearly_untouched() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 2.0, 1.0, "x");
        let y = m.add_var(0.0, 2.0, 1.0, "y");
        m.add_con(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let lp = m.to_standard();
        let (_, s) = scale(&lp, 2);
        for v in s.row.iter().chain(&s.col) {
            assert!(*v >= 0.5 && *v <= 2.0, "over-aggressive scaling: {v}");
        }
    }
}
