//! Compressed sparse column (CSC) matrices and sparse vectors.
//!
//! The simplex solver only ever needs column access to the constraint
//! matrix, so CSC is the single storage format. Entries within a column are
//! kept sorted by row index with no duplicates; [`CscBuilder`] enforces this
//! by accumulating triplets and merging.

/// A sparse vector as parallel (index, value) arrays, not necessarily sorted.
#[derive(Debug, Clone, Default)]
pub struct SparseVec {
    pub idx: Vec<usize>,
    pub val: Vec<f64>,
}

impl SparseVec {
    pub fn clear(&mut self) {
        self.idx.clear();
        self.val.clear();
    }

    pub fn push(&mut self, i: usize, v: f64) {
        self.idx.push(i);
        self.val.push(v);
    }

    pub fn len(&self) -> usize {
        self.idx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Scatter into a dense vector (which must be zeroed where untouched).
    pub fn scatter_into(&self, dense: &mut [f64]) {
        for (&i, &v) in self.idx.iter().zip(&self.val) {
            dense[i] += v;
        }
    }
}

/// Immutable CSC matrix.
#[derive(Debug, Clone)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    /// Column start offsets, length `ncols + 1`.
    colptr: Vec<usize>,
    /// Row indices, sorted within each column.
    rowind: Vec<usize>,
    values: Vec<f64>,
}

impl Csc {
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// Row indices of column `j`.
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Values of column `j` (parallel to [`Csc::col_rows`]).
    pub fn col_vals(&self, j: usize) -> &[f64] {
        &self.values[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Iterate `(row, value)` over column `j`.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.col_rows(j).iter().copied().zip(self.col_vals(j).iter().copied())
    }

    /// Dense `yᵀ · A_j` (dot of a dense row vector with column `j`).
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (i, v) in self.col_iter(j) {
            acc += y[i] * v;
        }
        acc
    }

    /// `out += A_j * scale` for dense `out`.
    pub fn col_axpy(&self, j: usize, scale: f64, out: &mut [f64]) {
        for (i, v) in self.col_iter(j) {
            out[i] += v * scale;
        }
    }

    /// Dense matrix-vector product `A x` (used by tests and residual checks).
    pub fn mul_dense(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut out = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            if x[j] != 0.0 {
                self.col_axpy(j, x[j], &mut out);
            }
        }
        out
    }
}

/// Builder accumulating triplets; duplicates within a column are summed.
#[derive(Debug, Clone)]
pub struct CscBuilder {
    nrows: usize,
    cols: Vec<Vec<(usize, f64)>>,
}

impl CscBuilder {
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self { nrows, cols: vec![Vec::new(); ncols] }
    }

    pub fn add_col(&mut self) -> usize {
        self.cols.push(Vec::new());
        self.cols.len() - 1
    }

    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        debug_assert!(row < self.nrows, "row {row} out of bounds ({})", self.nrows);
        if val != 0.0 {
            self.cols[col].push((row, val));
        }
    }

    pub fn build(mut self) -> Csc {
        let ncols = self.cols.len();
        let mut colptr = Vec::with_capacity(ncols + 1);
        let mut rowind = Vec::new();
        let mut values = Vec::new();
        colptr.push(0);
        for col in &mut self.cols {
            col.sort_unstable_by_key(|&(r, _)| r);
            let mut k = 0;
            while k < col.len() {
                let r = col[k].0;
                let mut v = col[k].1;
                let mut k2 = k + 1;
                while k2 < col.len() && col[k2].0 == r {
                    v += col[k2].1;
                    k2 += 1;
                }
                if v != 0.0 {
                    rowind.push(r);
                    values.push(v);
                }
                k = k2;
            }
            colptr.push(rowind.len());
        }
        Csc { nrows: self.nrows, ncols, colptr, rowind, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_and_merges_duplicates() {
        let mut b = CscBuilder::new(3, 2);
        b.push(2, 0, 1.0);
        b.push(0, 0, 2.0);
        b.push(2, 0, 3.0);
        b.push(1, 1, -1.0);
        let m = b.build();
        assert_eq!(m.col_rows(0), &[0, 2]);
        assert_eq!(m.col_vals(0), &[2.0, 4.0]);
        assert_eq!(m.col_rows(1), &[1]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn exact_zero_sums_are_dropped() {
        let mut b = CscBuilder::new(2, 1);
        b.push(0, 0, 1.5);
        b.push(0, 0, -1.5);
        b.push(1, 0, 2.0);
        let m = b.build();
        assert_eq!(m.col_rows(0), &[1]);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn mul_dense_matches_manual() {
        // A = [[1, 0], [2, 3]]
        let mut b = CscBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(1, 0, 2.0);
        b.push(1, 1, 3.0);
        let m = b.build();
        let y = m.mul_dense(&[2.0, -1.0]);
        assert_eq!(y, vec![2.0, 1.0]);
    }

    #[test]
    fn col_dot_and_axpy() {
        let mut b = CscBuilder::new(3, 1);
        b.push(0, 0, 1.0);
        b.push(2, 0, -2.0);
        let m = b.build();
        assert_eq!(m.col_dot(0, &[3.0, 100.0, 0.5]), 2.0);
        let mut out = vec![0.0; 3];
        m.col_axpy(0, 2.0, &mut out);
        assert_eq!(out, vec![2.0, 0.0, -4.0]);
    }

    #[test]
    fn empty_matrix() {
        let m = CscBuilder::new(0, 0).build();
        assert_eq!(m.nnz(), 0);
        assert!(m.mul_dense(&[]).is_empty());
    }
}
