//! Sparse LU factorisation of a simplex basis (Gilbert–Peierls, partial
//! pivoting), plus triangular solves in both directions.
//!
//! Factorises `P·B = L·U` where `B` is formed from selected columns of a CSC
//! constraint matrix, `L` is unit lower triangular, `U` upper triangular and
//! `P` a row permutation chosen by threshold-free partial pivoting (largest
//! magnitude). The left-looking algorithm computes, for each column, the
//! sparse triangular solve `z = L⁻¹·P·bₖ` with its nonzero pattern discovered
//! by depth-first search (the classic `cs_lu`/`cs_spsolve` scheme), so the
//! cost is proportional to arithmetic work rather than `O(m²)` per column —
//! essential for the network-like bases of lot-sizing LPs.

use crate::matrix::Csc;
use crate::PIVOT_TOL;

/// Error: the selected basis columns are numerically singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Singular {
    /// Elimination step at which no acceptable pivot remained.
    pub at_column: usize,
}

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "singular basis at elimination column {}", self.at_column)
    }
}

impl std::error::Error for Singular {}

/// LU factors of a basis. Row indices of `l` and `u` are in *permuted*
/// space; `pinv[orig_row] = permuted_row`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    /// Unit lower triangular factor; unit diagonal stored explicitly is NOT
    /// included (columns hold strictly-below-diagonal entries).
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// Upper triangular factor including the diagonal (last entry of each
    /// column is the diagonal by construction).
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    pinv: Vec<usize>,
}

impl LuFactors {
    pub fn dim(&self) -> usize {
        self.m
    }

    pub fn nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len()
    }

    /// Factorise the basis `B = A[:, cols]`.
    pub fn factorize(a: &Csc, cols: &[usize]) -> Result<Self, Singular> {
        let m = a.nrows();
        assert_eq!(cols.len(), m, "basis must be square");

        // L is built column-by-column with ORIGINAL row indices during the
        // factorisation (remapped to permuted space at the end), exactly as
        // in cs_lu: the DFS interprets entry rows through `pinv`.
        let mut l_colptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_colptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        let mut u_diag = vec![0.0f64; m];

        const UNSET: usize = usize::MAX;
        let mut pinv = vec![UNSET; m];

        let mut x = vec![0.0f64; m]; // dense numeric work vector
        let mut xi = vec![0usize; m]; // nonzero pattern stack (original rows)
        let mut marked = vec![false; m];
        // DFS machinery
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new(); // (orig_row, next child offset)

        for k in 0..m {
            let bcol = cols[k];

            // --- symbolic: pattern of z = L⁻¹ P bₖ via DFS over L's graph ---
            let mut top = m; // xi[top..m] holds the pattern in topological order
            for &i0 in a.col_rows(bcol) {
                if marked[i0] {
                    continue;
                }
                // Iterative DFS from original row i0.
                dfs_stack.clear();
                dfs_stack.push((i0, 0));
                marked[i0] = true;
                while let Some(&(i, poff)) = dfs_stack.last() {
                    let jcol = pinv[i];
                    let (start, end) = if jcol == UNSET || jcol >= k {
                        (0, 0) // not yet pivotal: leaf node
                    } else {
                        (l_colptr[jcol], l_colptr[jcol + 1])
                    };
                    let mut descended = false;
                    let mut off = poff;
                    while start + off < end {
                        let child = l_rows[start + off];
                        off += 1;
                        if !marked[child] {
                            marked[child] = true;
                            if let Some(frame) = dfs_stack.last_mut() {
                                frame.1 = off;
                            }
                            dfs_stack.push((child, 0));
                            descended = true;
                            break;
                        }
                    }
                    if !descended {
                        dfs_stack.pop();
                        top -= 1;
                        xi[top] = i;
                    }
                }
            }

            // --- numeric: sparse lower-triangular solve ---
            for (i, v) in a.col_iter(bcol) {
                x[i] = v;
            }
            // xi[top..m] is topological (dependencies first when iterated
            // from `top` forward? cs_spsolve iterates top..n applying columns
            // in that order). Reach is stored so that iterating forward
            // applies each pivotal node after everything it depends on.
            for p in top..m {
                let i = xi[p];
                let jcol = pinv[i];
                if jcol == UNSET || jcol >= k {
                    continue;
                }
                let xi_val = x[i];
                if xi_val == 0.0 {
                    continue;
                }
                for (idx, &r) in l_rows[l_colptr[jcol]..l_colptr[jcol + 1]].iter().enumerate() {
                    let lv = l_vals[l_colptr[jcol] + idx];
                    x[r] -= lv * xi_val;
                }
            }

            // --- pivot selection: largest magnitude among non-pivotal rows ---
            let mut ipiv = UNSET;
            let mut amax = 0.0f64;
            for p in top..m {
                let i = xi[p];
                if pinv[i] == UNSET {
                    let t = x[i].abs();
                    if t > amax {
                        amax = t;
                        ipiv = i;
                    }
                }
            }
            if ipiv == UNSET || amax <= PIVOT_TOL {
                // clean up work arrays before reporting
                for p in top..m {
                    let i = xi[p];
                    x[i] = 0.0;
                    marked[i] = false;
                }
                return Err(Singular { at_column: k });
            }
            let pivot = x[ipiv];
            pinv[ipiv] = k;
            u_diag[k] = pivot;

            // --- emit U (pivotal rows) and L (non-pivotal rows, scaled) ---
            for p in top..m {
                let i = xi[p];
                let prow = pinv[i];
                let v = x[i];
                if i == ipiv {
                    // diagonal handled via u_diag; also store in u for
                    // transpose solves.
                } else if prow != UNSET && prow < k {
                    if v != 0.0 {
                        u_rows.push(prow);
                        u_vals.push(v);
                    }
                } else if i != ipiv && v != 0.0 {
                    l_rows.push(i); // original row index, remapped later
                    l_vals.push(v / pivot);
                }
                x[i] = 0.0;
                marked[i] = false;
            }
            // store diagonal last within the column
            u_rows.push(k);
            u_vals.push(pivot);
            u_colptr.push(u_rows.len());
            l_colptr.push(l_rows.len());
        }

        // Remap L's row indices to permuted space.
        for r in &mut l_rows {
            debug_assert!(pinv[*r] != UNSET);
            *r = pinv[*r];
        }
        // Sort each column of L and U by (now permuted) row index to make the
        // transpose solves cache-friendlier and deterministic.
        for k in 0..m {
            sort_column(&mut l_rows, &mut l_vals, l_colptr[k], l_colptr[k + 1]);
            sort_column(&mut u_rows, &mut u_vals, u_colptr[k], u_colptr[k + 1]);
        }

        Ok(LuFactors { m, l_colptr, l_rows, l_vals, u_colptr, u_rows, u_vals, u_diag, pinv })
    }

    /// Solve `B x = b`; `b` is overwritten with `x` (indexed by basis
    /// position, i.e. elimination order).
    pub fn solve(&self, b: &mut [f64], work: &mut Vec<f64>) {
        let m = self.m;
        debug_assert_eq!(b.len(), m);
        work.clear();
        work.resize(m, 0.0);
        // apply P: work[pinv[i]] = b[i]
        for i in 0..m {
            work[self.pinv[i]] = b[i];
        }
        // L y = Pb  (unit diagonal, strictly-lower entries stored)
        for k in 0..m {
            let yk = work[k];
            if yk != 0.0 {
                for idx in self.l_colptr[k]..self.l_colptr[k + 1] {
                    work[self.l_rows[idx]] -= self.l_vals[idx] * yk;
                }
            }
        }
        // U x = y
        for k in (0..m).rev() {
            let xk = work[k] / self.u_diag[k];
            work[k] = xk;
            if xk != 0.0 {
                for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                    let r = self.u_rows[idx];
                    if r != k {
                        work[r] -= self.u_vals[idx] * xk;
                    }
                }
            }
        }
        b.copy_from_slice(work);
    }

    /// Solve `Bᵀ y = c`; `c` is overwritten with `y` (indexed by original
    /// row, i.e. constraint index).
    pub fn solve_transpose(&self, c: &mut [f64], work: &mut Vec<f64>) {
        let m = self.m;
        debug_assert_eq!(c.len(), m);
        work.clear();
        work.resize(m, 0.0);
        // Uᵀ z = c : forward substitution using columns of U as rows of Uᵀ.
        for k in 0..m {
            let mut acc = c[k];
            for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                let r = self.u_rows[idx];
                if r != k {
                    acc -= self.u_vals[idx] * work[r];
                }
            }
            work[k] = acc / self.u_diag[k];
        }
        // Lᵀ w = z : backward substitution (unit diagonal).
        for k in (0..m).rev() {
            let mut acc = work[k];
            for idx in self.l_colptr[k]..self.l_colptr[k + 1] {
                acc -= self.l_vals[idx] * work[self.l_rows[idx]];
            }
            work[k] = acc;
        }
        // y = Pᵀ w : y[i] = w[pinv[i]]
        for i in 0..m {
            c[i] = work[self.pinv[i]];
        }
    }
}

fn sort_column(rows: &mut [usize], vals: &mut [f64], start: usize, end: usize) {
    // insertion sort on the (usually tiny) column slice, moving vals along
    for i in start + 1..end {
        let mut j = i;
        while j > start && rows[j - 1] > rows[j] {
            rows.swap(j - 1, j);
            vals.swap(j - 1, j);
            j -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CscBuilder;

    fn dense_to_csc(rows: usize, cols: usize, data: &[f64]) -> Csc {
        let mut b = CscBuilder::new(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                let v = data[i * cols + j];
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn identity_roundtrip() {
        let a = dense_to_csc(3, 3, &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        let lu = LuFactors::factorize(&a, &[0, 1, 2]).unwrap();
        let mut b = vec![1.0, 2.0, 3.0];
        let mut w = Vec::new();
        lu.solve(&mut b, &mut w);
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
        let mut c = vec![-1.0, 0.5, 2.0];
        lu.solve_transpose(&mut c, &mut w);
        assert_eq!(c, vec![-1.0, 0.5, 2.0]);
    }

    #[test]
    fn small_dense_solve() {
        // B = [[2, 1], [1, 3]]
        let a = dense_to_csc(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let lu = LuFactors::factorize(&a, &[0, 1]).unwrap();
        // Solve B x = [5, 10] → x = [1, 3]
        let mut b = vec![5.0, 10.0];
        let mut w = Vec::new();
        lu.solve(&mut b, &mut w);
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
        // Bᵀ y = [4, 10] → y solves [[2,1],[1,3]]ᵀ y = [4,10]: 2y0+y1=4, y0+3y1=10 → y0=0.4, y1=3.2
        let mut c = vec![4.0, 10.0];
        lu.solve_transpose(&mut c, &mut w);
        assert!((c[0] - 0.4).abs() < 1e-12, "{c:?}");
        assert!((c[1] - 3.2).abs() < 1e-12, "{c:?}");
    }

    #[test]
    fn permutation_required() {
        // B = [[0, 1], [1, 0]] forces row pivoting.
        let a = dense_to_csc(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let lu = LuFactors::factorize(&a, &[0, 1]).unwrap();
        let mut b = vec![7.0, 9.0];
        let mut w = Vec::new();
        lu.solve(&mut b, &mut w);
        // x = [9, 7]
        assert!((b[0] - 9.0).abs() < 1e-12);
        assert!((b[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = dense_to_csc(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(LuFactors::factorize(&a, &[0, 1]).is_err());
    }

    #[test]
    fn random_matrices_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..50 {
            let m = 1 + rng.gen_range(0..25);
            // random sparse-ish matrix with guaranteed nonzero diagonal
            let mut data = vec![0.0; m * m];
            for i in 0..m {
                for j in 0..m {
                    if i == j || rng.gen_bool(0.3) {
                        data[i * m + j] = rng.gen_range(-2.0..2.0f64);
                    }
                }
                if data[i * m + i].abs() < 0.1 {
                    data[i * m + i] = 1.0 + rng.gen_range(0.0..1.0f64);
                }
            }
            let a = dense_to_csc(m, m, &data);
            let cols: Vec<usize> = (0..m).collect();
            let lu = match LuFactors::factorize(&a, &cols) {
                Ok(lu) => lu,
                Err(_) => continue, // randomly singular: acceptable, skip
            };
            let xs: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0f64)).collect();
            // b = B x
            let b0 = a.mul_dense(&xs);
            let mut b = b0.clone();
            let mut w = Vec::new();
            lu.solve(&mut b, &mut w);
            for i in 0..m {
                assert!(
                    (b[i] - xs[i]).abs() < 1e-8,
                    "trial {trial} ftran mismatch at {i}: {} vs {}",
                    b[i],
                    xs[i]
                );
            }
            // transpose: c = Bᵀ y  with random y
            let ys: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0..3.0f64)).collect();
            let mut c = vec![0.0; m];
            for j in 0..m {
                c[j] = a.col_dot(j, &ys);
            }
            lu.solve_transpose(&mut c, &mut w);
            for i in 0..m {
                assert!(
                    (c[i] - ys[i]).abs() < 1e-8,
                    "trial {trial} btran mismatch at {i}: {} vs {}",
                    c[i],
                    ys[i]
                );
            }
        }
    }
}
