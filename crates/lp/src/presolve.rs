//! Presolve: problem reductions applied before the simplex.
//!
//! Three classic reductions run to a fixed point:
//!
//! 1. **Fixed variables** (`l = u`) are substituted into every constraint
//!    and moved into an objective offset.
//! 2. **Empty rows** are dropped (after checking they are consistent —
//!    an inconsistent empty row proves infeasibility).
//! 3. **Singleton rows** (`a·x cmp b` with one nonzero) become variable
//!    bounds and are dropped; crossing bounds prove infeasibility.
//!
//! [`presolve`] returns a reduced [`Model`] plus the bookkeeping needed by
//! [`Presolved::postsolve`] to express a reduced-space solution in the
//! original variable space. Dropped rows get zero duals (they are either
//! free or folded into bound multipliers, which the reduced solve reports
//! as reduced costs).

use crate::model::{Cmp, Model, VarId};
use crate::solution::{Solution, Status};

/// Outcome of presolving.
#[derive(Debug)]
pub enum PresolveOutcome {
    /// The model was reduced (possibly to nothing).
    Reduced(Presolved),
    /// Presolve proved infeasibility outright; the proof names the row (and
    /// variable, for crossing bounds) that established it.
    Infeasible(InfeasibleRow),
}

/// Which reduction proved infeasibility, and where.
#[derive(Debug, Clone, PartialEq)]
pub struct InfeasibleRow {
    /// Original index of the constraint that proved infeasibility.
    pub row: usize,
    /// The variable whose bounds crossed (singleton-row reductions only).
    pub var: Option<VarId>,
    /// Human-readable explanation of the proof.
    pub reason: String,
}

impl std::fmt::Display for InfeasibleRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "row {}: {}", self.row, self.reason)
    }
}

/// A reduced model plus the mapping back to the original space.
#[derive(Debug)]
pub struct Presolved {
    pub model: Model,
    /// `keep_vars[j]` = original index of reduced column `j`.
    keep_vars: Vec<usize>,
    /// Fixed value per original column (`None` if it survived).
    fixed: Vec<Option<f64>>,
    /// `keep_rows[i]` = original index of reduced row `i`.
    keep_rows: Vec<usize>,
    /// Original counts.
    n_orig_vars: usize,
    n_orig_rows: usize,
    /// Objective contribution of eliminated variables.
    obj_offset: f64,
}

/// Run the reductions on `model`.
pub fn presolve(model: &Model) -> PresolveOutcome {
    // The same bound-comparison tolerance as the rrp-audit propagation pass,
    // so presolve and audit agree on what counts as a crossing bound.
    const TOL: f64 = crate::BOUND_TOL;
    let n = model.num_vars();
    let m_rows = model.num_cons();

    // working copies of bounds and rows
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for j in 0..n {
        let (l, u) = model.var_bounds(j);
        lower.push(l);
        upper.push(u);
    }
    let mut rows: Vec<Option<(Vec<(usize, f64)>, Cmp, f64)>> = (0..m_rows)
        .map(|i| {
            let (terms, cmp, rhs) = model.con(i);
            Some((terms.to_vec(), cmp, rhs))
        })
        .collect();

    let mut changed = true;
    while changed {
        changed = false;
        // singleton + empty rows
        for (row_idx, slot) in rows.iter_mut().enumerate() {
            let Some((terms, cmp, rhs)) = slot.as_mut() else { continue };
            // drop terms on variables already squeezed to a point
            // (treat as fixed at that point)
            let mut constant = 0.0;
            terms.retain(|&(j, c)| {
                if (upper[j] - lower[j]).abs() <= TOL {
                    constant += c * lower[j];
                    false
                } else {
                    true
                }
            });
            let rhs_eff = *rhs - constant;
            if constant != 0.0 {
                *rhs = rhs_eff;
                changed = true;
            }
            match terms.len() {
                0 => {
                    let ok = match cmp {
                        Cmp::Le => rhs_eff >= -TOL,
                        Cmp::Ge => rhs_eff <= TOL,
                        Cmp::Eq => rhs_eff.abs() <= TOL,
                    };
                    if !ok {
                        return PresolveOutcome::Infeasible(InfeasibleRow {
                            row: row_idx,
                            var: None,
                            reason: format!(
                                "row reduced to empty but requires {cmp:?} {rhs_eff} \
                                 after substituting fixed variables"
                            ),
                        });
                    }
                    *slot = None;
                    changed = true;
                }
                1 => {
                    let (j, c) = terms[0];
                    debug_assert!(c.abs() > 0.0);
                    let bound = rhs_eff / c;
                    let (new_l, new_u) = match (cmp, c > 0.0) {
                        (Cmp::Le, true) | (Cmp::Ge, false) => (f64::NEG_INFINITY, bound),
                        (Cmp::Ge, true) | (Cmp::Le, false) => (bound, f64::INFINITY),
                        (Cmp::Eq, _) => (bound, bound),
                    };
                    if new_l > lower[j] + TOL {
                        lower[j] = new_l;
                    }
                    if new_u < upper[j] - TOL {
                        upper[j] = new_u;
                    }
                    if lower[j] > upper[j] + TOL {
                        return PresolveOutcome::Infeasible(InfeasibleRow {
                            row: row_idx,
                            var: Some(j),
                            reason: format!(
                                "singleton row tightened '{}' to crossing bounds \
                                 [{}, {}]",
                                model.var_name(j),
                                lower[j],
                                upper[j]
                            ),
                        });
                    }
                    // snap tiny crossings
                    if lower[j] > upper[j] {
                        lower[j] = upper[j];
                    }
                    *slot = None;
                    changed = true;
                }
                _ => {}
            }
        }
    }

    // assemble the reduced model
    let mut fixed = vec![None; n];
    let mut keep_vars = Vec::new();
    let mut col_map = vec![usize::MAX; n];
    let mut obj_offset = 0.0;
    let mut reduced = Model::new(model.sense());
    for j in 0..n {
        if (upper[j] - lower[j]).abs() <= TOL {
            fixed[j] = Some(lower[j]);
            obj_offset += model.var_obj(j) * lower[j];
        } else {
            col_map[j] = keep_vars.len();
            keep_vars.push(j);
            reduced.add_var(lower[j], upper[j], model.var_obj(j), model.var_name(j));
        }
    }
    let mut keep_rows = Vec::new();
    for (i, slot) in rows.iter().enumerate() {
        let Some((terms, cmp, rhs)) = slot else { continue };
        let mut new_terms = Vec::with_capacity(terms.len());
        let mut constant = 0.0;
        for &(j, c) in terms {
            match fixed[j] {
                Some(v) => constant += c * v,
                None => new_terms.push((col_map[j], c)),
            }
        }
        let rhs_eff = rhs - constant;
        if new_terms.is_empty() {
            let ok = match cmp {
                Cmp::Le => rhs_eff >= -TOL,
                Cmp::Ge => rhs_eff <= TOL,
                Cmp::Eq => rhs_eff.abs() <= TOL,
            };
            if !ok {
                return PresolveOutcome::Infeasible(InfeasibleRow {
                    row: i,
                    var: None,
                    reason: format!("all variables fixed, residual requires {cmp:?} {rhs_eff}"),
                });
            }
            continue;
        }
        reduced.add_con(&new_terms, *cmp, rhs_eff);
        keep_rows.push(i);
    }

    PresolveOutcome::Reduced(Presolved {
        model: reduced,
        keep_vars,
        fixed,
        keep_rows,
        n_orig_vars: n,
        n_orig_rows: m_rows,
        obj_offset,
    })
}

impl Presolved {
    /// Solve the reduced model and express the solution in original space.
    pub fn solve(&self) -> Result<Solution, Status> {
        let reduced_sol = if self.model.num_vars() == 0 {
            // fully solved by presolve
            Solution {
                objective: 0.0,
                values: Vec::new(),
                duals: vec![0.0; self.model.num_cons()],
                reduced_costs: Vec::new(),
                iterations: 0,
            }
        } else {
            self.model.solve()?
        };
        Ok(self.postsolve(reduced_sol))
    }

    /// Lift a reduced-space solution back to the original space.
    pub fn postsolve(&self, sol: Solution) -> Solution {
        let mut values = vec![0.0; self.n_orig_vars];
        for (j, v) in self.fixed.iter().enumerate() {
            if let Some(v) = v {
                values[j] = *v;
            }
        }
        for (rj, &oj) in self.keep_vars.iter().enumerate() {
            values[oj] = sol.values[rj];
        }
        let mut duals = vec![0.0; self.n_orig_rows];
        for (ri, &oi) in self.keep_rows.iter().enumerate() {
            duals[oi] = sol.duals[ri];
        }
        let mut reduced_costs = vec![0.0; self.n_orig_vars];
        for (rj, &oj) in self.keep_vars.iter().enumerate() {
            reduced_costs[oj] = sol.reduced_costs[rj];
        }
        Solution {
            objective: sol.objective + self.obj_offset,
            values,
            duals,
            reduced_costs,
            iterations: sol.iterations,
        }
    }

    /// Number of variables eliminated.
    pub fn vars_removed(&self) -> usize {
        self.n_orig_vars - self.keep_vars.len()
    }

    /// Number of rows eliminated.
    pub fn rows_removed(&self) -> usize {
        self.n_orig_rows - self.keep_rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn fixed_variable_removed_and_substituted() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(2.0, 2.0, 3.0, "x");
        let y = m.add_var(0.0, 10.0, 1.0, "y");
        m.add_con(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let PresolveOutcome::Reduced(p) = presolve(&m) else { panic!("reduced") };
        assert_eq!(p.vars_removed(), 1);
        let sol = p.solve().unwrap();
        // x fixed at 2 → y >= 3; obj = 6 + 3 = 9
        assert!((sol.objective - 9.0).abs() < 1e-8);
        assert_eq!(sol.values.len(), 2);
        assert!((sol.values[x] - 2.0).abs() < 1e-12);
        assert!((sol.values[y] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn singleton_row_becomes_bound() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 100.0, 1.0, "x");
        m.add_con(&[(x, 2.0)], Cmp::Ge, 10.0);
        let PresolveOutcome::Reduced(p) = presolve(&m) else { panic!("reduced") };
        assert_eq!(p.rows_removed(), 1);
        let sol = p.solve().unwrap();
        assert!((sol.values[x] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn negative_coefficient_singleton_flips_direction() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 100.0, 1.0, "x");
        m.add_con(&[(x, -1.0)], Cmp::Ge, -7.0); // x <= 7
        let PresolveOutcome::Reduced(p) = presolve(&m) else { panic!("reduced") };
        let sol = p.solve().unwrap();
        assert!((sol.values[x] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_singleton_pair_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 10.0, 1.0, "x");
        m.add_con(&[(x, 1.0)], Cmp::Ge, 8.0);
        m.add_con(&[(x, 1.0)], Cmp::Le, 3.0);
        let PresolveOutcome::Infeasible(proof) = presolve(&m) else {
            panic!("crossing singleton bounds must prove infeasibility")
        };
        // the ≤ row (index 1) is the one that crosses the ≥ 8 bound on x
        assert_eq!(proof.row, 1, "proof: {proof}");
        assert_eq!(proof.var, Some(x));
        assert!(proof.reason.contains("'x'"), "proof: {proof}");
    }

    #[test]
    fn inconsistent_fixed_row_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0, 1.0, 0.0, "x");
        m.add_con(&[(x, 1.0)], Cmp::Eq, 2.0);
        let PresolveOutcome::Infeasible(proof) = presolve(&m) else {
            panic!("inconsistent fixed row must prove infeasibility")
        };
        assert_eq!(proof.row, 0, "proof: {proof}");
    }

    #[test]
    fn cascading_fixes_reach_fixpoint() {
        // row1 fixes x via equality singleton; then row2 becomes a singleton
        // on y; y's bound then makes row3 empty-but-consistent.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 10.0, 1.0, "x");
        let y = m.add_var(0.0, 10.0, 1.0, "y");
        m.add_con(&[(x, 1.0)], Cmp::Eq, 4.0);
        m.add_con(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 6.0);
        let PresolveOutcome::Reduced(p) = presolve(&m) else { panic!("reduced") };
        assert_eq!(p.vars_removed(), 1);
        assert_eq!(p.rows_removed(), 2);
        let sol = p.solve().unwrap();
        assert!((sol.values[x] - 4.0).abs() < 1e-9);
        assert!((sol.values[y] - 2.0).abs() < 1e-9);
        assert!((sol.objective - 6.0).abs() < 1e-8);
    }

    #[test]
    fn fully_presolved_model() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 10.0, 2.0, "x");
        m.add_con(&[(x, 1.0)], Cmp::Eq, 3.0);
        let PresolveOutcome::Reduced(p) = presolve(&m) else { panic!("reduced") };
        assert_eq!(p.model.num_vars(), 0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-12);
        assert!((sol.values[x] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn presolved_objective_matches_direct_solve() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let n = 2 + rng.gen_range(0..6);
            let mut m = Model::new(Sense::Minimize);
            let vars: Vec<_> = (0..n)
                .map(|j| {
                    // a third of the variables are fixed
                    let l = rng.gen_range(-3.0..3.0);
                    let u = if rng.gen_bool(0.3) { l } else { l + rng.gen_range(0.1..5.0) };
                    m.add_var(l, u, rng.gen_range(-2.0..2.0), &format!("v{j}"))
                })
                .collect();
            for _ in 0..rng.gen_range(1..5) {
                let singleton = rng.gen_bool(0.4);
                let mut terms = Vec::new();
                if singleton {
                    terms.push((vars[rng.gen_range(0..n)], rng.gen_range(0.5..2.0)));
                } else {
                    for &v in &vars {
                        if rng.gen_bool(0.6) {
                            terms.push((v, rng.gen_range(-2.0..2.0)));
                        }
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                // rhs around a feasible midpoint
                let mid: f64 = terms
                    .iter()
                    .map(|&(v, c)| {
                        let (l, u) = m.var_bounds(v);
                        c * 0.5 * (l + u.min(l + 10.0))
                    })
                    .sum();
                m.add_con(&terms, Cmp::Le, mid + rng.gen_range(0.0..3.0));
            }
            let direct = m.solve();
            let pres = match presolve(&m) {
                PresolveOutcome::Reduced(p) => p.solve(),
                PresolveOutcome::Infeasible(_) => Err(Status::Infeasible),
            };
            match (direct, pres) {
                (Ok(a), Ok(b)) => assert!(
                    (a.objective - b.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
                    "direct {} vs presolved {}",
                    a.objective,
                    b.objective
                ),
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("divergent outcomes: {a:?} vs {b:?}"),
            }
        }
    }
}
