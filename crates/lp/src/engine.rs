//! Pluggable basis engines for the revised simplex.
//!
//! The simplex driver is generic over a [`BasisEngine`] supplying FTRAN
//! (`B d = a_q`), BTRAN (`Bᵀ y = c_B`) and a rank-one basis update. Two
//! engines are provided:
//!
//! * [`DenseEngine`] — maintains an explicit dense `B⁻¹`, updated by
//!   product-form pivoting. `O(m²)` per iteration; the reference
//!   implementation used for cross-checking and small models.
//! * [`SparseEngine`] — sparse LU factors of a reference basis plus a
//!   product-form-of-the-inverse eta file; refactorises periodically. This is
//!   the production path for scenario-tree LPs.

use crate::lu::{LuFactors, Singular};
use crate::matrix::Csc;
use crate::PIVOT_TOL;

/// Abstraction over the factorised simplex basis.
pub trait BasisEngine {
    /// (Re)factorise the basis `B = A[:, basis]`.
    fn refactor(&mut self, a: &Csc, basis: &[usize]) -> Result<(), Singular>;
    /// Solve `B x = rhs` in place.
    fn ftran(&mut self, rhs: &mut [f64]);
    /// Solve `Bᵀ x = rhs` in place.
    fn btran(&mut self, rhs: &mut [f64]);
    /// Record the pivot replacing basis position `r`, given `d = B⁻¹ a_q`.
    /// Returns `Err(())` when the engine wants a refactorisation instead
    /// (tiny pivot or eta file too long).
    fn update(&mut self, r: usize, d: &[f64]) -> Result<(), ()>;
    /// Rank-one updates applied since the last refactorisation.
    fn updates(&self) -> usize;
    /// Non-zeros in the current factorisation (telemetry; 0 when unknown).
    fn factor_nnz(&self) -> usize {
        0
    }
}

/// Reference engine holding an explicit dense inverse.
#[derive(Debug, Default)]
pub struct DenseEngine {
    m: usize,
    /// Row-major `B⁻¹`.
    binv: Vec<f64>,
    updates: usize,
    work: Vec<f64>,
}

impl DenseEngine {
    pub fn new() -> Self {
        Self::default()
    }
}

impl BasisEngine for DenseEngine {
    fn refactor(&mut self, a: &Csc, basis: &[usize]) -> Result<(), Singular> {
        let m = a.nrows();
        self.m = m;
        self.updates = 0;
        // Gauss-Jordan inversion of B with partial pivoting.
        // aug = [B | I], row-major, 2m columns.
        let w = 2 * m;
        let mut aug = vec![0.0f64; m * w];
        for (k, &j) in basis.iter().enumerate() {
            for (i, v) in a.col_iter(j) {
                aug[i * w + k] = v;
            }
        }
        for i in 0..m {
            aug[i * w + m + i] = 1.0;
        }
        for col in 0..m {
            // pivot search
            let mut piv = col;
            let mut best = aug[col * w + col].abs();
            for r in col + 1..m {
                let t = aug[r * w + col].abs();
                if t > best {
                    best = t;
                    piv = r;
                }
            }
            if best <= PIVOT_TOL {
                return Err(Singular { at_column: col });
            }
            if piv != col {
                for c in 0..w {
                    aug.swap(col * w + c, piv * w + c);
                }
            }
            let pv = aug[col * w + col];
            for c in 0..w {
                aug[col * w + c] /= pv;
            }
            for r in 0..m {
                if r != col {
                    let f = aug[r * w + col];
                    if f != 0.0 {
                        for c in 0..w {
                            aug[r * w + c] -= f * aug[col * w + c];
                        }
                    }
                }
            }
        }
        self.binv.clear();
        self.binv.resize(m * m, 0.0);
        for r in 0..m {
            for c in 0..m {
                self.binv[r * m + c] = aug[r * w + m + c];
            }
        }
        Ok(())
    }

    fn ftran(&mut self, rhs: &mut [f64]) {
        let m = self.m;
        self.work.clear();
        self.work.resize(m, 0.0);
        for r in 0..m {
            let mut acc = 0.0;
            let row = &self.binv[r * m..(r + 1) * m];
            for c in 0..m {
                acc += row[c] * rhs[c];
            }
            self.work[r] = acc;
        }
        rhs.copy_from_slice(&self.work);
    }

    fn btran(&mut self, rhs: &mut [f64]) {
        let m = self.m;
        self.work.clear();
        self.work.resize(m, 0.0);
        for r in 0..m {
            let v = rhs[r];
            if v != 0.0 {
                let row = &self.binv[r * m..(r + 1) * m];
                for c in 0..m {
                    self.work[c] += v * row[c];
                }
            }
        }
        rhs.copy_from_slice(&self.work);
    }

    fn update(&mut self, r: usize, d: &[f64]) -> Result<(), ()> {
        let m = self.m;
        let dr = d[r];
        if dr.abs() <= PIVOT_TOL {
            return Err(());
        }
        // B⁻¹ ← E⁻¹ B⁻¹ with eta column derived from d.
        let inv = 1.0 / dr;
        // scale pivot row
        for c in 0..m {
            self.binv[r * m + c] *= inv;
        }
        for i in 0..m {
            if i != r {
                let f = d[i];
                if f != 0.0 {
                    for c in 0..m {
                        self.binv[i * m + c] -= f * self.binv[r * m + c];
                    }
                }
            }
        }
        self.updates += 1;
        Ok(())
    }

    fn updates(&self) -> usize {
        self.updates
    }

    fn factor_nnz(&self) -> usize {
        self.binv.len()
    }
}

/// One product-form eta: pivot row plus the sparse entries of `d`.
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    dr: f64,
    idx: Vec<usize>,
    val: Vec<f64>,
}

/// Production engine: sparse LU + PFI eta file.
#[derive(Debug)]
pub struct SparseEngine {
    lu: Option<LuFactors>,
    etas: Vec<Eta>,
    max_etas: usize,
    work: Vec<f64>,
}

impl Default for SparseEngine {
    fn default() -> Self {
        Self { lu: None, etas: Vec::new(), max_etas: 64, work: Vec::new() }
    }
}

impl SparseEngine {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_max_etas(max_etas: usize) -> Self {
        Self { max_etas, ..Self::default() }
    }
}

impl BasisEngine for SparseEngine {
    fn refactor(&mut self, a: &Csc, basis: &[usize]) -> Result<(), Singular> {
        self.lu = Some(LuFactors::factorize(a, basis)?);
        self.etas.clear();
        Ok(())
    }

    fn ftran(&mut self, rhs: &mut [f64]) {
        let lu = self.lu.as_ref().expect("refactor before ftran");
        lu.solve(rhs, &mut self.work);
        for eta in &self.etas {
            let t = rhs[eta.r] / eta.dr;
            if t != 0.0 {
                for (&i, &v) in eta.idx.iter().zip(&eta.val) {
                    rhs[i] -= v * t;
                }
            }
            rhs[eta.r] = t;
        }
    }

    fn btran(&mut self, rhs: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut acc = rhs[eta.r];
            for (&i, &v) in eta.idx.iter().zip(&eta.val) {
                acc -= v * rhs[i];
            }
            rhs[eta.r] = acc / eta.dr;
        }
        let lu = self.lu.as_ref().expect("refactor before btran");
        lu.solve_transpose(rhs, &mut self.work);
    }

    fn update(&mut self, r: usize, d: &[f64]) -> Result<(), ()> {
        if self.etas.len() >= self.max_etas {
            return Err(());
        }
        let dr = d[r];
        if dr.abs() <= 1e-9 {
            return Err(());
        }
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (i, &v) in d.iter().enumerate() {
            if i != r && v != 0.0 {
                idx.push(i);
                val.push(v);
            }
        }
        self.etas.push(Eta { r, dr, idx, val });
        Ok(())
    }

    fn updates(&self) -> usize {
        self.etas.len()
    }

    fn factor_nnz(&self) -> usize {
        self.lu.as_ref().map_or(0, LuFactors::nnz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CscBuilder;
    use rand::{Rng, SeedableRng};

    fn random_system(rng: &mut impl Rng, m: usize, extra: usize) -> (Csc, Vec<usize>) {
        // Build an m×(m+extra) matrix whose first m columns form a
        // well-conditioned basis (diagonally dominated).
        let ncols = m + extra;
        let mut b = CscBuilder::new(m, ncols);
        for j in 0..ncols {
            for i in 0..m {
                if (i == j && j < m) || rng.gen_bool(0.25) {
                    let mut v = rng.gen_range(-1.0..1.0f64);
                    if i == j && j < m {
                        v += 3.0;
                    }
                    b.push(i, j, v);
                }
            }
        }
        (b.build(), (0..m).collect())
    }

    /// Both engines must agree with each other through a sequence of
    /// refactor / ftran / btran / update operations.
    #[test]
    fn engines_agree_through_updates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _trial in 0..20 {
            let m = 2 + rng.gen_range(0..12);
            let (a, mut basis) = random_system(&mut rng, m, m);
            let mut de = DenseEngine::new();
            let mut se = SparseEngine::new();
            if de.refactor(&a, &basis).is_err() {
                continue;
            }
            se.refactor(&a, &basis).unwrap();
            for _step in 0..8 {
                // random ftran/btran agreement check
                let rhs: Vec<f64> = (0..m).map(|_| rng.gen_range(-2.0..2.0f64)).collect();
                let mut f1 = rhs.clone();
                let mut f2 = rhs.clone();
                de.ftran(&mut f1);
                se.ftran(&mut f2);
                for i in 0..m {
                    assert!((f1[i] - f2[i]).abs() < 1e-6, "ftran disagree: {f1:?} {f2:?}");
                }
                let mut b1 = rhs.clone();
                let mut b2 = rhs.clone();
                de.btran(&mut b1);
                se.btran(&mut b2);
                for i in 0..m {
                    assert!((b1[i] - b2[i]).abs() < 1e-6, "btran disagree");
                }
                // random basis swap: bring in a non-basic column
                let q = m + rng.gen_range(0..(a.ncols() - m));
                let mut d = vec![0.0; m];
                for (i, v) in a.col_iter(q) {
                    d[i] = v;
                }
                de.ftran(&mut d);
                // pick pivot row with largest |d|
                let (r, dr) = d
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.abs().partial_cmp(&y.1.abs()).unwrap())
                    .map(|(i, v)| (i, *v))
                    .unwrap();
                if dr.abs() < 1e-3 {
                    continue;
                }
                if de.update(r, &d).is_err() || se.update(r, &d).is_err() {
                    basis[r] = q;
                    de.refactor(&a, &basis).unwrap();
                    se.refactor(&a, &basis).unwrap();
                } else {
                    basis[r] = q;
                }
            }
        }
    }

    #[test]
    fn dense_engine_solves_identity() {
        let mut b = CscBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        let a = b.build();
        let mut e = DenseEngine::new();
        e.refactor(&a, &[0, 1]).unwrap();
        let mut v = vec![3.0, 4.0];
        e.ftran(&mut v);
        assert_eq!(v, vec![3.0, 4.0]);
    }

    #[test]
    fn sparse_engine_eta_limit_forces_refactor() {
        let mut b = CscBuilder::new(1, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 2.0);
        let a = b.build();
        let mut e = SparseEngine::with_max_etas(1);
        e.refactor(&a, &[0]).unwrap();
        assert!(e.update(0, &[2.0]).is_ok());
        assert!(e.update(0, &[0.5]).is_err(), "second update must request refactor");
    }
}
