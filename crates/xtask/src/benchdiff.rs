//! `cargo run -p xtask -- benchdiff <baseline.json> <current.json>` — the
//! bench regression gate.
//!
//! Both files are `results/BENCH_*.json` arrays (see `rrp-bench`'s
//! `results` module). Every instance present in the baseline must exist in
//! the current run (losing coverage fails) and must not be slower than
//! `baseline * (1 + tol)` (default tolerance 10%, `--tol 0.10`). Instances
//! only in the current run are reported but never fail — new benches are
//! welcome. Sub-millisecond baselines are compared with a 0.5 ms absolute
//! floor on the allowance: at that scale scheduler noise dwarfs any real
//! regression a ratio would catch.
//!
//! The single-file mode `benchdiff <results.json> --assert-ratio A:B
//! [--max-ratio <r>]` gates one instance against another from the *same*
//! run — e.g. the profiler-overhead gate asserts
//! `engine_throughput/cold_prof97/4` ≤ 1.02 × `…/cold_64req/4`. Comparing
//! within one run keeps the machine, load and build identical, so the
//! ratio isolates exactly the configuration delta.

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

use serde_json::Value;

/// Absolute slack added to the allowance for tiny baselines (ms).
const NOISE_FLOOR_MS: f64 = 0.5;

pub fn run(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut tol = 0.10;
    let mut ratio_pair: Option<(String, String)> = None;
    let mut max_ratio = 1.02;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tol = t,
                _ => return usage("--tol needs a non-negative fraction (e.g. 0.10)"),
            },
            "--assert-ratio" => match it.next().and_then(|v| v.split_once(':')) {
                Some((a, b)) if !a.is_empty() && !b.is_empty() => {
                    ratio_pair = Some((a.to_string(), b.to_string()));
                }
                _ => return usage("--assert-ratio needs <instance>:<baseline-instance>"),
            },
            "--max-ratio" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r > 0.0 => max_ratio = r,
                _ => return usage("--max-ratio needs a positive factor (e.g. 1.02)"),
            },
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            file => files.push(file.to_string()),
        }
    }

    if let Some((inst, base)) = ratio_pair {
        let [path] = files.as_slice() else {
            return usage("--assert-ratio takes exactly one results file");
        };
        let records = match load(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("benchdiff: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match assert_ratio(&records, &inst, &base, max_ratio) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("benchdiff: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let [baseline_path, current_path] = files.as_slice() else {
        return usage("need exactly two files: <baseline.json> <current.json>");
    };

    let baseline = match load(baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchdiff: {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let current = match load(current_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchdiff: {current_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (report, failures) = diff(&baseline, &current, tol);
    print!("{report}");
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("benchdiff: {failures} regression(s) beyond {:.0}%", tol * 100.0);
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("benchdiff: {msg}");
    eprintln!(
        "usage: cargo run -p xtask -- benchdiff <baseline.json> <current.json> [--tol <frac>]\n       cargo run -p xtask -- benchdiff <results.json> --assert-ratio <inst>:<base> [--max-ratio <r>]"
    );
    ExitCode::from(2)
}

/// Single-file ratio gate: `inst` must run within `max_ratio` of `base`
/// (same file, same machine, same build). Sub-noise-floor baselines pass
/// unconditionally — a ratio of two noise measurements gates nothing —
/// and the gate grants the same absolute [`NOISE_FLOOR_MS`] allowance as
/// the two-file diff: a pair whose difference from the allowed bound is
/// under the floor is timer jitter, not a regression.
fn assert_ratio(
    records: &[(String, f64)],
    inst: &str,
    base: &str,
    max_ratio: f64,
) -> Result<String, String> {
    let find = |name: &str| {
        records
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ms)| *ms)
            .ok_or_else(|| format!("instance `{name}` not in the results file"))
    };
    let inst_ms = find(inst)?;
    let base_ms = find(base)?;
    if base_ms <= NOISE_FLOOR_MS {
        return Ok(format!(
            "{inst} {inst_ms:.3} ms vs {base} {base_ms:.3} ms — baseline under the \
             {NOISE_FLOOR_MS} ms noise floor, ratio not meaningful: ok\n"
        ));
    }
    let ratio = inst_ms / base_ms;
    let report = format!(
        "{inst} {inst_ms:.3} ms / {base} {base_ms:.3} ms = {ratio:.4} (max {max_ratio:.4})\n"
    );
    if ratio > max_ratio && inst_ms - base_ms * max_ratio <= NOISE_FLOOR_MS {
        return Ok(format!(
            "{report}over max-ratio by {:.3} ms — within the {NOISE_FLOOR_MS} ms noise floor: ok\n",
            inst_ms - base_ms * max_ratio
        ));
    }
    if ratio > max_ratio {
        return Err(format!(
            "{report}benchdiff: ratio {ratio:.4} exceeds --max-ratio {max_ratio:.4} \
             ({:+.2}% overhead allowed, got {:+.2}%)",
            (max_ratio - 1.0) * 100.0,
            (ratio - 1.0) * 100.0
        ));
    }
    Ok(format!("{report}ok\n"))
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let src = fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_records(&src)
}

/// Parse a BENCH json array into `(instance, wall_ms)` pairs.
fn parse_records(src: &str) -> Result<Vec<(String, f64)>, String> {
    let v: Value = serde_json::from_str(src).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let Some(arr) = v.as_array() else {
        return Err("expected a JSON array of records".to_string());
    };
    let mut out = Vec::with_capacity(arr.len());
    for (i, rec) in arr.iter().enumerate() {
        let (Some(instance), Some(wall_ms)) = (
            rec.get("instance").and_then(Value::as_str),
            rec.get("wall_ms").and_then(Value::as_f64),
        ) else {
            return Err(format!("record {i}: missing instance or wall_ms"));
        };
        out.push((instance.to_string(), wall_ms));
    }
    Ok(out)
}

/// Render the comparison table and count failures (regressions + coverage
/// losses).
fn diff(baseline: &[(String, f64)], current: &[(String, f64)], tol: f64) -> (String, usize) {
    let mut out = String::new();
    let mut failures = 0;
    let _ = writeln!(
        out,
        "{:<44} {:>12} {:>12} {:>8}  verdict",
        "instance", "baseline ms", "current ms", "Δ%"
    );
    for (instance, base_ms) in baseline {
        match current.iter().find(|(name, _)| name == instance) {
            Some((_, cur_ms)) => {
                let delta = (cur_ms - base_ms) / base_ms * 100.0;
                let allowance = base_ms * tol + NOISE_FLOOR_MS;
                let regressed = *cur_ms > base_ms + allowance;
                if regressed {
                    failures += 1;
                }
                let _ = writeln!(
                    out,
                    "{instance:<44} {base_ms:>12.3} {cur_ms:>12.3} {delta:>+7.1}%  {}",
                    if regressed { "REGRESSED" } else { "ok" }
                );
            }
            None => {
                failures += 1;
                let _ =
                    writeln!(out, "{instance:<44} {base_ms:>12.3} {:>12} {:>8}  MISSING", "-", "-");
            }
        }
    }
    for (instance, cur_ms) in current {
        if !baseline.iter().any(|(name, _)| name == instance) {
            let _ = writeln!(out, "{instance:<44} {:>12} {cur_ms:>12.3} {:>8}  new", "-", "-");
        }
    }
    (out, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn within_tolerance_passes() {
        let base = recs(&[("a/1", 100.0), ("a/2", 200.0)]);
        let cur = recs(&[("a/1", 105.0), ("a/2", 195.0)]);
        let (report, failures) = diff(&base, &cur, 0.10);
        assert_eq!(failures, 0, "{report}");
        assert!(report.contains("ok"), "{report}");
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = recs(&[("a/1", 100.0)]);
        let cur = recs(&[("a/1", 112.0)]);
        let (report, failures) = diff(&base, &cur, 0.10);
        assert_eq!(failures, 1, "{report}");
        assert!(report.contains("REGRESSED"), "{report}");
    }

    #[test]
    fn missing_instance_fails_new_instance_does_not() {
        let base = recs(&[("a/1", 100.0)]);
        let cur = recs(&[("b/1", 50.0)]);
        let (report, failures) = diff(&base, &cur, 0.10);
        assert_eq!(failures, 1, "{report}");
        assert!(report.contains("MISSING"), "{report}");
        assert!(report.contains("new"), "{report}");
    }

    #[test]
    fn sub_millisecond_baselines_get_the_noise_floor() {
        // 0.5 ms baseline doubling to 0.9 ms is noise, not a regression
        let base = recs(&[("warm", 0.5)]);
        let cur = recs(&[("warm", 0.9)]);
        let (report, failures) = diff(&base, &cur, 0.10);
        assert_eq!(failures, 0, "{report}");
    }

    #[test]
    fn ratio_gate_passes_under_and_fails_over() {
        let recs = recs(&[("e/cold_prof97/4", 345.0), ("e/cold_64req/4", 342.0)]);
        let ok = assert_ratio(&recs, "e/cold_prof97/4", "e/cold_64req/4", 1.02).unwrap();
        assert!(ok.contains("ok"), "{ok}");
        let err = assert_ratio(&recs, "e/cold_prof97/4", "e/cold_64req/4", 1.005).unwrap_err();
        assert!(err.contains("exceeds --max-ratio"), "{err}");
    }

    #[test]
    fn ratio_gate_grants_the_absolute_noise_allowance() {
        // a parity gate (max 1.0) with the pair 0.3 ms apart: timer jitter,
        // not a regression — same allowance the two-file diff grants
        let near = recs(&[("replan/batched", 100.3), ("replan/unbatched", 100.0)]);
        let ok = assert_ratio(&near, "replan/batched", "replan/unbatched", 1.0).unwrap();
        assert!(ok.contains("noise floor"), "{ok}");
        // 1.3 ms over the allowed bound is past the floor: still an error
        let far = recs(&[("replan/batched", 101.3), ("replan/unbatched", 100.0)]);
        let err = assert_ratio(&far, "replan/batched", "replan/unbatched", 1.0).unwrap_err();
        assert!(err.contains("exceeds --max-ratio"), "{err}");
    }

    #[test]
    fn ratio_gate_reports_missing_instances() {
        let recs = recs(&[("a", 10.0)]);
        let err = assert_ratio(&recs, "a", "b", 1.02).unwrap_err();
        assert!(err.contains("`b` not in the results file"), "{err}");
    }

    #[test]
    fn ratio_gate_skips_noise_floor_baselines() {
        // two sub-noise measurements: a 3× "overhead" of nothing passes
        let recs = recs(&[("warm_prof", 0.9), ("warm", 0.3)]);
        let ok = assert_ratio(&recs, "warm_prof", "warm", 1.02).unwrap();
        assert!(ok.contains("noise floor"), "{ok}");
    }

    #[test]
    fn records_parse_from_bench_json() {
        let src = r#"[
  {"instance":"engine_throughput/cold_64req/4","wall_ms":322.7,"nodes":0,"objective":null}
]"#;
        let recs = parse_records(src).expect("parses");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].0, "engine_throughput/cold_64req/4");
        assert!((recs[0].1 - 322.7).abs() < 1e-9);
    }
}
