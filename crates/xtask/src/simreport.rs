//! `cargo run -p xtask -- simreport <report.json>` — the closed-loop
//! simulation SLO gate.
//!
//! The input is the JSON written by `cargo run --example spot_sim --
//! --json <path>` (an `rrp-sim` `SimReport`): one cell per (bid policy ×
//! recovery policy) pair over a fixed-seed trace. The command renders an
//! aligned summary and, with `--assert-realised-ratio <ceiling>`, turns
//! into a CI assertion:
//!
//! * every cell's realised/planned ratio must be finite and at most the
//!   ceiling (the interruption premium stays bounded), and
//! * no cell may strand demand (`unrecovered_gb` must be ~zero) or miss a
//!   plan deadline.

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

use serde_json::Value;

/// Unrecovered demand below this is float noise, not a stranded shipment.
const UNRECOVERED_TOL_GB: f64 = 1e-9;

pub fn run(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut ceiling = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--assert-realised-ratio" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(c) if c >= 1.0 => ceiling = Some(c),
                _ => return usage("--assert-realised-ratio needs a ratio >= 1.0 (e.g. 1.5)"),
            },
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            file if path.is_none() => path = Some(file.to_string()),
            _ => return usage("need exactly one <report.json>"),
        }
    }
    let Some(path) = path else {
        return usage("need a <report.json> (write one with spot_sim --json)");
    };

    let cells = match load(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("simreport: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (report, failures) = check(&cells, ceiling);
    print!("{report}");
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("simreport: {failures} cell(s) violate the SLO gate");
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("simreport: {msg}");
    eprintln!(
        "usage: cargo run -p xtask -- simreport <report.json> [--assert-realised-ratio <ceiling>]"
    );
    ExitCode::from(2)
}

/// One matrix cell, as much of it as the gate needs.
#[derive(Debug, Clone)]
struct Cell {
    bid: String,
    recovery: String,
    ratio: f64,
    interruptions: u64,
    violated_slots: u64,
    unrecovered_gb: f64,
    deadline_misses: u64,
}

fn load(path: &str) -> Result<Vec<Cell>, String> {
    let src = fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_cells(&src)
}

fn parse_cells(src: &str) -> Result<Vec<Cell>, String> {
    let v: Value = serde_json::from_str(src).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let Some(arr) = v.get("cells").and_then(Value::as_array) else {
        return Err("expected a SimReport object with a `cells` array".to_string());
    };
    if arr.is_empty() {
        return Err("report has no cells".to_string());
    }
    let mut out = Vec::with_capacity(arr.len());
    for (i, rec) in arr.iter().enumerate() {
        let (Some(bid), Some(recovery), Some(ratio), Some(unrecovered_gb)) = (
            rec.get("bid").and_then(Value::as_str),
            rec.get("recovery").and_then(Value::as_str),
            rec.get("ratio").and_then(Value::as_f64),
            rec.get("unrecovered_gb").and_then(Value::as_f64),
        ) else {
            return Err(format!("cell {i}: missing bid/recovery/ratio/unrecovered_gb"));
        };
        let count = |key: &str| rec.get(key).and_then(Value::as_u64).unwrap_or(0);
        out.push(Cell {
            bid: bid.to_string(),
            recovery: recovery.to_string(),
            ratio,
            interruptions: count("interruptions"),
            violated_slots: count("violated_slots"),
            unrecovered_gb,
            deadline_misses: count("deadline_misses"),
        });
    }
    Ok(out)
}

/// Render the gate table and count violating cells. Without a ceiling the
/// ratio column is informational and only stranded demand/deadline misses
/// fail.
fn check(cells: &[Cell], ceiling: Option<f64>) -> (String, usize) {
    let mut out = String::new();
    let mut failures = 0;
    let _ = writeln!(
        out,
        "{:<10} {:<11} {:>7} {:>5} {:>5} {:>9} {:>5}  verdict",
        "bid", "recovery", "ratio", "intr", "viol", "unrec gb", "miss"
    );
    for c in cells {
        let mut faults = Vec::new();
        if let Some(max) = ceiling {
            if !c.ratio.is_finite() || c.ratio > max {
                faults.push(format!("ratio>{max}"));
            }
        }
        if c.unrecovered_gb.is_nan() || c.unrecovered_gb.abs() > UNRECOVERED_TOL_GB {
            faults.push("unrecovered".to_string());
        }
        if c.deadline_misses > 0 {
            faults.push("deadline".to_string());
        }
        if !faults.is_empty() {
            failures += 1;
        }
        let verdict = if faults.is_empty() { "ok".to_string() } else { faults.join(",") };
        let _ = writeln!(
            out,
            "{:<10} {:<11} {:>7.3} {:>5} {:>5} {:>9.4} {:>5}  {verdict}",
            c.bid,
            c.recovery,
            c.ratio,
            c.interruptions,
            c.violated_slots,
            c.unrecovered_gb,
            c.deadline_misses
        );
    }
    if let Some(max) = ceiling {
        let worst = cells.iter().map(|c| c.ratio).fold(f64::NEG_INFINITY, f64::max);
        let _ = writeln!(out, "worst realised/planned ratio {worst:.4} (ceiling {max})");
    }
    (out, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(bid: &str, ratio: f64, unrec: f64, miss: u64) -> Cell {
        Cell {
            bid: bid.to_string(),
            recovery: "failover".to_string(),
            ratio,
            interruptions: 1,
            violated_slots: 0,
            unrecovered_gb: unrec,
            deadline_misses: miss,
        }
    }

    #[test]
    fn clean_report_passes_with_ceiling() {
        let cells = [cell("static", 1.24, 0.0, 0), cell("feedback", 1.04, 0.0, 0)];
        let (report, failures) = check(&cells, Some(1.5));
        assert_eq!(failures, 0, "{report}");
        assert!(report.contains("worst realised/planned ratio 1.2400"), "{report}");
    }

    #[test]
    fn ratio_above_ceiling_fails() {
        let cells = [cell("static", 1.8, 0.0, 0)];
        let (report, failures) = check(&cells, Some(1.5));
        assert_eq!(failures, 1, "{report}");
        assert!(report.contains("ratio>1.5"), "{report}");
    }

    #[test]
    fn infinite_ratio_fails_under_ceiling() {
        let cells = [cell("static", f64::INFINITY, 0.0, 0)];
        let (_, failures) = check(&cells, Some(1.5));
        assert_eq!(failures, 1);
    }

    #[test]
    fn stranded_demand_fails_even_without_ceiling() {
        let cells = [cell("static", 1.1, 0.35, 0)];
        let (report, failures) = check(&cells, None);
        assert_eq!(failures, 1, "{report}");
        assert!(report.contains("unrecovered"), "{report}");
    }

    #[test]
    fn deadline_misses_fail() {
        let cells = [cell("static", 1.1, 0.0, 2)];
        let (_, failures) = check(&cells, None);
        assert_eq!(failures, 1);
    }

    #[test]
    fn cells_parse_from_sim_report_json() {
        let src = r#"{"master_seed":1,"class":"c1.medium","slots":8,"horizon":3,"cells":[
            {"bid":"static","recovery":"failover","planned":1.0,"realised":1.2,"ratio":1.2,
             "recovery_overhead":0.0,"interruptions":2,"replans":4,"violated_slots":0,
             "unmet_demand_gb":0.0,"unrecovered_gb":0.0,"deadline_misses":0}]}"#;
        let cells = parse_cells(src).expect("parses");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].bid, "static");
        assert_eq!(cells[0].recovery, "failover");
        assert!((cells[0].ratio - 1.2).abs() < 1e-12);
        assert_eq!(cells[0].interruptions, 2);
    }

    #[test]
    fn missing_cells_is_an_error() {
        assert!(parse_cells(r#"{"master_seed":1}"#).is_err());
        assert!(parse_cells(r#"{"cells":[]}"#).is_err());
    }
}
