//! `cargo run -p xtask -- watch <addr>` — a live terminal dashboard over a
//! planning engine's `/metrics` endpoint.
//!
//! Polls the Prometheus text exposition once per interval (default 1 s),
//! parses it with `rrp_obs::text::parse`, and repaints one screen:
//! throughput (completed/s, with a sparkline of its history), queue depth
//! against its high-water mark, cache hit rate, the degradation-rung
//! distribution as bars, p50/p99 request latency, gap-at-timeout, the
//! busiest tenants, and the `/readyz` verdict.
//!
//! Exits cleanly on Ctrl-C (no terminal modes are changed — the default
//! SIGINT disposition is already clean). Transient scrape failures —
//! a refused connect, a 5xx, a torn body mid-restart — are retried with
//! exponential backoff instead of killing the watch; only
//! [`MAX_CONSECUTIVE_FAILURES`] misses in a row end it (exit 0 when a
//! previously reachable server went away — engine shutdown ends the
//! watch, it does not fail it — exit 1 when it never answered).
//! `--frames <n>` renders a fixed number of frames and exits — the
//! CI/scripting mode. `--interval-ms <n>` adjusts the poll rate.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use rrp_obs::text::{parse, Sample};

/// Sparkline glyphs, low to high (same palette as the trace report).
const BARS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Maximum sparkline / bar width in glyphs.
const WIDTH: usize = 48;
/// History points kept for sparklines.
const HISTORY: usize = WIDTH;
/// Scrape failures in a row before the watch gives up.
const MAX_CONSECUTIVE_FAILURES: u32 = 5;
/// Backoff ceiling between retries.
const MAX_BACKOFF: Duration = Duration::from_secs(10);

pub fn run(args: &[String]) -> ExitCode {
    let mut addr = None;
    let mut interval = Duration::from_millis(1000);
    let mut frames: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => interval = Duration::from_millis(ms.max(50)),
                None => return usage("--interval-ms needs an integer argument"),
            },
            "--frames" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => frames = Some(n),
                None => return usage("--frames needs an integer argument"),
            },
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            a => {
                if addr.replace(a.to_string()).is_some() {
                    return usage("more than one address given");
                }
            }
        }
    }
    let Some(addr) = addr else {
        return usage("no address given (e.g. 127.0.0.1:9184)");
    };

    let mut state = WatchState::default();
    let mut frame: u64 = 0;
    let mut failures: u32 = 0;
    loop {
        let t0 = Instant::now();
        // a failed poll is transient until proven terminal: engines
        // restart, scrapes race shutdowns, CI starts the watcher before
        // the server — so back off and retry instead of dying on the
        // first miss
        let mut failure: Option<String> = None;
        match http_get(&addr, "/metrics") {
            Some((200, body)) => match parse(&body) {
                Ok(samples) => {
                    failures = 0;
                    let ready = http_get(&addr, "/readyz");
                    frame += 1;
                    let screen = render(&addr, frame, interval, &samples, ready, &mut state);
                    // clear + home, then repaint — no raw mode, no alt screen
                    print!("\x1b[2J\x1b[H{screen}");
                    let _ = std::io::stdout().flush();
                }
                Err(e) => {
                    failure = Some(format!("{addr}/metrics returned an unparseable body: {e}"));
                }
            },
            Some((code, _)) => failure = Some(format!("{addr}/metrics answered HTTP {code}")),
            None => failure = Some(format!("cannot reach {addr}/metrics")),
        }
        if let Some(why) = failure {
            failures += 1;
            if failures >= MAX_CONSECUTIVE_FAILURES {
                if frame > 0 {
                    println!("\nwatch: {addr} went away after {frame} frame(s) — engine shut down");
                    return ExitCode::SUCCESS;
                }
                eprintln!("watch: {why}");
                eprintln!(
                    "       giving up after {MAX_CONSECUTIVE_FAILURES} attempts — is the engine serving?"
                );
                eprintln!("       (start one with: cargo run --example planning_service --release -- --serve-metrics {addr} --hold 60)");
                return ExitCode::FAILURE;
            }
            let delay = backoff_delay(failures, interval);
            eprintln!(
                "watch: {why} — retrying in {:.1}s ({failures}/{MAX_CONSECUTIVE_FAILURES})",
                delay.as_secs_f64()
            );
            std::thread::sleep(delay);
            continue;
        }
        if frames.is_some_and(|n| frame >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval.saturating_sub(t0.elapsed()));
    }
}

/// Exponential backoff for retry `attempt` (1-based): the poll interval
/// doubled per miss, clamped to [`MAX_BACKOFF`].
fn backoff_delay(attempt: u32, interval: Duration) -> Duration {
    let factor = 1u32 << attempt.saturating_sub(1).min(16);
    interval.saturating_mul(factor).min(MAX_BACKOFF)
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("watch: {msg}");
    eprintln!("usage: cargo run -p xtask -- watch <addr> [--interval-ms <n>] [--frames <n>]");
    ExitCode::from(2)
}

/// Cross-frame state: last counters for rate derivation plus sparkline
/// histories.
#[derive(Default)]
struct WatchState {
    last: Option<(Instant, f64)>,
    throughput: VecDeque<f64>,
    queue: VecDeque<f64>,
    /// One depth history per shard, indexed by shard id (sharded engines).
    shard_queues: Vec<VecDeque<f64>>,
}

/// Minimal HTTP/1.1 GET returning (status, body). `None` on any socket
/// error — connection refused after a successful frame means shutdown.
/// Shared with the `slo` subcommand for its live `/slo` scrape.
pub(crate) fn http_get(addr: &str, path: &str) -> Option<(u16, String)> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes()).ok()?;
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8(raw).ok()?;
    let (head, body) = text.split_once("\r\n\r\n")?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    Some((status, body.to_string()))
}

fn value(samples: &[Sample], name: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name && s.labels.is_empty()).map(|s| s.value)
}

fn labeled(samples: &[Sample], name: &str, key: &str, val: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name && s.label(key) == Some(val)).map(|s| s.value)
}

fn render(
    addr: &str,
    frame: u64,
    interval: Duration,
    samples: &[Sample],
    ready: Option<(u16, String)>,
    state: &mut WatchState,
) -> String {
    let mut out = String::with_capacity(2048);
    let completed = value(samples, "rrp_completed_total").unwrap_or(0.0);
    let now = Instant::now();
    let throughput = match state.last {
        Some((t, prev)) => {
            let dt = now.duration_since(t).as_secs_f64().max(1e-9);
            ((completed - prev) / dt).max(0.0)
        }
        None => 0.0,
    };
    state.last = Some((now, completed));
    push_history(&mut state.throughput, throughput);
    let queue = value(samples, "rrp_queue_depth").unwrap_or(0.0);
    push_history(&mut state.queue, queue);

    let _ = writeln!(
        out,
        "rrp watch — {addr}   frame {frame}   every {:.1}s   (Ctrl-C to quit)",
        interval.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  throughput  {throughput:>8.1} req/s   {} total   {}",
        completed as u64,
        sparkline(&state.throughput)
    );
    let high = value(samples, "rrp_queue_depth_high_water").unwrap_or(0.0);
    let _ = writeln!(
        out,
        "  queue       {:>8} deep      high-water {}   {}",
        queue as u64,
        high as u64,
        sparkline(&state.queue)
    );
    // per-shard queue panel (present only on sharded engines): one
    // sparkline per shard, so a single saturated shard is visible even
    // when the merged depth above looks healthy
    let mut shard_rows: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "rrp_shard_queue_depth" && s.label("shard").is_some())
        .collect();
    if !shard_rows.is_empty() {
        shard_rows.sort_by_key(|s| {
            s.label("shard").and_then(|v| v.parse::<usize>().ok()).unwrap_or(usize::MAX)
        });
        if state.shard_queues.len() < shard_rows.len() {
            state.shard_queues.resize_with(shard_rows.len(), VecDeque::new);
        }
        let _ = writeln!(out, "  shard queues:");
        for (i, s) in shard_rows.iter().enumerate() {
            let shard = s.label("shard").unwrap_or("?");
            push_history(&mut state.shard_queues[i], s.value);
            let hw =
                labeled(samples, "rrp_shard_queue_depth_high_water", "shard", shard).unwrap_or(0.0);
            let busy =
                labeled(samples, "rrp_shard_busy_rejections_total", "shard", shard).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "    shard {shard:<3} {:>6} deep   high-water {:<5} {:>6} busy   {}",
                s.value as u64,
                hw as u64,
                busy as u64,
                sparkline(&state.shard_queues[i])
            );
        }
    }
    let hit_rate = value(samples, "rrp_cache_hit_rate").unwrap_or(0.0);
    let entries = value(samples, "rrp_cache_entries").unwrap_or(0.0);
    let _ = writeln!(
        out,
        "  cache       {:>7.1}% hit rate  {} entries",
        hit_rate * 100.0,
        entries as u64
    );
    let p50 = labeled(samples, "rrp_request_latency_ms", "quantile", "0.5");
    let p99 = labeled(samples, "rrp_request_latency_ms", "quantile", "0.99");
    let _ = writeln!(
        out,
        "  latency     p50 {}   p99 {}",
        p50.map_or("-".to_string(), fmt_ms),
        p99.map_or("-".to_string(), fmt_ms)
    );
    let gap_n = value(samples, "rrp_milp_gap_at_timeout_count").unwrap_or(0.0);
    if gap_n > 0.0 {
        let g50 = labeled(samples, "rrp_milp_gap_at_timeout", "quantile", "0.5").unwrap_or(0.0);
        let g99 = labeled(samples, "rrp_milp_gap_at_timeout", "quantile", "0.99").unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  gap@timeout p50 {:.1}%   p99 {:.1}%   ({} budget-stopped solves)",
            g50 * 100.0,
            g99 * 100.0,
            gap_n as u64
        );
    }
    let dropped = value(samples, "rrp_trace_dropped_events_total").unwrap_or(0.0);
    if dropped > 0.0 {
        let _ = writeln!(out, "  dropped     {} trace events lost under pressure", dropped as u64);
    }

    // flight-recorder panel (present only on profiling engines)
    if let Some(sampled) = value(samples, "rrp_prof_samples_total") {
        let paths = value(samples, "rrp_prof_distinct_paths").unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  profiler    {:>8} samples   {} distinct span paths",
            sampled as u64, paths as u64
        );
    }
    if let Some(ring) = value(samples, "rrp_flight_ring_events") {
        let dumps = value(samples, "rrp_flight_dumps_total").unwrap_or(0.0);
        let evicted = value(samples, "rrp_flight_ring_dropped_total").unwrap_or(0.0);
        let cause = samples
            .iter()
            .find(|s| s.name == "rrp_flight_last_trigger" && s.value > 0.0)
            .and_then(|s| s.label("cause"))
            .unwrap_or("-");
        let _ = writeln!(
            out,
            "  flight      {:>8} ring events   {} dumps   last trigger {}{}",
            ring as u64,
            dumps as u64,
            cause,
            if evicted > 0.0 { format!("   ({} evicted)", evicted as u64) } else { String::new() }
        );
    }

    // SLO panel (present only when the engine runs an SLO engine)
    if let Some(alerts) = value(samples, "rrp_slo_alerts_total") {
        let tenants = value(samples, "rrp_slo_tenants").unwrap_or(0.0);
        let retained = value(samples, "rrp_slo_exemplars_retained_total").unwrap_or(0.0);
        let dropped = value(samples, "rrp_slo_exemplars_dropped_total").unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  slo         {:>8} tenants   {} alert(s)   {} exemplars retained ({} dropped)",
            tenants as u64, alerts as u64, retained as u64, dropped as u64
        );
        let worst_burn = samples
            .iter()
            .filter(|s| s.name == "rrp_slo_burn_rate")
            .max_by(|a, b| a.value.total_cmp(&b.value));
        if let Some(w) = worst_burn.filter(|w| w.value > 0.0) {
            let _ = writeln!(
                out,
                "    hottest burn    {}/{} over {} at {:.1}x budget",
                compact(w.label("tenant").unwrap_or("?")),
                w.label("objective").unwrap_or("?"),
                w.label("window").unwrap_or("?"),
                w.value
            );
        }
        let tightest = samples
            .iter()
            .filter(|s| s.name == "rrp_slo_budget_remaining")
            .min_by(|a, b| a.value.total_cmp(&b.value));
        if let Some(t) = tightest {
            let _ = writeln!(
                out,
                "    tightest budget {}/{} at {:.2} remaining",
                compact(t.label("tenant").unwrap_or("?")),
                t.label("objective").unwrap_or("?"),
                t.value
            );
        }
    }

    let _ = writeln!(out, "  rungs served:");
    let rungs = ["full", "deterministic", "dynamic-program", "on-demand-only"];
    let served: Vec<f64> = rungs
        .iter()
        .map(|r| labeled(samples, "rrp_level_served_total", "rung", r).unwrap_or(0.0))
        .collect();
    let max = served.iter().cloned().fold(0.0_f64, f64::max).max(1.0);
    for (rung, n) in rungs.iter().zip(&served) {
        let width = ((n / max) * WIDTH as f64).ceil() as usize;
        let bar: String = "█".repeat(if *n > 0.0 { width.max(1) } else { 0 });
        let _ = writeln!(out, "    {rung:<16} {bar} {}", *n as u64);
    }

    let mut tenants: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "rrp_requests_total" && s.label("tenant").is_some())
        .collect();
    if !tenants.is_empty() {
        tenants.sort_by(|a, b| b.value.total_cmp(&a.value));
        let _ = writeln!(out, "  busiest tenants:");
        for s in tenants.iter().take(5) {
            let tenant = s.label("tenant").unwrap_or("?");
            let misses =
                labeled(samples, "rrp_deadline_miss_total", "tenant", tenant).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "    {:<20} {:>6} requests   {} deadline misses",
                compact(tenant),
                s.value as u64,
                misses as u64
            );
        }
    }

    match ready {
        Some((200, detail)) => {
            let _ = writeln!(out, "  readyz      ready ({})", detail.trim());
        }
        Some((code, detail)) => {
            let _ = writeln!(out, "  readyz      NOT READY [{code}] ({})", detail.trim());
        }
        None => {
            let _ = writeln!(out, "  readyz      unreachable");
        }
    }
    out
}

fn push_history(h: &mut VecDeque<f64>, v: f64) {
    if h.len() == HISTORY {
        h.pop_front();
    }
    h.push_back(v);
}

fn sparkline(history: &VecDeque<f64>) -> String {
    let max = history.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return String::new();
    }
    history
        .iter()
        .map(|&v| {
            let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Truncate a tenant id to the table column, escaping nothing — the parser
/// already unescaped it, so control characters are replaced for display.
fn compact(tenant: &str) -> String {
    let clean: String =
        tenant.chars().map(|c| if c.is_control() { '·' } else { c }).take(20).collect();
    clean
}

fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.0} µs", ms * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_body() -> Vec<Sample> {
        parse(
            "rrp_completed_total 64\n\
             rrp_queue_depth 3\n\
             rrp_queue_depth_high_water 17\n\
             rrp_cache_hit_rate 0.5\n\
             rrp_cache_entries 12\n\
             rrp_trace_dropped_events_total 2\n\
             rrp_request_latency_ms{quantile=\"0.5\"} 12.5\n\
             rrp_request_latency_ms{quantile=\"0.99\"} 88.0\n\
             rrp_milp_gap_at_timeout_count 0\n\
             rrp_level_served_total{rung=\"full\"} 40\n\
             rrp_level_served_total{rung=\"deterministic\"} 20\n\
             rrp_level_served_total{rung=\"dynamic-program\"} 4\n\
             rrp_level_served_total{rung=\"on-demand-only\"} 0\n\
             rrp_shards 2\n\
             rrp_shard_queue_depth{shard=\"1\"} 9\n\
             rrp_shard_queue_depth{shard=\"0\"} 2\n\
             rrp_shard_queue_depth_high_water{shard=\"0\"} 4\n\
             rrp_shard_queue_depth_high_water{shard=\"1\"} 12\n\
             rrp_shard_busy_rejections_total{shard=\"1\"} 7\n\
             rrp_requests_total{tenant=\"acme\"} 50\n\
             rrp_requests_total{tenant=\"zephyr\"} 14\n\
             rrp_deadline_miss_total{tenant=\"acme\"} 1\n\
             rrp_prof_samples_total 4821\n\
             rrp_prof_distinct_paths 9\n\
             rrp_flight_ring_events 311\n\
             rrp_flight_dumps_total 1\n\
             rrp_flight_ring_dropped_total 0\n\
             rrp_flight_last_trigger{cause=\"deadline_miss_spike\"} 1\n\
             rrp_flight_last_trigger{cause=\"panic\"} 0\n\
             rrp_slo_tenants 2\n\
             rrp_slo_alerts_total 1\n\
             rrp_slo_exemplars_retained_total 3\n\
             rrp_slo_exemplars_dropped_total 61\n\
             rrp_slo_burn_rate{tenant=\"acme\",objective=\"deadline_miss\",window=\"5m\"} 99.9\n\
             rrp_slo_burn_rate{tenant=\"zephyr\",objective=\"latency\",window=\"1h\"} 0.2\n\
             rrp_slo_budget_remaining{tenant=\"acme\",objective=\"deadline_miss\"} -3.21\n\
             rrp_slo_budget_remaining{tenant=\"zephyr\",objective=\"latency\"} 0.98\n",
        )
        .expect("test body parses")
    }

    #[test]
    fn render_shows_every_section() {
        let samples = sample_body();
        let mut state = WatchState::default();
        // two frames so throughput has a delta
        let _ = render(
            "127.0.0.1:1",
            1,
            Duration::from_millis(100),
            &samples,
            Some((200, "queue depth 3\n".into())),
            &mut state,
        );
        let screen = render(
            "127.0.0.1:1",
            2,
            Duration::from_millis(100),
            &samples,
            Some((503, "queue depth 999 over high-water 128\n".into())),
            &mut state,
        );
        assert!(screen.contains("throughput"), "{screen}");
        assert!(screen.contains("high-water 17"), "{screen}");
        assert!(screen.contains("50.0% hit rate"), "{screen}");
        assert!(screen.contains("p50 12.5 ms"), "{screen}");
        assert!(screen.contains("full"), "{screen}");
        assert!(screen.contains("acme"), "{screen}");
        assert!(screen.contains("2 trace events lost"), "{screen}");
        assert!(screen.contains("NOT READY [503]"), "{screen}");
        assert!(screen.contains("shard queues:"), "{screen}");
        // rows come out ordered by shard id even though the scrape wasn't
        let s0 = screen.find("shard 0").expect("shard 0 row");
        let s1 = screen.find("shard 1").expect("shard 1 row");
        assert!(s0 < s1, "{screen}");
        assert!(screen.contains("high-water 12"), "{screen}");
        assert!(screen.contains("7 busy"), "{screen}");
        assert!(screen.contains("4821 samples"), "{screen}");
        assert!(screen.contains("311 ring events"), "{screen}");
        assert!(screen.contains("last trigger deadline_miss_spike"), "{screen}");
        assert!(screen.contains("2 tenants   1 alert(s)   3 exemplars retained"), "{screen}");
        assert!(screen.contains("hottest burn    acme/deadline_miss over 5m at 99.9x"), "{screen}");
        assert!(screen.contains("tightest budget acme/deadline_miss at -3.21"), "{screen}");
    }

    #[test]
    fn backoff_doubles_from_the_interval_and_caps() {
        let base = Duration::from_millis(500);
        assert_eq!(backoff_delay(1, base), Duration::from_millis(500));
        assert_eq!(backoff_delay(2, base), Duration::from_millis(1000));
        assert_eq!(backoff_delay(3, base), Duration::from_millis(2000));
        assert_eq!(backoff_delay(10, base), MAX_BACKOFF);
        // huge attempt counts do not overflow the shift
        assert_eq!(backoff_delay(u32::MAX, base), MAX_BACKOFF);
    }

    #[test]
    fn flight_panel_is_absent_without_prof_metrics() {
        let samples = parse("rrp_completed_total 4\n").expect("parses");
        let mut state = WatchState::default();
        let screen =
            render("127.0.0.1:1", 1, Duration::from_millis(100), &samples, None, &mut state);
        assert!(!screen.contains("profiler"), "{screen}");
        assert!(!screen.contains("flight"), "{screen}");
        assert!(!screen.contains("slo"), "{screen}");
        assert!(!screen.contains("shard queues"), "{screen}");
    }

    #[test]
    fn sparkline_scales_to_max() {
        let mut h = VecDeque::new();
        for v in [0.0, 1.0, 2.0, 4.0] {
            push_history(&mut h, v);
        }
        let line = sparkline(&h);
        assert_eq!(line.chars().count(), 4);
        assert!(line.ends_with('█'), "{line}");
    }

    #[test]
    fn hostile_tenant_ids_render_without_control_chars() {
        assert_eq!(compact("evil\ntenant"), "evil·tenant");
    }
}
