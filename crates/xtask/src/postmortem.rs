//! `cargo run -p xtask -- postmortem <bundle.json>` — render a flight
//! recorder's post-mortem bundle (`rrp-postmortem/1`) as a terminal
//! incident report: the trigger, the profile's top phases at dump time,
//! the engine's metrics snapshot, the in-flight request table, and the
//! tail of the event ring.
//!
//! The report is deterministic for a fixed bundle (no wall-clock reads),
//! which is what lets CI golden-pin it.

use std::fmt::Write as _;
use std::process::ExitCode;

use serde_json::Value;

use crate::prof;

/// Ring-tail lines shown by default.
const EVENT_TAIL: usize = 20;

pub fn run(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut color = true;
    let mut tail = EVENT_TAIL;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-color" => color = false,
            "--events" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => tail = n,
                None => return usage("--events needs an integer argument"),
            },
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            a => {
                if path.replace(a.to_string()).is_some() {
                    return usage("more than one bundle given");
                }
            }
        }
    }
    let Some(path) = path else {
        return usage("no bundle given (a postmortem-*.json dumped by the flight recorder)");
    };
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("postmortem: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match render(&body, tail, color) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("postmortem: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("postmortem: {msg}");
    eprintln!("usage: cargo run -p xtask -- postmortem <bundle.json> [--events <n>] [--no-color]");
    ExitCode::from(2)
}

pub(crate) fn render(body: &str, tail: usize, color: bool) -> Result<String, String> {
    let v: Value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or("?");
    if schema != "rrp-postmortem/1" {
        return Err(format!("unsupported schema `{schema}` (want rrp-postmortem/1)"));
    }
    let (bold, dim, alert, reset) =
        if color { ("\x1b[1m", "\x1b[2m", "\x1b[31;1m", "\x1b[0m") } else { ("", "", "", "") };
    let mut out = String::with_capacity(4096);

    let cause = v.get("cause").and_then(Value::as_str).unwrap_or("?");
    let t_us = v.get("t_us").and_then(Value::as_u64).unwrap_or(0);
    let _ = writeln!(out, "{bold}post-mortem{reset} — trigger {alert}{cause}{reset}");
    let _ = writeln!(
        out,
        "{dim}  dumped at t=+{:.3}s   ring horizon {}s   {} events evicted by cap{reset}",
        t_us as f64 / 1e6,
        v.get("ring_seconds").and_then(Value::as_u64).unwrap_or(0),
        v.get("ring_dropped").and_then(Value::as_u64).unwrap_or(0),
    );

    // profile at dump time
    out.push('\n');
    let collapsed = prof::bundle_to_collapsed(body)?;
    let (rows, total) = prof::aggregate(&collapsed);
    if total > 0 {
        out.push_str(&prof::render_table(&rows, total, 8, color));
    } else {
        let _ = writeln!(out, "{dim}  (no profiler samples in the bundle){reset}");
    }

    // engine metrics snapshot
    if let Some(m) = v.get("metrics").filter(|m| !m.is_null()) {
        let num =
            |k: &str| m.get(k).and_then(Value::as_f64).map_or("-".to_string(), |x| format!("{x}"));
        out.push('\n');
        let _ = writeln!(out, "{bold}engine at dump{reset}");
        let _ = writeln!(
            out,
            "  completed {}   queue depth {} (high-water {})   deadline misses {}",
            num("completed"),
            num("queue_depth"),
            num("queue_depth_high_water"),
            num("deadline_misses"),
        );
        let _ = writeln!(
            out,
            "  cache hit rate {}   audits {}   rejections {}   p99 latency {} ms",
            num("cache_hit_rate"),
            num("audits"),
            num("audit_rejections"),
            num("p99_latency_ms"),
        );
    }

    // in-flight requests
    if let Some(rows) = v.get("inflight").and_then(Value::as_array) {
        out.push('\n');
        let _ = writeln!(out, "{bold}in-flight requests ({}){reset}", rows.len());
        for r in rows {
            let s = |k: &str| r.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
            let n = |k: &str| r.get(k).and_then(Value::as_u64).unwrap_or(0);
            let _ = writeln!(
                out,
                "  #{:<6} {:<20} {:<16} deadline {:>6} ms   running {:>6} ms",
                n("request_id"),
                s("tenant"),
                s("level"),
                n("deadline_ms"),
                n("running_ms"),
            );
        }
    }

    // SLO state at dump time (present when the engine ran with an SLO
    // engine attached; `xtask slo <bundle>` renders the full waterfall)
    if let Some(slo) = v.get("slo").filter(|s| !s.is_null()) {
        out.push('\n');
        let alerts = slo.get("alerts").and_then(Value::as_array).map_or(0, <[Value]>::len);
        let exemplars =
            slo.get("exemplar_timelines").and_then(Value::as_array).map_or(0, <[Value]>::len);
        let _ = writeln!(out, "{bold}slo at dump{reset}");
        let _ = writeln!(
            out,
            "  {alerts} burn-rate alert(s)   {exemplars} exemplar timeline(s) retained"
        );
        for a in slo.get("alerts").and_then(Value::as_array).unwrap_or(&[]) {
            let s = |k: &str| a.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
            let _ = writeln!(
                out,
                "  {alert}{:<20}{reset} {:<14} {} pair burning at {:.1}x budget",
                s("tenant"),
                s("objective"),
                s("window"),
                a.get("burn").and_then(Value::as_f64).unwrap_or(0.0),
            );
        }
        let _ =
            writeln!(out, "{dim}  (render a timeline: cargo run -p xtask -- slo <bundle>){reset}");
    }

    // event-ring tail
    let events = v.get("events").and_then(Value::as_array).unwrap_or(&[]);
    out.push('\n');
    let shown = events.len().min(tail);
    let _ = writeln!(out, "{bold}event ring — last {shown} of {}{reset}", events.len());
    for ev in events.iter().skip(events.len() - shown) {
        let _ = writeln!(out, "  {}", render_event(ev));
    }
    Ok(out)
}

/// One ring event as a compact line: time, worker lane, tag, then every
/// payload field in declaration order.
fn render_event(ev: &Value) -> String {
    let t_us = ev.get("t_us").and_then(Value::as_u64).unwrap_or(0);
    let worker = ev.get("worker").and_then(Value::as_u64).unwrap_or(0);
    let tag = ev.get("ev").and_then(Value::as_str).unwrap_or("?");
    let mut line = format!("+{:>10.3}s  w{worker}  {tag:<18}", t_us as f64 / 1e6);
    if let Some(obj) = ev.as_object() {
        for (k, val) in obj {
            if matches!(k.as_str(), "t_us" | "worker" | "span" | "ev") {
                continue;
            }
            let rendered = match val {
                Value::String(s) => s.clone(),
                other => serde_json::to_string(other).unwrap_or_else(|_| "?".to_string()),
            };
            let _ = write!(line, " {k}={rendered}");
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;

    use super::*;

    /// A synthetic but shape-faithful bundle: fixed timestamps, one of
    /// each section. Changing the renderer means re-blessing the golden
    /// with `UPDATE_GOLDEN=1 cargo test -p xtask postmortem`.
    const BUNDLE: &str = r#"{"schema":"rrp-postmortem/1","cause":"deadline_miss_spike",
      "t_us":0,"ring_seconds":30,"ring_dropped":0,
      "events":[
        {"t_us":0,"worker":0,"span":1,"ev":"span_open","name":"request","parent":0},
        {"t_us":0,"worker":0,"span":1,"ev":"cache_lookup","hit":false},
        {"t_us":0,"worker":0,"span":1,"ev":"audit_gate","verdict":"pass","tightenings":3},
        {"t_us":0,"worker":0,"span":1,"ev":"ladder_step","level":"full","outcome":"exhausted:deadline","elapsed_us":0},
        {"t_us":0,"worker":0,"span":1,"ev":"request_done","request_id":4,"tenant":"storm","level":"full","outcome":"ok","latency_us":0,"deadline_met":false}
      ],
      "samples":[
        {"stack":"request;rung:full;milp","count":70},
        {"stack":"request;rung:full","count":5},
        {"stack":"request","count":10}
      ],
      "samples_total":85,
      "metrics":{"completed":12,"queue_depth":0,"queue_depth_high_water":7,
        "deadline_misses":9,"cache_hit_rate":0,"audits":12,"audit_rejections":1,
        "p99_latency_ms":0},
      "inflight":[
        {"request_id":5,"tenant":"storm","level":"full","deadline_ms":15,"running_ms":0}
      ],
      "slo":{"schema":"rrp-slo/1","alerts_total":1,
        "alerts":[{"tenant":"storm","objective":"deadline_miss","window":"fast","burn":100.0,"t_us":0,"exemplar_request_ids":[4]}],
        "exemplar_timelines":[{"request_id":4,"tenant":"storm","reason":"deadline","level":"full","outcome":"ok","latency_us":0,"deadline_met":false,"t_us":0,"truncated":0,"events":[]}]}}"#;

    fn check_golden(name: &str, text: &str) {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{name}.txt"));
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
            std::fs::write(&path, text).expect("write golden");
            return;
        }
        let want =
            std::fs::read_to_string(&path).expect("golden file; regenerate with UPDATE_GOLDEN=1");
        assert_eq!(
            text, want,
            "golden mismatch for `{name}`; if intended, rerun with UPDATE_GOLDEN=1 and review"
        );
    }

    #[test]
    fn postmortem_report_matches_the_golden_pin() {
        let report = render(BUNDLE, 20, false).expect("synthetic bundle renders");
        check_golden("postmortem_report", &report);
    }

    #[test]
    fn report_names_every_section() {
        let report = render(BUNDLE, 3, false).unwrap();
        assert!(report.contains("trigger deadline_miss_spike"), "{report}");
        assert!(report.contains("top phases — 85 samples"), "{report}");
        assert!(report.contains("engine at dump"), "{report}");
        assert!(report.contains("in-flight requests (1)"), "{report}");
        assert!(report.contains("slo at dump"), "{report}");
        assert!(report.contains("burning at 100.0x budget"), "{report}");
        assert!(report.contains("last 3 of 5"), "{report}");
        assert!(report.contains("deadline_met=false"), "{report}");
        assert!(!report.contains('\x1b'), "--no-color strips ANSI");
    }

    #[test]
    fn wrong_schema_is_refused() {
        let err = render(r#"{"schema":"other/9"}"#, 5, false).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(render("not json", 5, false).is_err());
    }
}
