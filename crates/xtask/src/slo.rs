//! `cargo run -p xtask -- slo <addr|file.json>` — render per-tenant SLO
//! state as a budget/burn table plus a span-waterfall view of one
//! tail-sampled exemplar timeline.
//!
//! The input is a live engine (`/slo` is scraped), a saved `rrp-slo/1`
//! status document, or a flight-recorder post-mortem bundle
//! (`rrp-postmortem/1`, whose `slo` section is rendered). Reports are
//! deterministic for a fixed document — no wall clock — which is what
//! lets CI golden-pin them.

use std::fmt::Write as _;
use std::process::ExitCode;

use serde_json::Value;

use crate::watch;

/// Waterfall bar width in glyphs.
const WATERFALL_WIDTH: usize = 40;

pub fn run(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut color = true;
    let mut timeline: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-color" => color = false,
            "--timeline" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(id) => timeline = Some(id),
                None => return usage("--timeline needs a request id"),
            },
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            a => {
                if input.replace(a.to_string()).is_some() {
                    return usage("more than one input given");
                }
            }
        }
    }
    let Some(input) = input else {
        return usage("no input given (an engine address, /slo JSON, or a post-mortem bundle)");
    };
    let body = if std::path::Path::new(&input).exists() {
        match std::fs::read_to_string(&input) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("slo: cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match watch::http_get(&input, "/slo") {
            Some((200, b)) => b,
            Some((code, b)) => {
                eprintln!("slo: {input}/slo answered HTTP {code}: {}", b.trim());
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("slo: cannot reach {input}/slo — is the engine serving with --slo?");
                return ExitCode::FAILURE;
            }
        }
    };
    match render(&body, timeline, color) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("slo: {input}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("slo: {msg}");
    eprintln!(
        "usage: cargo run -p xtask -- slo <addr|file.json> [--timeline <request_id>] [--no-color]"
    );
    ExitCode::from(2)
}

pub(crate) fn render(body: &str, timeline: Option<u64>, color: bool) -> Result<String, String> {
    let v: Value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e:?}"))?;
    // a post-mortem bundle carries the status document in its `slo` key
    let doc = match v.get("schema").and_then(Value::as_str) {
        Some("rrp-slo/1") => &v,
        Some("rrp-postmortem/1") => v
            .get("slo")
            .filter(|s| !s.is_null())
            .ok_or("bundle has no slo section (engine ran without --slo)")?,
        other => {
            return Err(format!("unsupported schema `{}` (want rrp-slo/1)", other.unwrap_or("?")))
        }
    };
    if doc.get("schema").and_then(Value::as_str) != Some("rrp-slo/1") {
        return Err("slo section is not an rrp-slo/1 document".to_string());
    }
    let (bold, dim, alert, reset) =
        if color { ("\x1b[1m", "\x1b[2m", "\x1b[31;1m", "\x1b[0m") } else { ("", "", "", "") };
    let mut out = String::with_capacity(4096);

    let alerts_total = doc.get("alerts_total").and_then(Value::as_u64).unwrap_or(0);
    let ex =
        |k: &str| doc.get("exemplars").and_then(|e| e.get(k)).and_then(Value::as_u64).unwrap_or(0);
    let _ = writeln!(out, "{bold}slo — error budgets and burn rates{reset}");
    let _ = writeln!(
        out,
        "{dim}  {alerts_total} alert(s) fired   exemplars: {} retained, {} dropped, {} stored{reset}",
        ex("retained"),
        ex("dropped"),
        ex("stored"),
    );

    // budget/burn table, one row per (tenant, objective)
    let tenants = doc.get("tenants").and_then(Value::as_array).unwrap_or(&[]);
    out.push('\n');
    let _ = writeln!(
        out,
        "{bold}  {:<16} {:<14} {:>7} {:>7} {:>6} {:>10}  burn/window{reset}",
        "tenant", "objective", "events", "bad", "budget", "remaining"
    );
    for t in tenants {
        let tenant = t.get("tenant").and_then(Value::as_str).unwrap_or("?");
        for o in t.get("objectives").and_then(Value::as_array).unwrap_or(&[]) {
            let events = o.get("events").and_then(Value::as_u64).unwrap_or(0);
            if events == 0 {
                continue; // objectives nothing ever fed stay out of the table
            }
            let alerting = o.get("alerting").and_then(Value::as_bool).unwrap_or(false);
            let mut burns = String::new();
            for b in o.get("burn").and_then(Value::as_array).unwrap_or(&[]) {
                let _ = write!(
                    burns,
                    " {}={:.1}",
                    b.get("window").and_then(Value::as_str).unwrap_or("?"),
                    b.get("rate").and_then(Value::as_f64).unwrap_or(0.0)
                );
            }
            let (mark, unmark) = if alerting { (alert, reset) } else { ("", "") };
            let _ = writeln!(
                out,
                "  {mark}{:<16} {:<14} {:>7} {:>7} {:>5.1}% {:>10.2}{unmark} {burns}{}",
                compact(tenant, 16),
                o.get("objective").and_then(Value::as_str).unwrap_or("?"),
                events,
                o.get("bad").and_then(Value::as_u64).unwrap_or(0),
                o.get("budget").and_then(Value::as_f64).unwrap_or(0.0) * 100.0,
                o.get("budget_remaining").and_then(Value::as_f64).unwrap_or(1.0),
                if alerting { "  ALERTING" } else { "" },
            );
        }
    }

    // fired alerts with their exemplar links
    let alerts = doc.get("alerts").and_then(Value::as_array).unwrap_or(&[]);
    if !alerts.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "{bold}  alerts{reset}");
        for a in alerts {
            let ids: Vec<String> = a
                .get("exemplar_request_ids")
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(Value::as_u64)
                .map(|id| format!("#{id}"))
                .collect();
            let _ = writeln!(
                out,
                "  {alert}{:<16}{reset} {:<14} {} pair at {:.1}x budget   exemplars: {}",
                compact(a.get("tenant").and_then(Value::as_str).unwrap_or("?"), 16),
                a.get("objective").and_then(Value::as_str).unwrap_or("?"),
                a.get("window").and_then(Value::as_str).unwrap_or("?"),
                a.get("burn").and_then(Value::as_f64).unwrap_or(0.0),
                if ids.is_empty() { "none".to_string() } else { ids.join(" ") },
            );
        }
    }

    // exemplar waterfall: the requested timeline, or the first retained
    let timelines = doc.get("exemplar_timelines").and_then(Value::as_array).unwrap_or(&[]);
    let chosen = match timeline {
        Some(id) => timelines
            .iter()
            .find(|tl| tl.get("request_id").and_then(Value::as_u64) == Some(id))
            .ok_or(format!("no exemplar timeline with request id {id}"))?,
        None => match timelines.first() {
            Some(tl) => tl,
            None => {
                out.push('\n');
                let _ = writeln!(out, "{dim}  (no exemplar timelines retained){reset}");
                return Ok(out);
            }
        },
    };
    out.push('\n');
    out.push_str(&waterfall(chosen, bold, dim, reset));
    if timelines.len() > 1 && timeline.is_none() {
        let _ = writeln!(
            out,
            "{dim}  ({} more timeline(s) — pick one with --timeline <request_id>){reset}",
            timelines.len() - 1
        );
    }
    Ok(out)
}

/// Span-waterfall view of one exemplar: spans as positioned bars over the
/// request's lifetime, instant events as point markers, indented by span
/// nesting.
fn waterfall(tl: &Value, bold: &str, dim: &str, reset: &str) -> String {
    let mut out = String::with_capacity(1024);
    let request_id = tl.get("request_id").and_then(Value::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "{bold}  exemplar #{request_id} — {} / {}{reset}",
        tl.get("tenant").and_then(Value::as_str).unwrap_or("?"),
        tl.get("reason").and_then(Value::as_str).unwrap_or("?"),
    );
    let _ = writeln!(
        out,
        "{dim}  level {}   outcome {}   latency {} µs   deadline_met {}   {} event(s) truncated{reset}",
        tl.get("level").and_then(Value::as_str).unwrap_or("?"),
        tl.get("outcome").and_then(Value::as_str).unwrap_or("?"),
        tl.get("latency_us").and_then(Value::as_u64).unwrap_or(0),
        tl.get("deadline_met").and_then(Value::as_bool).unwrap_or(false),
        tl.get("truncated").and_then(Value::as_u64).unwrap_or(0),
    );
    let events = tl.get("events").and_then(Value::as_array).unwrap_or(&[]);
    if events.is_empty() {
        let _ = writeln!(out, "{dim}  (timeline carries no events){reset}");
        return out;
    }
    let t0 = events.iter().filter_map(|e| e.get("t_us").and_then(Value::as_u64)).min().unwrap_or(0);
    let t1 =
        events.iter().filter_map(|e| e.get("t_us").and_then(Value::as_u64)).max().unwrap_or(t0);
    let dur = (t1 - t0).max(1);
    let pos = |t: u64| ((t - t0) as usize * (WATERFALL_WIDTH - 1)) / dur as usize;

    // span open/close pairing (by span id) for bar extents and nesting
    let mut open: Vec<(u64, usize)> = Vec::new(); // (span, row index)
    struct Row {
        label: String,
        depth: usize,
        start: u64,
        end: Option<u64>,
        point: bool,
        detail: String,
    }
    let mut rows: Vec<Row> = Vec::new();
    for ev in events {
        let t = ev.get("t_us").and_then(Value::as_u64).unwrap_or(t0);
        let tag = ev.get("ev").and_then(Value::as_str).unwrap_or("?");
        let span = ev.get("span").and_then(Value::as_u64).unwrap_or(0);
        match tag {
            "span_open" => {
                let name = ev.get("name").and_then(Value::as_str).unwrap_or("?");
                rows.push(Row {
                    label: name.to_string(),
                    depth: open.len(),
                    start: t,
                    end: None,
                    point: false,
                    detail: String::new(),
                });
                open.push((span, rows.len() - 1));
            }
            "span_close" => {
                if let Some(i) = open.iter().rposition(|(s, _)| *s == span) {
                    let (_, row) = open.remove(i);
                    if let Some(r) = rows.get_mut(row) {
                        r.end = Some(t);
                    }
                }
            }
            _ => {
                let mut detail = String::new();
                if let Some(obj) = ev.as_object() {
                    for (k, val) in obj {
                        if matches!(k.as_str(), "t_us" | "worker" | "span" | "ev") {
                            continue;
                        }
                        let rendered = match val {
                            Value::String(s) => s.clone(),
                            other => serde_json::to_string(other).unwrap_or_default(),
                        };
                        let _ = write!(detail, " {k}={rendered}");
                    }
                }
                rows.push(Row {
                    label: tag.to_string(),
                    depth: open.len(),
                    start: t,
                    end: None,
                    point: true,
                    detail,
                });
            }
        }
    }

    for r in &rows {
        let mut bar = vec![' '; WATERFALL_WIDTH];
        if r.point {
            bar[pos(r.start)] = '●';
        } else {
            let a = pos(r.start);
            let b = pos(r.end.unwrap_or(t1)).max(a);
            for c in bar.iter_mut().take(b + 1).skip(a) {
                *c = '─';
            }
            bar[a] = '├';
            bar[b] = if r.end.is_some() { '┤' } else { '╌' };
        }
        let bar: String = bar.into_iter().collect();
        let indent = "  ".repeat(r.depth);
        let label = format!("{indent}{}", r.label);
        let span_time = match r.end {
            Some(e) => format!("+{}..+{} µs", r.start - t0, e - t0),
            None if r.point => format!("+{} µs", r.start - t0),
            None => format!("+{} µs..", r.start - t0),
        };
        let _ = writeln!(out, "  {label:<22} {bar}  {span_time}{}", r.detail);
    }
    out
}

/// Truncate a tenant id for its table column, stripping control chars.
fn compact(s: &str, width: usize) -> String {
    s.chars().map(|c| if c.is_control() { '·' } else { c }).take(width).collect()
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;

    use super::*;

    /// A synthetic but shape-faithful `/slo` document: one storm tenant
    /// past its deadline budget with a retained exemplar, one calm
    /// tenant. Changing the renderer means re-blessing the golden with
    /// `UPDATE_GOLDEN=1 cargo test -p xtask slo`.
    const STATUS: &str = r#"{"schema":"rrp-slo/1","now_us":9500,"alerts_total":1,
      "exemplars":{"retained":10,"dropped":2,"stored":10},
      "tenants":[
        {"tenant":"storm","requests":12,"p99_latency_ms":3.1,"cost_ratio":null,"objectives":[
          {"objective":"deadline_miss","budget":0.01,"events":12,"bad":12,"budget_remaining":-99.0,"alerting":true,
           "burn":[{"window":"5m","rate":100.0},{"window":"1h","rate":100.0},{"window":"6h","rate":100.0},{"window":"3d","rate":100.0}]},
          {"objective":"latency","budget":0.01,"events":12,"bad":0,"budget_remaining":1.0,"alerting":false,
           "burn":[{"window":"5m","rate":0.0},{"window":"1h","rate":0.0},{"window":"6h","rate":0.0},{"window":"3d","rate":0.0}]},
          {"objective":"cost_ratio","budget":0.05,"events":0,"bad":0,"budget_remaining":1.0,"alerting":false,
           "burn":[{"window":"5m","rate":0.0},{"window":"1h","rate":0.0},{"window":"6h","rate":0.0},{"window":"3d","rate":0.0}]}]},
        {"tenant":"calm","requests":40,"p99_latency_ms":1.2,"cost_ratio":1.05,"objectives":[
          {"objective":"deadline_miss","budget":0.01,"events":40,"bad":0,"budget_remaining":1.0,"alerting":false,
           "burn":[{"window":"5m","rate":0.0},{"window":"1h","rate":0.0},{"window":"6h","rate":0.0},{"window":"3d","rate":0.0}]},
          {"objective":"latency","budget":0.01,"events":40,"bad":0,"budget_remaining":1.0,"alerting":false,
           "burn":[{"window":"5m","rate":0.0},{"window":"1h","rate":0.0},{"window":"6h","rate":0.0},{"window":"3d","rate":0.0}]},
          {"objective":"cost_ratio","budget":0.05,"events":8,"bad":0,"budget_remaining":1.0,"alerting":false,
           "burn":[{"window":"5m","rate":0.0},{"window":"1h","rate":0.0},{"window":"6h","rate":0.0},{"window":"3d","rate":0.0}]}]}],
      "alerts":[
        {"tenant":"storm","objective":"deadline_miss","window":"fast","burn":100.0,"t_us":9500,"exemplar_request_ids":[9,8,7]}],
      "exemplar_timelines":[
        {"request_id":9,"tenant":"storm","reason":"deadline","level":"full","outcome":"ok",
         "latency_us":1500,"deadline_met":false,"t_us":10500,"truncated":0,"events":[
          {"t_us":9000,"worker":0,"span":19,"ev":"span_open","name":"request","parent":0},
          {"t_us":9100,"worker":0,"span":19,"ev":"enqueued"},
          {"t_us":9200,"worker":1,"span":19,"ev":"dequeued"},
          {"t_us":9250,"worker":1,"span":19,"ev":"cache_lookup","hit":false},
          {"t_us":9300,"worker":1,"span":19,"ev":"audit_gate","verdict":"pass","tightenings":2},
          {"t_us":9400,"worker":1,"span":20,"ev":"span_open","name":"rung:full","parent":19},
          {"t_us":10200,"worker":1,"span":20,"ev":"ladder_step","level":"full","outcome":"exhausted:deadline","elapsed_us":800},
          {"t_us":10300,"worker":1,"span":20,"ev":"span_close"},
          {"t_us":10500,"worker":1,"span":19,"ev":"request_done","request_id":9,"tenant":"storm","level":"full","outcome":"ok","latency_us":1500,"deadline_met":false}
        ]}]}"#;

    fn check_golden(name: &str, text: &str) {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{name}.txt"));
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
            std::fs::write(&path, text).expect("write golden");
            return;
        }
        let want =
            std::fs::read_to_string(&path).expect("golden file; regenerate with UPDATE_GOLDEN=1");
        assert_eq!(
            text, want,
            "golden mismatch for `{name}`; if intended, rerun with UPDATE_GOLDEN=1 and review"
        );
    }

    #[test]
    fn slo_report_matches_the_golden_pin() {
        let report = render(STATUS, None, false).expect("synthetic status renders");
        check_golden("slo_report", &report);
    }

    #[test]
    fn report_names_every_section() {
        let report = render(STATUS, None, false).unwrap();
        assert!(report.contains("1 alert(s) fired"), "{report}");
        assert!(report.contains("storm"), "{report}");
        assert!(report.contains("ALERTING"), "{report}");
        assert!(report.contains("exemplars: #9 #8 #7"), "{report}");
        assert!(report.contains("exemplar #9 — storm / deadline"), "{report}");
        assert!(report.contains("rung:full"), "{report}");
        assert!(report.contains("ladder_step"), "{report}");
        // the zero-event cost objective for storm stays out of the table
        assert!(!report.contains("storm            cost_ratio"), "{report}");
        assert!(!report.contains('\x1b'), "--no-color strips ANSI");
    }

    #[test]
    fn timeline_flag_selects_and_unknown_id_errors() {
        assert!(render(STATUS, Some(9), false).is_ok());
        let err = render(STATUS, Some(404), false).unwrap_err();
        assert!(err.contains("no exemplar timeline"), "{err}");
    }

    #[test]
    fn postmortem_bundles_are_unwrapped() {
        let bundle =
            format!(r#"{{"schema":"rrp-postmortem/1","cause":"slo_burn_rate","slo":{STATUS}}}"#);
        let report = render(&bundle, None, false).expect("bundle renders");
        assert!(report.contains("error budgets"), "{report}");
        let missing = r#"{"schema":"rrp-postmortem/1","cause":"panic","slo":null}"#;
        assert!(render(missing, None, false).unwrap_err().contains("no slo section"));
    }

    #[test]
    fn wrong_schema_is_refused() {
        let err = render(r#"{"schema":"other/9"}"#, None, false).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(render("not json", None, false).is_err());
    }
}
