//! `cargo run -p xtask -- analyze` — the full static-analysis gate.
//!
//! Runs every `rrp-lint` pass (token safety scan, lock-order cycles,
//! held-lock-across-blocking, atomic-ordering audit, unbounded growth)
//! over `crates/*/src` and `shims/*/src`, justifies findings against
//! `lint-allow.txt`, and validates the allowlist itself (mandatory
//! `reason=` fields, live paths, no stale entries).
//!
//! Flags:
//! - `--deny all` — explicit CI mode (failing on unjustified findings
//!   and allowlist problems is also the default; the flag documents it)
//! - `--json <path|->` — write machine-readable findings JSON
//! - `--bench-out <path>` — append the run's wall time to a
//!   `results/BENCH_*.json`-format record file for the regression gate
//!
//! When `GITHUB_STEP_SUMMARY` is set, a markdown summary (findings per
//! lint, justified/unjustified split) is appended to it.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use rrp_lint::findings::render_json;

pub fn run(args: &[String]) -> ExitCode {
    let mut json_out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut deny_all = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny" => {
                if args.get(i + 1).map(String::as_str) != Some("all") {
                    eprintln!("analyze: --deny takes the value `all`");
                    return ExitCode::from(2);
                }
                deny_all = true;
                i += 2;
            }
            "--json" => match args.get(i + 1) {
                Some(p) => {
                    json_out = Some(p.clone());
                    i += 2;
                }
                None => {
                    eprintln!("analyze: --json needs a path (or `-` for stdout)");
                    return ExitCode::from(2);
                }
            },
            "--bench-out" => match args.get(i + 1) {
                Some(p) => {
                    bench_out = Some(p.clone());
                    i += 2;
                }
                None => {
                    eprintln!("analyze: --bench-out needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("analyze: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    let _ = deny_all; // denial is the default; the flag is CI documentation

    let root = super::repo_root();
    let started = Instant::now();
    let analysis = match rrp_lint::analyze(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: failed to load workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    if let Some(path) = &json_out {
        let json = render_json(&analysis.findings);
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = fs::write(path, &json) {
            eprintln!("analyze: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // per-lint counts for the summary line and the CI job summary
    let mut per_lint: Vec<(String, usize, usize)> = Vec::new();
    for f in &analysis.findings {
        match per_lint.iter_mut().find(|(l, _, _)| *l == f.lint) {
            Some((_, total, open)) => {
                *total += 1;
                if !f.justified {
                    *open += 1;
                }
            }
            None => per_lint.push((f.lint.clone(), 1, usize::from(!f.justified))),
        }
    }
    let total = analysis.findings.len();
    let open = analysis.unjustified().count();

    println!(
        "analyze: {} files, {} finding(s) ({} justified, {} open), {:.0} ms",
        analysis.files,
        total,
        total - open,
        open,
        wall_ms
    );
    for (lint, t, o) in &per_lint {
        println!("  {lint}: {t} finding(s), {o} open");
    }
    for f in analysis.unjustified() {
        eprintln!("  OPEN {}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
    }
    for e in &analysis.allow_errors {
        eprintln!("  ALLOWLIST {e}");
    }

    write_step_summary(&per_lint, total, open, &analysis.allow_errors, wall_ms);

    if let Some(path) = &bench_out {
        if let Err(e) = write_bench_record(Path::new(path), wall_ms, analysis.files, total) {
            eprintln!("analyze: cannot write bench record {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if analysis.is_clean() {
        println!("analyze: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nanalyze: {} open finding(s), {} allowlist problem(s).\n\
             Fix the code, add a `// relaxed-ok:`/`// growth-ok:` justification comment,\n\
             or record the finding key in lint-allow.txt with a reason=\"…\" field.",
            open,
            analysis.allow_errors.len()
        );
        ExitCode::FAILURE
    }
}

fn write_step_summary(
    per_lint: &[(String, usize, usize)],
    total: usize,
    open: usize,
    allow_errors: &[String],
    wall_ms: f64,
) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut md = String::from("### Static analysis (`xtask analyze`)\n\n");
    let _ = writeln!(
        md,
        "**{total} finding(s)** — {} justified, **{open} open**, \
         {} allowlist problem(s), {wall_ms:.0} ms\n",
        total - open,
        allow_errors.len()
    );
    md.push_str("| lint | findings | open |\n|---|---|---|\n");
    for (lint, t, o) in per_lint {
        let _ = writeln!(md, "| {lint} | {t} | {o} |");
    }
    if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = f.write_all(md.as_bytes());
    }
}

/// One `results/BENCH_*.json`-format timing record, written in the same
/// flat one-record-per-line shape `xtask benchdiff` parses.
fn write_bench_record(
    path: &Path,
    wall_ms: f64,
    files: usize,
    findings: usize,
) -> std::io::Result<()> {
    if let Some(parent) = PathBuf::from(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let body = format!(
        "[\n  {{\"instance\":\"analyze/full_tree\",\"wall_ms\":{wall_ms:.3},\"nodes\":0,\
         \"objective\":null,\"files\":{files}.0,\"findings\":{findings}.0}}\n]\n"
    );
    fs::write(path, body)
}
