//! `cargo run -p xtask -- trace <file.jsonl>` — offline analysis of an
//! `rrp-trace` JSONL stream.
//!
//! The tool rebuilds the span tree from `span_open`/`span_close` events and
//! renders one report per MILP solve (a `"milp"` span): search-tree summary
//! (nodes by prune reason, depth histogram), the gap-vs-time timeline as an
//! ASCII sparkline, a warm-start summary (dual-simplex warm-hit rate and
//! estimated pivots saved versus cold solves), and a per-rung latency
//! breakdown from `ladder_step` events. With `--assert-gap-closed` it exits
//! non-zero unless every `solve_done` in the file reached optimality (or a
//! relative gap within `--gap-tol`, default 1e-6); with
//! `--assert-warm-rate <pct>` it additionally requires that share of LP
//! solves to have taken the warm dual-simplex path — the CI modes that keep
//! the instrumented example honest.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

use serde_json::Value;

/// Sparkline glyphs, low to high.
const BARS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Maximum sparkline / histogram width in glyphs.
const WIDTH: usize = 48;

/// One parsed JSONL line.
struct Ev {
    t_us: u64,
    span: u64,
    tag: String,
    v: Value,
}

/// One reconstructed span.
struct Span {
    name: String,
    parent: u64,
    opened_us: u64,
    closed_us: Option<u64>,
}

/// Per-solve (`"milp"` span) aggregate.
#[derive(Default)]
struct Solve {
    span: u64,
    rung: String,
    opened: u64,
    integral: u64,
    pruned: BTreeMap<String, u64>,
    depths: BTreeMap<u64, u64>,
    lp_solves: u64,
    lp_iters: u64,
    /// LP solves that took the warm dual-simplex path (`"warm":true`).
    lp_warm: u64,
    /// Simplex pivots split by path, for the iterations-saved estimate.
    lp_warm_iters: u64,
    lp_cold_iters: u64,
    /// `(t_us, gap)` timeline; `f64::INFINITY` for a null (no-incumbent) gap.
    gap_samples: Vec<(u64, f64)>,
    done: Option<(String, u64, f64)>,
}

/// Aggregate of the `ladder_step` events for one rung level.
#[derive(Default)]
struct RungStat {
    attempts: u64,
    total_us: u64,
    max_us: u64,
    outcomes: BTreeMap<String, u64>,
}

pub fn run(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut assert_gap_closed = false;
    let mut gap_tol = 1e-6;
    let mut assert_warm_rate = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--assert-gap-closed" => assert_gap_closed = true,
            "--gap-tol" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => gap_tol = t,
                None => return usage("--gap-tol needs a numeric argument"),
            },
            "--assert-warm-rate" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if (0.0..=100.0).contains(&p) => assert_warm_rate = Some(p),
                _ => return usage("--assert-warm-rate needs a percentage in [0, 100]"),
            },
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            file => {
                if path.replace(file).is_some() {
                    return usage("more than one trace file given");
                }
            }
        }
    }
    let Some(path) = path else {
        return usage("no trace file given");
    };
    let src = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (events, parse_errors) = parse_events(&src);
    let spans = build_spans(&events);
    let solves = collect_solves(&events, &spans);
    let rungs = collect_rung_stats(&events, &spans);

    print!("{}", render_report(path, &events, &spans, &solves, &rungs, parse_errors));

    if assert_gap_closed {
        let code = assert_closed(&solves, gap_tol);
        if code != ExitCode::SUCCESS {
            return code;
        }
    }
    if let Some(pct) = assert_warm_rate {
        return assert_warm(&solves, pct);
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("trace: {msg}");
    eprintln!(
        "usage: cargo run -p xtask -- trace <file.jsonl> [--assert-gap-closed] \
         [--gap-tol <rel>] [--assert-warm-rate <pct>]"
    );
    ExitCode::from(2)
}

/// Parse every line; malformed lines are counted, not fatal (a crashed
/// process may have torn its last line).
fn parse_events(src: &str) -> (Vec<Ev>, usize) {
    let mut events = Vec::new();
    let mut errors = 0;
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str(line) else {
            errors += 1;
            continue;
        };
        let v: Value = v;
        let (Some(t_us), Some(span), Some(tag)) = (
            v.get("t_us").and_then(Value::as_u64),
            v.get("span").and_then(Value::as_u64),
            v.get("ev").and_then(Value::as_str),
        ) else {
            errors += 1;
            continue;
        };
        events.push(Ev { t_us, span, tag: tag.to_string(), v });
    }
    (events, errors)
}

/// Rebuild the span table from open/close events.
fn build_spans(events: &[Ev]) -> BTreeMap<u64, Span> {
    let mut spans = BTreeMap::new();
    for ev in events {
        match ev.tag.as_str() {
            "span_open" => {
                let name = ev.v.get("name").and_then(Value::as_str).unwrap_or("?").to_string();
                let parent = ev.v.get("parent").and_then(Value::as_u64).unwrap_or(0);
                spans.insert(ev.span, Span { name, parent, opened_us: ev.t_us, closed_us: None });
            }
            "span_close" => {
                if let Some(span) = spans.get_mut(&ev.span) {
                    span.closed_us = Some(ev.t_us);
                }
            }
            _ => {}
        }
    }
    spans
}

/// The name of the nearest enclosing `rung:*` ancestor, if any.
fn enclosing_rung(spans: &BTreeMap<u64, Span>, mut id: u64) -> Option<String> {
    // parent chains are short (request → rung → milp); 64 steps is a
    // cycle guard against corrupt input, not a real bound
    for _ in 0..64 {
        let span = spans.get(&id)?;
        if span.name.starts_with("rung:") {
            return Some(span.name.clone());
        }
        id = span.parent;
    }
    None
}

/// Group solver events under their `"milp"` spans, in span-open order.
fn collect_solves(events: &[Ev], spans: &BTreeMap<u64, Span>) -> Vec<Solve> {
    let mut solves: BTreeMap<u64, Solve> = spans
        .iter()
        .filter(|(_, s)| s.name == "milp")
        .map(|(&id, _)| {
            let rung = enclosing_rung(spans, id).unwrap_or_else(|| "(standalone)".to_string());
            (id, Solve { span: id, rung, ..Default::default() })
        })
        .collect();
    for ev in events {
        let Some(solve) = solves.get_mut(&ev.span) else {
            continue;
        };
        match ev.tag.as_str() {
            "node_opened" => {
                solve.opened += 1;
                let depth = ev.v.get("depth").and_then(Value::as_u64).unwrap_or(0);
                *solve.depths.entry(depth).or_insert(0) += 1;
            }
            "node_pruned" => {
                let reason = ev.v.get("reason").and_then(Value::as_str).unwrap_or("?").to_string();
                *solve.pruned.entry(reason).or_insert(0) += 1;
            }
            "node_integral" => solve.integral += 1,
            "lp_solved" => {
                solve.lp_solves += 1;
                let iters = ev.v.get("iters").and_then(Value::as_u64).unwrap_or(0);
                solve.lp_iters += iters;
                // traces written before the warm field existed count as cold
                if ev.v.get("warm").and_then(Value::as_bool).unwrap_or(false) {
                    solve.lp_warm += 1;
                    solve.lp_warm_iters += iters;
                } else {
                    solve.lp_cold_iters += iters;
                }
            }
            "gap_sample" => {
                // a null gap serialises the no-incumbent state: ∞
                let gap = ev.v.get("gap").and_then(Value::as_f64).unwrap_or(f64::INFINITY);
                solve.gap_samples.push((ev.t_us, gap));
            }
            "solve_done" => {
                let status = ev.v.get("status").and_then(Value::as_str).unwrap_or("?").to_string();
                let nodes = ev.v.get("nodes").and_then(Value::as_u64).unwrap_or(0);
                let gap = ev.v.get("gap").and_then(Value::as_f64).unwrap_or(f64::INFINITY);
                solve.done = Some((status, nodes, gap));
            }
            _ => {}
        }
    }
    let mut out: Vec<Solve> = solves.into_values().collect();
    out.sort_by_key(|s| spans.get(&s.span).map_or(0, |sp| sp.opened_us));
    out
}

/// Aggregate `ladder_step` events per rung level.
fn collect_rung_stats(events: &[Ev], spans: &BTreeMap<u64, Span>) -> BTreeMap<String, RungStat> {
    let mut rungs: BTreeMap<String, RungStat> = BTreeMap::new();
    for ev in events {
        if ev.tag != "ladder_step" {
            continue;
        }
        let level =
            ev.v.get("level")
                .and_then(Value::as_str)
                .map(str::to_string)
                .or_else(|| spans.get(&ev.span).map(|s| s.name.clone()))
                .unwrap_or_else(|| "?".to_string());
        let outcome = ev.v.get("outcome").and_then(Value::as_str).unwrap_or("?");
        // `kind:detail` outcome strings aggregate by kind
        let kind = outcome.split(':').next().unwrap_or("?").to_string();
        let us = ev.v.get("elapsed_us").and_then(Value::as_u64).unwrap_or(0);
        let stat = rungs.entry(level).or_default();
        stat.attempts += 1;
        stat.total_us += us;
        stat.max_us = stat.max_us.max(us);
        *stat.outcomes.entry(kind).or_insert(0) += 1;
    }
    rungs
}

fn render_report(
    path: &str,
    events: &[Ev],
    spans: &BTreeMap<u64, Span>,
    solves: &[Solve],
    rungs: &BTreeMap<String, RungStat>,
    parse_errors: usize,
) -> String {
    let mut out = String::new();
    let requests = spans.values().filter(|s| s.name == "request").count();
    let unbalanced = spans.values().filter(|s| s.closed_us.is_none()).count();
    let _ = writeln!(
        out,
        "trace {path}: {} events, {} spans ({requests} requests, {} solves)",
        events.len(),
        spans.len(),
        solves.len(),
    );
    if parse_errors > 0 {
        let _ = writeln!(out, "  warning: {parse_errors} unparseable line(s) skipped");
    }
    if unbalanced > 0 {
        let _ = writeln!(out, "  warning: {unbalanced} span(s) opened but never closed");
    }

    for (i, solve) in solves.iter().enumerate() {
        out.push('\n');
        let _ = writeln!(out, "solve #{} (span {}, {})", i + 1, solve.span, solve.rung);
        match &solve.done {
            Some((status, nodes, gap)) => {
                let _ = writeln!(
                    out,
                    "  status {status}   nodes {nodes}   gap {}   lp {} solves ({} warm) / {} iters",
                    fmt_gap(*gap),
                    solve.lp_solves,
                    solve.lp_warm,
                    solve.lp_iters
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  status (no solve_done — span torn?)   lp {} solves / {} iters",
                    solve.lp_solves, solve.lp_iters
                );
            }
        }
        let pruned: u64 = solve.pruned.values().sum();
        let branched = solve.opened.saturating_sub(pruned + solve.integral);
        let mut reasons = String::new();
        for (reason, n) in &solve.pruned {
            let _ = write!(reasons, " {reason} {n},");
        }
        let reasons = reasons.trim_end_matches(',');
        let _ = writeln!(
            out,
            "  nodes: opened {} | integral {} | pruned{} | branched {branched}",
            solve.opened,
            solve.integral,
            if pruned == 0 { " none".to_string() } else { reasons.to_string() },
        );
        render_depth_histogram(&mut out, &solve.depths);
        render_gap_sparkline(&mut out, &solve.gap_samples, spans.get(&solve.span));
    }

    render_warm_summary(&mut out, solves);

    if !rungs.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "rung latency:");
        for (level, stat) in rungs {
            let mean = stat.total_us as f64 / stat.attempts as f64;
            let mut outcomes = String::new();
            for (kind, n) in &stat.outcomes {
                let _ = write!(outcomes, "{kind} ×{n}, ");
            }
            let outcomes = outcomes.trim_end_matches(", ");
            let _ = writeln!(
                out,
                "  {level:<16} {:>3} attempt(s)   mean {:>10}   max {:>10}   [{outcomes}]",
                stat.attempts,
                fmt_us(mean),
                fmt_us(stat.max_us as f64),
            );
        }
    }
    out
}

/// File-level dual-simplex warm-start aggregate: hit rate across every LP
/// solve, mean pivots on each path, and the estimated pivots the warm
/// starts saved (each warm solve priced at the mean cold pivot count).
fn render_warm_summary(out: &mut String, solves: &[Solve]) {
    let lp: u64 = solves.iter().map(|s| s.lp_solves).sum();
    if lp == 0 {
        return;
    }
    let warm: u64 = solves.iter().map(|s| s.lp_warm).sum();
    let cold = lp - warm;
    let warm_iters: u64 = solves.iter().map(|s| s.lp_warm_iters).sum();
    let cold_iters: u64 = solves.iter().map(|s| s.lp_cold_iters).sum();
    out.push('\n');
    let rate = 100.0 * warm as f64 / lp as f64;
    let _ = writeln!(out, "warm start: {warm}/{lp} lp solves warm ({rate:.1}%)");
    let mean_warm = if warm > 0 { warm_iters as f64 / warm as f64 } else { 0.0 };
    let mean_cold = if cold > 0 { cold_iters as f64 / cold as f64 } else { 0.0 };
    let _ = writeln!(
        out,
        "  mean pivots: warm {mean_warm:.1}   cold {mean_cold:.1}{}",
        if cold == 0 { "   (no cold solves to compare)" } else { "" },
    );
    if warm > 0 && cold > 0 {
        let saved = (mean_cold - mean_warm) * warm as f64;
        if saved > 0.0 {
            let _ = writeln!(out, "  ≈{saved:.0} pivots saved by warm starts");
        }
    }
}

/// `  depth:  0 ████████ 12` rows, bars scaled to the deepest count.
fn render_depth_histogram(out: &mut String, depths: &BTreeMap<u64, u64>) {
    let Some(max) = depths.values().copied().max().filter(|&m| m > 0) else {
        return;
    };
    let _ = writeln!(out, "  depth histogram (nodes opened per depth):");
    for (&depth, &n) in depths {
        let width = ((n as f64 / max as f64) * WIDTH as f64).ceil() as usize;
        let bar = "█".repeat(width.max(1));
        let _ = writeln!(out, "    {depth:>3} {bar} {n}");
    }
}

/// One sparkline row: relative gap over time, high (left axis label) to
/// closed. Infinite gaps (no incumbent yet) render as the top glyph.
fn render_gap_sparkline(out: &mut String, samples: &[(u64, f64)], span: Option<&Span>) {
    if samples.is_empty() {
        return;
    }
    let finite_max =
        samples.iter().map(|&(_, g)| g).filter(|g| g.is_finite()).fold(0.0_f64, f64::max);
    let scale = if finite_max > 0.0 { finite_max } else { 1.0 };
    let line: String = time_buckets(samples, WIDTH)
        .into_iter()
        .map(|gap| match gap {
            None => ' ',
            Some(g) if !g.is_finite() => '∞',
            Some(g) => {
                let idx = ((g / scale) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect();
    let last = samples.last().map_or(f64::INFINITY, |&(_, g)| g);
    let window_ms = span
        .and_then(|s| s.closed_us.map(|c| (c.saturating_sub(s.opened_us)) as f64 / 1e3))
        .unwrap_or_else(|| {
            let t0 = samples.first().map_or(0, |&(t, _)| t);
            let t1 = samples.last().map_or(t0, |&(t, _)| t);
            (t1 - t0) as f64 / 1e3
        });
    let _ = writeln!(
        out,
        "  gap [{}] {line} [{}]  ({} samples over {window_ms:.1} ms)",
        fmt_gap(scale),
        fmt_gap(last),
        samples.len(),
    );
}

/// Bucket `(t, gap)` samples into `width` equal time slices; each slice
/// keeps its last sample (the state at the end of the slice). Empty slices
/// are `None` (rendered as blanks — time passing without movement).
fn time_buckets(samples: &[(u64, f64)], width: usize) -> Vec<Option<f64>> {
    let t0 = samples.first().map_or(0, |&(t, _)| t);
    let t1 = samples.last().map_or(t0, |&(t, _)| t);
    let range = (t1 - t0).max(1) as f64;
    let n = width.min(samples.len().max(1));
    let mut buckets = vec![None; n];
    for &(t, gap) in samples {
        let frac = (t - t0) as f64 / range;
        let idx = ((frac * n as f64) as usize).min(n - 1);
        buckets[idx] = Some(gap);
    }
    buckets
}

fn fmt_gap(gap: f64) -> String {
    if !gap.is_finite() {
        "∞".to_string()
    } else if gap == 0.0 {
        "0".to_string()
    } else if gap >= 0.0995 {
        format!("{:.0}%", gap * 100.0)
    } else {
        format!("{gap:.1e}")
    }
}

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.0} µs")
    }
}

/// `--assert-gap-closed`: every solve must have finished with status
/// `optimal` or a final gap within `tol`; a file with no solves at all
/// also fails (the instrumented run produced nothing to check). A
/// budget-terminated solve with zero nodes never *started* searching (the
/// deadline expired before the root expansion — the degradation ladder's
/// intended behaviour under a starved budget) and is reported but not
/// counted as an open gap.
fn assert_closed(solves: &[Solve], tol: f64) -> ExitCode {
    if solves.is_empty() {
        eprintln!("trace: --assert-gap-closed: no MILP solves in trace");
        return ExitCode::FAILURE;
    }
    let mut open = 0;
    let mut never_started = 0;
    for (i, solve) in solves.iter().enumerate() {
        match &solve.done {
            Some((status, _, gap)) if status == "optimal" || *gap <= tol => {}
            Some((status, nodes, _)) if *nodes == 0 && status.starts_with("terminated") => {
                never_started += 1;
            }
            Some((status, _, gap)) => {
                eprintln!(
                    "trace: solve #{} (span {}) not closed: status {status}, gap {}",
                    i + 1,
                    solve.span,
                    fmt_gap(*gap)
                );
                open += 1;
            }
            None => {
                eprintln!("trace: solve #{} (span {}) has no solve_done event", i + 1, solve.span);
                open += 1;
            }
        }
    }
    if open > 0 {
        eprintln!("trace: --assert-gap-closed: {open} solve(s) with an open gap");
        return ExitCode::FAILURE;
    }
    println!(
        "trace: --assert-gap-closed: all {} solve(s) closed ({never_started} never started)",
        solves.len() - never_started,
    );
    ExitCode::SUCCESS
}

/// `--assert-warm-rate <pct>`: at least `pct`% of all LP solves in the file
/// must have taken the warm dual-simplex path. A file with no LP solves
/// fails (nothing ran, so nothing was verified).
fn assert_warm(solves: &[Solve], pct: f64) -> ExitCode {
    let lp: u64 = solves.iter().map(|s| s.lp_solves).sum();
    if lp == 0 {
        eprintln!("trace: --assert-warm-rate: no lp_solved events in trace");
        return ExitCode::FAILURE;
    }
    let warm: u64 = solves.iter().map(|s| s.lp_warm).sum();
    let rate = 100.0 * warm as f64 / lp as f64;
    if rate + 1e-9 < pct {
        eprintln!(
            "trace: --assert-warm-rate: warm rate {rate:.1}% ({warm}/{lp}) below required {pct}%"
        );
        return ExitCode::FAILURE;
    }
    println!("trace: --assert-warm-rate: warm rate {rate:.1}% ({warm}/{lp}) >= {pct}%");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-written two-solve trace: one optimal, one deadline-terminated.
    const SAMPLE: &str = r#"
{"t_us":1,"worker":0,"span":1,"ev":"span_open","name":"request","parent":0}
{"t_us":2,"worker":0,"span":1,"ev":"enqueued"}
{"t_us":3,"worker":1,"span":1,"ev":"dequeued"}
{"t_us":4,"worker":1,"span":1,"ev":"cache_lookup","hit":false}
{"t_us":5,"worker":1,"span":1,"ev":"audit_gate","verdict":"pass","tightenings":3}
{"t_us":6,"worker":1,"span":2,"ev":"span_open","name":"rung:deterministic","parent":1}
{"t_us":7,"worker":1,"span":3,"ev":"span_open","name":"milp","parent":2}
{"t_us":8,"worker":1,"span":3,"ev":"node_opened","id":0,"depth":0,"bound":10.0}
{"t_us":9,"worker":1,"span":3,"ev":"lp_solved","iters":12,"status":"optimal"}
{"t_us":10,"worker":1,"span":3,"ev":"gap_sample","best_bound":10.0,"incumbent":null,"gap":null}
{"t_us":11,"worker":1,"span":3,"ev":"node_opened","id":1,"depth":1,"bound":10.5}
{"t_us":12,"worker":1,"span":3,"ev":"lp_solved","iters":2,"status":"optimal","warm":true}
{"t_us":12,"worker":1,"span":3,"ev":"node_integral","id":1,"objective":11.0}
{"t_us":13,"worker":1,"span":3,"ev":"incumbent_improved","objective":11.0}
{"t_us":14,"worker":1,"span":3,"ev":"gap_sample","best_bound":10.0,"incumbent":11.0,"gap":0.1}
{"t_us":15,"worker":1,"span":3,"ev":"node_opened","id":2,"depth":1,"bound":10.2}
{"t_us":16,"worker":1,"span":3,"ev":"node_pruned","id":2,"reason":"bound"}
{"t_us":17,"worker":1,"span":3,"ev":"gap_sample","best_bound":11.0,"incumbent":11.0,"gap":0.0}
{"t_us":18,"worker":1,"span":3,"ev":"solve_done","status":"optimal","nodes":3,"gap":0.0}
{"t_us":19,"worker":1,"span":3,"ev":"span_close"}
{"t_us":20,"worker":1,"span":2,"ev":"ladder_step","level":"deterministic","outcome":"solved","elapsed_us":14}
{"t_us":21,"worker":1,"span":2,"ev":"span_close"}
{"t_us":22,"worker":1,"span":1,"ev":"span_close"}
{"t_us":30,"worker":0,"span":4,"ev":"span_open","name":"milp","parent":0}
{"t_us":31,"worker":0,"span":4,"ev":"node_opened","id":0,"depth":0,"bound":5.0}
{"t_us":32,"worker":0,"span":4,"ev":"node_pruned","id":0,"reason":"infeasible"}
{"t_us":33,"worker":0,"span":4,"ev":"solve_done","status":"terminated:deadline","nodes":1,"gap":0.4}
{"t_us":34,"worker":0,"span":4,"ev":"span_close"}
"#;

    fn parsed() -> (Vec<Ev>, BTreeMap<u64, Span>) {
        let (events, errors) = parse_events(SAMPLE);
        assert_eq!(errors, 0);
        let spans = build_spans(&events);
        (events, spans)
    }

    #[test]
    fn solves_are_grouped_and_attributed() {
        let (events, spans) = parsed();
        let solves = collect_solves(&events, &spans);
        assert_eq!(solves.len(), 2);
        assert_eq!(solves[0].rung, "rung:deterministic");
        assert_eq!(solves[0].opened, 3);
        assert_eq!(solves[0].integral, 1);
        assert_eq!(solves[0].pruned.get("bound"), Some(&1));
        assert_eq!(solves[0].gap_samples.len(), 3);
        assert!(solves[0].gap_samples[0].1.is_infinite(), "null gap is ∞");
        assert_eq!(solves[0].done.as_ref().map(|d| d.0.as_str()), Some("optimal"));
        assert_eq!(solves[1].rung, "(standalone)");
        assert_eq!(solves[1].pruned.get("infeasible"), Some(&1));
    }

    #[test]
    fn rung_stats_aggregate_ladder_steps() {
        let (events, spans) = parsed();
        let rungs = collect_rung_stats(&events, &spans);
        let det = rungs.get("deterministic").expect("deterministic rung present");
        assert_eq!(det.attempts, 1);
        assert_eq!(det.total_us, 14);
        assert_eq!(det.outcomes.get("solved"), Some(&1));
    }

    #[test]
    fn report_renders_all_sections() {
        let (events, spans) = parsed();
        let solves = collect_solves(&events, &spans);
        let rungs = collect_rung_stats(&events, &spans);
        let report = render_report("t.jsonl", &events, &spans, &solves, &rungs, 0);
        assert!(report.contains("solve #1"), "{report}");
        assert!(report.contains("rung:deterministic"), "{report}");
        assert!(report.contains("depth histogram"), "{report}");
        assert!(report.contains("gap ["), "{report}");
        assert!(report.contains("rung latency:"), "{report}");
        assert!(report.contains("terminated:deadline"), "{report}");
    }

    #[test]
    fn warm_solves_are_split_from_cold() {
        let (events, spans) = parsed();
        let solves = collect_solves(&events, &spans);
        // solve #1: one cold lp_solved (no warm field — pre-warm trace
        // compatibility) and one warm at 2 pivots
        assert_eq!(solves[0].lp_solves, 2);
        assert_eq!(solves[0].lp_warm, 1);
        assert_eq!(solves[0].lp_warm_iters, 2);
        assert_eq!(solves[0].lp_cold_iters, 12);
        let rungs = collect_rung_stats(&events, &spans);
        let report = render_report("t.jsonl", &events, &spans, &solves, &rungs, 0);
        assert!(report.contains("warm start: 1/2 lp solves warm (50.0%)"), "{report}");
        assert!(report.contains("pivots saved"), "{report}");
    }

    #[test]
    fn assert_warm_rate_gates_on_the_file_rate() {
        let (events, spans) = parsed();
        let solves = collect_solves(&events, &spans);
        // 1 of 2 LP solves warm: 50% passes, 80% fails
        assert_eq!(assert_warm(&solves, 50.0), ExitCode::SUCCESS);
        assert_eq!(assert_warm(&solves, 80.0), ExitCode::FAILURE);
        // no LP solves at all is a failure, not a vacuous pass
        assert_eq!(assert_warm(&[], 0.0), ExitCode::FAILURE);
    }

    #[test]
    fn assert_gap_closed_flags_open_solves() {
        let (events, spans) = parsed();
        let solves = collect_solves(&events, &spans);
        // solve #2 terminated on deadline with gap 0.4 > tol after real work
        assert_eq!(assert_closed(&solves, 1e-6), ExitCode::FAILURE);
        // a generous tolerance admits it
        assert_eq!(assert_closed(&solves, 0.5), ExitCode::SUCCESS);
        // and no solves at all is a failure, not a vacuous pass
        assert_eq!(assert_closed(&[], 1e-6), ExitCode::FAILURE);
    }

    #[test]
    fn starved_solves_that_never_started_do_not_fail_the_gate() {
        let solve = Solve {
            span: 9,
            done: Some(("terminated:deadline".to_string(), 0, f64::INFINITY)),
            ..Default::default()
        };
        assert_eq!(assert_closed(&[solve], 1e-6), ExitCode::SUCCESS);
    }

    #[test]
    fn time_buckets_keep_last_sample_per_slice() {
        let samples = [(0, 1.0), (50, 0.5), (51, 0.4), (100, 0.0)];
        let buckets = time_buckets(&samples, 4);
        // slices are [0,25), [25,50), [50,75), [75,100]: both mid samples
        // land in the third slice and the later one wins
        assert_eq!(buckets, vec![Some(1.0), None, Some(0.4), Some(0.0)]);
    }

    #[test]
    fn torn_lines_are_skipped_not_fatal() {
        let src = "{\"t_us\":1,\"worker\":0,\"span\":0,\"ev\":\"enqueued\"}\n{\"t_us\":2,\"wor";
        let (events, errors) = parse_events(src);
        assert_eq!(events.len(), 1);
        assert_eq!(errors, 1);
    }
}
