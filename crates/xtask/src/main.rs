//! Workspace automation.
//!
//! * `cargo run -p xtask -- analyze` runs the full static-analysis gate
//!   from `rrp-lint`: the token-level solver-safety scan (no
//!   unwrap/panic/float-`==`) plus the concurrency passes (lock-order
//!   cycles, held-lock-across-blocking, atomic-ordering audit,
//!   unbounded growth), justified against `lint-allow.txt` (see
//!   [`analyze`]).
//! * `cargo run -p xtask -- lint` is the same gate under its historical
//!   name — kept so muscle memory and old scripts keep working.
//! * `cargo run -p xtask -- trace <file.jsonl>` renders a report from an
//!   `rrp-trace` JSONL stream (see [`trace`]); `--assert-gap-closed` is
//!   the CI assertion mode.
//! * `cargo run -p xtask -- watch <addr>` is a live terminal dashboard
//!   over an engine's `/metrics` endpoint (see [`watch`]).
//! * `cargo run -p xtask -- benchdiff <baseline.json> <current.json>`
//!   compares two `results/BENCH_*.json` files and fails on wall-clock
//!   regressions beyond a tolerance (see [`benchdiff`]); the
//!   `--assert-ratio A:B` mode gates one instance against another inside
//!   a single file (the profiler-overhead gate).
//! * `cargo run -p xtask -- simreport <report.json>` gates a closed-loop
//!   sim report: bounded realised/planned ratio, no stranded demand, no
//!   deadline misses (see [`simreport`]).
//! * `cargo run -p xtask -- prof <addr|file>` renders a continuous
//!   profile — live `/profile` scrape, collapsed file, or post-mortem
//!   bundle — as a self/total "top phases" table (see [`prof`]).
//! * `cargo run -p xtask -- postmortem <bundle.json>` renders a flight
//!   recorder's dump as an incident report (see [`postmortem`]).
//! * `cargo run -p xtask -- slo <addr|bundle.json>` renders an engine's
//!   per-tenant error budgets and burn rates as a table, plus a
//!   span-waterfall view of a tail-sampled exemplar timeline (see
//!   [`slo`]).

mod analyze;
mod benchdiff;
mod postmortem;
mod prof;
mod simreport;
mod slo;
mod trace;
mod watch;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze::run(&args[1..]),
        Some("lint") => analyze::run(&args[1..]),
        Some("trace") => trace::run(&args[1..]),
        Some("watch") => watch::run(&args[1..]),
        Some("benchdiff") => benchdiff::run(&args[1..]),
        Some("simreport") => simreport::run(&args[1..]),
        Some("prof") => prof::run(&args[1..]),
        Some("postmortem") => postmortem::run(&args[1..]),
        Some("slo") => slo::run(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- analyze [--deny all] [--json <path|->] [--bench-out <path>]\n       cargo run -p xtask -- trace <file.jsonl> [--assert-gap-closed] [--gap-tol <rel>]\n       cargo run -p xtask -- watch <addr> [--interval-ms <n>] [--frames <n>]\n       cargo run -p xtask -- benchdiff <baseline.json> <current.json> [--tol <frac>]\n       cargo run -p xtask -- benchdiff <results.json> --assert-ratio <inst>:<base> [--max-ratio <r>]\n       cargo run -p xtask -- simreport <report.json> [--assert-realised-ratio <ceiling>]\n       cargo run -p xtask -- prof <addr|collapsed.txt|bundle.json> [--top <n>] [--collapsed] [--no-color]\n       cargo run -p xtask -- postmortem <bundle.json> [--events <n>] [--no-color]\n       cargo run -p xtask -- slo <addr|bundle.json> [--timeline <request_id>] [--no-color]"
            );
            ExitCode::from(2)
        }
    }
}

/// The workspace root: two levels above this crate's manifest.
pub(crate) fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(manifest)
}
