//! Workspace automation.
//!
//! * `cargo run -p xtask -- lint` runs the solver-safety lint gate: a
//!   static scan of every library source file in `crates/*/src` for
//!   patterns that have no place on a solver hot path — aborts
//!   (`unwrap`/`expect`/`panic!`-family macros) and exact floating point
//!   equality. Violations fail the run unless they are recorded in
//!   `lint-allow.txt` (one `path: trimmed-line` entry per line) with a
//!   justification comment.
//! * `cargo run -p xtask -- trace <file.jsonl>` renders a report from an
//!   `rrp-trace` JSONL stream (see [`trace`]); `--assert-gap-closed` is
//!   the CI assertion mode.
//! * `cargo run -p xtask -- watch <addr>` is a live terminal dashboard
//!   over an engine's `/metrics` endpoint (see [`watch`]).
//! * `cargo run -p xtask -- benchdiff <baseline.json> <current.json>`
//!   compares two `results/BENCH_*.json` files and fails on wall-clock
//!   regressions beyond a tolerance (see [`benchdiff`]).
//! * `cargo run -p xtask -- simreport <report.json>` gates a closed-loop
//!   sim report: bounded realised/planned ratio, no stranded demand, no
//!   deadline misses (see [`simreport`]).
//!
//! The scan is line-based and deliberately simple: it skips `//` comments
//! and `#[cfg(test)] mod` blocks (test code may unwrap freely), and the
//! allowlist absorbs the rare justified use. It is a tripwire against
//! *new* debt, not a parser.

mod benchdiff;
mod simreport;
mod trace;
mod watch;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One forbidden pattern: the needle searched for and the rule label
/// reported with a hit.
const PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "no-unwrap"),
    (".expect(", "no-expect"),
    ("panic!(", "no-panic"),
    ("unreachable!(", "no-unreachable"),
    ("todo!(", "no-todo"),
    ("unimplemented!(", "no-unimplemented"),
    (".iter().nth(", "no-linear-nth"),
    (".remove(0)", "no-front-remove"),
];

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    content: String,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("trace") => trace::run(&args[1..]),
        Some("watch") => watch::run(&args[1..]),
        Some("benchdiff") => benchdiff::run(&args[1..]),
        Some("simreport") => simreport::run(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint\n       cargo run -p xtask -- trace <file.jsonl> [--assert-gap-closed] [--gap-tol <rel>]\n       cargo run -p xtask -- watch <addr> [--interval-ms <n>] [--frames <n>]\n       cargo run -p xtask -- benchdiff <baseline.json> <current.json> [--tol <frac>]\n       cargo run -p xtask -- simreport <report.json> [--assert-realised-ratio <ceiling>]"
            );
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let allow_path = root.join("lint-allow.txt");
    let allow_raw = fs::read_to_string(&allow_path).unwrap_or_default();
    let allowed: Vec<&str> =
        allow_raw.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#')).collect();

    let mut files = Vec::new();
    collect_library_sources(&root, &mut files);
    files.sort();

    let mut violations = Vec::new();
    for file in &files {
        let Ok(src) = fs::read_to_string(file) else {
            eprintln!("warning: unreadable source file {}", file.display());
            continue;
        };
        let rel = file.strip_prefix(&root).unwrap_or(file).to_string_lossy().replace('\\', "/");
        scan_file(&rel, &src, &mut violations);
    }

    let mut used = vec![false; allowed.len()];
    let mut failures = Vec::new();
    for v in violations {
        let key = format!("{}: {}", v.file, v.content);
        match allowed.iter().position(|&a| a == key) {
            Some(i) => used[i] = true,
            None => failures.push(v),
        }
    }

    for (i, &entry) in allowed.iter().enumerate() {
        if !used[i] {
            eprintln!("note: stale lint-allow.txt entry (no longer matches): {entry}");
        }
    }

    if failures.is_empty() {
        println!(
            "lint: {} files clean ({} allowlisted)",
            files.len(),
            used.iter().filter(|&&u| u).count()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("lint: {} violation(s):", failures.len());
    for v in &failures {
        eprintln!("  {}:{}: [{}] {}", v.file, v.line, v.rule, v.content);
    }
    eprintln!(
        "\nfix the line, or record it in lint-allow.txt as\n  <path>: <trimmed line>\nwith a comment justifying why it cannot fail."
    );
    ExitCode::FAILURE
}

/// The workspace root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(manifest)
}

/// Every `.rs` under `crates/*/src`, except this automation crate itself
/// (its source contains the forbidden patterns as search needles) and
/// `src/bin` CLI tools (a top-level binary may abort on bad input; the
/// gate protects library code that services and solvers link against).
fn collect_library_sources(root: &Path, out: &mut Vec<PathBuf>) {
    let crates = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates) else {
        return;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        if dir.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        walk_rs(&dir.join("src"), out);
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Scan one file, appending violations. Lines inside `#[cfg(test)]`-gated
/// blocks and `//` comments are exempt.
fn scan_file(rel: &str, src: &str, out: &mut Vec<Violation>) {
    // depth of the brace block being skipped, when inside #[cfg(test)]
    let mut skip_depth: Option<i64> = None;
    let mut pending_cfg_test = false;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if let Some(depth) = skip_depth.as_mut() {
            *depth += brace_delta(line);
            if *depth <= 0 {
                skip_depth = None;
            }
            continue;
        }
        if line.starts_with("//") {
            continue;
        }
        if line.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if line.starts_with("#[") || line.is_empty() {
                continue; // more attributes between cfg(test) and the item
            }
            let d = brace_delta(line);
            pending_cfg_test = false;
            if d > 0 {
                skip_depth = Some(d);
            }
            continue;
        }
        let code = strip_line_comment(line);
        for &(needle, rule) in PATTERNS {
            if code.contains(needle) {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule,
                    content: line.to_string(),
                });
            }
        }
        if has_float_eq(code) {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "no-float-eq",
                content: line.to_string(),
            });
        }
    }
}

/// `{`-minus-`}` count of a line, ignoring braces inside string literals.
fn brace_delta(line: &str) -> i64 {
    let mut delta = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '{' if !in_str => delta += 1,
            '}' if !in_str => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Cut the line at a `//` that is not inside a string literal.
fn strip_line_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    for i in 0..b.len() {
        if escaped {
            escaped = false;
            continue;
        }
        match b[i] {
            b'\\' if in_str => escaped = true,
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < b.len() && b[i + 1] == b'/' => return &line[..i],
            _ => {}
        }
    }
    line
}

/// True when the line compares with `==`/`!=` and either operand is a
/// floating-point literal. Exact float equality on a solver path is almost
/// always a tolerance bug; spell a genuine bit-compare via `to_bits()` or
/// allowlist it.
fn has_float_eq(code: &str) -> bool {
    let b = code.as_bytes();
    let mut i = 0;
    while i + 1 < b.len() {
        let is_eq = b[i] == b'=' && b[i + 1] == b'=';
        let is_ne = b[i] == b'!' && b[i + 1] == b'=';
        if is_eq || is_ne {
            let prev = if i == 0 { b' ' } else { b[i - 1] };
            let next = if i + 2 < b.len() { b[i + 2] } else { b' ' };
            // for `==`, make sure this is not the tail of `!=`/`<=`-style
            // compounds; `!=` is unambiguous on its own
            let standalone = is_ne || (!matches!(prev, b'<' | b'>' | b'=' | b'!') && next != b'=');
            if standalone {
                let left = token_before(code, i);
                let right = token_after(code, i + 2);
                if is_float_literal(&left) || is_float_literal(&right) {
                    return true;
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    false
}

fn token_before(code: &str, end: usize) -> String {
    let b = code.as_bytes();
    let mut i = end;
    while i > 0 && (b[i - 1] == b' ') {
        i -= 1;
    }
    let stop = i;
    while i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'.' || b[i - 1] == b'_') {
        i -= 1;
    }
    code[i..stop].to_string()
}

fn token_after(code: &str, start: usize) -> String {
    let b = code.as_bytes();
    let mut i = start;
    while i < b.len() && b[i] == b' ' {
        i += 1;
    }
    let begin = i;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'.' || b[i] == b'_') {
        i += 1;
    }
    code[begin..i].to_string()
}

/// `1.0`, `0.5f64`, `1e-9`, `2.` — digits with a dot or an exponent. Must
/// start with a digit (Rust has no `.5` literal, and `.0` here is a tuple
/// field access).
fn is_float_literal(tok: &str) -> bool {
    let t = tok.trim_end_matches("f64").trim_end_matches("f32").trim_end_matches('_');
    if !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let mut has_digit = false;
    let mut has_dot_or_exp = false;
    for c in t.chars() {
        match c {
            '0'..='9' => has_digit = true,
            '.' => has_dot_or_exp = true,
            'e' | 'E' => has_dot_or_exp = has_digit, // exponent needs a mantissa
            '_' | '+' | '-' => {}
            _ => return false,
        }
    }
    has_digit && has_dot_or_exp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(src: &str) -> Vec<String> {
        let mut v = Vec::new();
        scan_file("x.rs", src, &mut v);
        v.into_iter().map(|x| x.rule.to_string()).collect()
    }

    #[test]
    fn forbidden_patterns_flagged_outside_tests() {
        let rules = hits("fn f() {\n    let x = y.unwrap();\n}\n");
        assert_eq!(rules, ["no-unwrap"]);
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn lib2() { z.unwrap(); }\n";
        assert_eq!(hits(src), ["no-unwrap"]); // only lib2's
    }

    #[test]
    fn comments_are_exempt() {
        assert!(hits("// calls .unwrap() freely\nfn f() {} // then .unwrap()\n").is_empty());
    }

    #[test]
    fn float_eq_detected() {
        assert_eq!(hits("fn f(a: f64) { if a == 0.0 {} }\n"), ["no-float-eq"]);
        assert_eq!(hits("fn f(a: f64) { if 1.5 != a {} }\n"), ["no-float-eq"]);
        assert!(hits("fn f(a: usize) { if a == 0 {} }\n").is_empty());
        assert!(hits("fn f(a: f64, b: f64) { if a <= 0.0 {} }\n").is_empty());
    }

    #[test]
    fn float_literal_shapes() {
        assert!(is_float_literal("1.0"));
        assert!(is_float_literal("0.5f64"));
        assert!(is_float_literal("1e-9"));
        assert!(!is_float_literal("0"));
        assert!(!is_float_literal("Some"));
        assert!(!is_float_literal(""));
    }
}
