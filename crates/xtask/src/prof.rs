//! `cargo run -p xtask -- prof <addr|file>` — render a continuous-profile
//! as collapsed stacks and an ANSI "top phases" table.
//!
//! Input is one of:
//!
//! * a live engine's obs address (`127.0.0.1:9184`) — scrapes `/profile`;
//! * a collapsed-stack text file (`path;path;leaf count` per line), e.g.
//!   a saved `/profile` body;
//! * a post-mortem bundle (`rrp-postmortem/1` JSON) — profiles the
//!   bundle's `samples` section.
//!
//! The table attributes each span phase two ways: **self** (samples whose
//! innermost frame is the phase — time spent *in* it) and **total**
//! (samples with the phase anywhere on the stack — time spent *under*
//! it). `--collapsed` skips the table and emits the raw collapsed-stack
//! text, which downstream flamegraph tooling consumes directly.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use serde_json::Value;

/// Maximum bar width in glyphs (matches the watch dashboard).
const WIDTH: usize = 32;

pub fn run(args: &[String]) -> ExitCode {
    let mut source = None;
    let mut top = 12usize;
    let mut color = true;
    let mut collapsed_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => top = n.max(1),
                None => return usage("--top needs an integer argument"),
            },
            "--no-color" => color = false,
            "--collapsed" => collapsed_only = true,
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            a => {
                if source.replace(a.to_string()).is_some() {
                    return usage("more than one input given");
                }
            }
        }
    }
    let Some(source) = source else {
        return usage("no input given (an obs address, a collapsed file, or a bundle)");
    };

    let collapsed = match load(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("prof: {e}");
            return ExitCode::FAILURE;
        }
    };
    if collapsed_only {
        print!("{collapsed}");
        return ExitCode::SUCCESS;
    }
    let (rows, total) = aggregate(&collapsed);
    if total == 0 {
        eprintln!("prof: no samples in `{source}` (is the engine's profiler enabled?)");
        return ExitCode::FAILURE;
    }
    print!("{}", render_table(&rows, total, top, color));
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("prof: {msg}");
    eprintln!(
        "usage: cargo run -p xtask -- prof <addr|collapsed.txt|bundle.json> [--top <n>] [--collapsed] [--no-color]"
    );
    ExitCode::from(2)
}

/// Resolve the input to collapsed-stack text. A readable file wins over an
/// address interpretation; a JSON file is treated as a post-mortem bundle.
fn load(source: &str) -> Result<String, String> {
    if let Ok(body) = std::fs::read_to_string(source) {
        if body.trim_start().starts_with('{') {
            return bundle_to_collapsed(&body);
        }
        return Ok(body);
    }
    if source.contains(':') {
        return match http_get(source, "/profile") {
            Some((200, body)) => Ok(body),
            Some((404, _)) => {
                Err(format!("{source} serves no profile — engine runs without `ProfConfig`"))
            }
            Some((code, _)) => Err(format!("{source}/profile answered HTTP {code}")),
            None => Err(format!("cannot reach {source}/profile")),
        };
    }
    Err(format!("`{source}` is neither a readable file nor an obs address"))
}

/// Extract a bundle's `samples` section as collapsed-stack text.
pub(crate) fn bundle_to_collapsed(body: &str) -> Result<String, String> {
    let v: Value = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let samples = v
        .get("samples")
        .and_then(Value::as_array)
        .ok_or("bundle has no `samples` array (not an rrp-postmortem/1 document?)")?;
    let mut out = String::new();
    for s in samples {
        let stack = s.get("stack").and_then(Value::as_str).unwrap_or_default();
        let count = s.get("count").and_then(Value::as_u64).unwrap_or(0);
        if !stack.is_empty() && count > 0 {
            let _ = writeln!(out, "{stack} {count}");
        }
    }
    Ok(out)
}

/// Per-phase attribution of a collapsed-stack profile.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct PhaseRow {
    pub phase: String,
    /// Samples whose innermost frame is this phase.
    pub self_n: u64,
    /// Samples with this phase anywhere on the stack.
    pub total_n: u64,
}

/// Fold collapsed lines (`a;b;leaf count`) into per-phase self/total
/// counts plus the sample denominator. Unparseable lines are skipped —
/// profiles travel through copy-paste.
pub(crate) fn aggregate(collapsed: &str) -> (Vec<PhaseRow>, u64) {
    let mut phases: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    let mut total = 0u64;
    for line in collapsed.lines() {
        let Some((path, count)) = line.rsplit_once(' ') else { continue };
        let Ok(count) = count.parse::<u64>() else { continue };
        let frames: Vec<&str> = path.split(';').filter(|f| !f.is_empty()).collect();
        let Some(&leaf) = frames.last() else { continue };
        total += count;
        phases.entry(leaf).or_default().0 += count;
        // total-time: count each phase once per path, even if recursion
        // put it on the stack twice
        let mut seen: Vec<&str> = Vec::with_capacity(frames.len());
        for f in frames {
            if !seen.contains(&f) {
                seen.push(f);
                phases.entry(f).or_default().1 += count;
            }
        }
    }
    let mut rows: Vec<PhaseRow> = phases
        .into_iter()
        .map(|(phase, (self_n, total_n))| PhaseRow { phase: phase.to_string(), self_n, total_n })
        .collect();
    rows.sort_by(|a, b| b.self_n.cmp(&a.self_n).then_with(|| a.phase.cmp(&b.phase)));
    (rows, total)
}

/// The "top phases" table. `total` is the sample denominator; rows beyond
/// `top` are folded into a remainder line so percentages always add up.
pub(crate) fn render_table(rows: &[PhaseRow], total: u64, top: usize, color: bool) -> String {
    let (bold, dim, accent, reset) =
        if color { ("\x1b[1m", "\x1b[2m", "\x1b[36m", "\x1b[0m") } else { ("", "", "", "") };
    let mut out = String::with_capacity(1024);
    let width = rows.iter().take(top).map(|r| r.phase.len()).max().unwrap_or(5).max(5);
    let _ = writeln!(out, "{bold}top phases — {total} samples{reset}");
    let _ = writeln!(
        out,
        "{dim}  {:<width$}  {:>6}  {:>6}  {:>8}{reset}",
        "phase", "self%", "total%", "samples"
    );
    let mut shown = 0u64;
    for r in rows.iter().take(top) {
        let self_pct = 100.0 * r.self_n as f64 / total as f64;
        let total_pct = 100.0 * r.total_n as f64 / total as f64;
        let bar_w = ((r.self_n as f64 / total as f64) * WIDTH as f64).ceil() as usize;
        let bar: String = "█".repeat(if r.self_n > 0 { bar_w.max(1) } else { 0 });
        let _ = writeln!(
            out,
            "  {:<width$}  {self_pct:>5.1}%  {total_pct:>5.1}%  {:>8}  {accent}{bar}{reset}",
            r.phase, r.self_n
        );
        shown += r.self_n;
    }
    let rest = total - shown;
    if rest > 0 {
        let _ = writeln!(
            out,
            "{dim}  {:<width$}  {:>5.1}%                 ({} more phases){reset}",
            "(other)",
            100.0 * rest as f64 / total as f64,
            rows.len().saturating_sub(top)
        );
    }
    out
}

/// Minimal HTTP/1.1 GET returning (status, body).
fn http_get(addr: &str, path: &str) -> Option<(u16, String)> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes()).ok()?;
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8(raw).ok()?;
    let (head, body) = text.split_once("\r\n\r\n")?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    Some((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROFILE: &str = "request 10\n\
                           request;rung:full;milp 70\n\
                           request;rung:full 5\n\
                           request;rung:deterministic;milp 15\n";

    #[test]
    fn self_and_total_attribution() {
        let (rows, total) = aggregate(PROFILE);
        assert_eq!(total, 100);
        let row = |p: &str| rows.iter().find(|r| r.phase == p).expect(p);
        // milp leads self-time across both rungs
        assert_eq!(row("milp").self_n, 85);
        assert_eq!(row("milp").total_n, 85);
        // request's total covers every sample, its self only the bare line
        assert_eq!(row("request").self_n, 10);
        assert_eq!(row("request").total_n, 100);
        assert_eq!(row("rung:full").self_n, 5);
        assert_eq!(row("rung:full").total_n, 75);
        // sorted by self descending
        assert_eq!(rows[0].phase, "milp");
    }

    #[test]
    fn recursion_counts_total_once_per_path() {
        let (rows, total) = aggregate("a;b;a 4\n");
        assert_eq!(total, 4);
        let a = rows.iter().find(|r| r.phase == "a").unwrap();
        assert_eq!(a.total_n, 4, "phase on the stack twice still counts one path");
        assert_eq!(a.self_n, 4);
    }

    #[test]
    fn garbage_lines_are_skipped() {
        let (rows, total) = aggregate("not a profile\n\nrequest 3\nbad count x\n");
        assert_eq!(total, 3);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn table_renders_and_truncates() {
        let (rows, total) = aggregate(PROFILE);
        let t = render_table(&rows, total, 2, false);
        assert!(t.contains("top phases — 100 samples"), "{t}");
        assert!(t.contains("milp"), "{t}");
        assert!(t.contains("(other)"), "{t}");
        assert!(!t.contains('\x1b'), "--no-color strips ANSI: {t:?}");
        let colored = render_table(&rows, total, 2, true);
        assert!(colored.contains('\x1b'));
    }

    #[test]
    fn bundle_samples_convert_to_collapsed() {
        let body = r#"{"schema":"rrp-postmortem/1","samples":[
            {"stack":"request;milp","count":7},{"stack":"request","count":2}]}"#;
        let c = bundle_to_collapsed(body).unwrap();
        assert_eq!(c, "request;milp 7\nrequest 2\n");
        assert!(bundle_to_collapsed("{}").is_err());
    }
}
