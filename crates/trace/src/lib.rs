//! # rrp-trace — structured solver telemetry
//!
//! A std-only span/event subsystem threaded through the whole solve path:
//! LP simplex iterations and basis factorisations, branch & bound search
//! tree events and gap samples, audit-gate verdicts, and engine request
//! lifecycles. The design goals, in order:
//!
//! 1. **Zero cost when off.** Instrumented code holds a [`TraceHandle`];
//!    the default handle is disabled and every emit is one branch — no
//!    clock read, no allocation, no lock. [`NullSink`] exists for slots
//!    that require a sink object.
//! 2. **Never block the solver.** [`RingSink`] drops oldest (counting
//!    drops) instead of waiting; [`JsonlSink`] takes one short lock per
//!    line and swallows I/O errors; [`CounterSink`] is all relaxed
//!    atomics. All sinks are `Sync` — the parallel B&B emits from many
//!    lanes at once.
//! 3. **Machine-readable.** Events serialise as flat single-line JSON
//!    tagged by `"ev"`, so a JSONL trace is greppable and the `xtask
//!    trace` renderer needs no schema.
//!
//! Spans ([`SpanId`]) scope events: the engine opens a `request` span per
//! submission, the ladder a `rung:*` span per attempt, the MILP solver a
//! `milp` span per search. Every open is matched by exactly one close and
//! all events of a span fall between the two — a property pinned by tests.
//!
//! ```
//! use std::sync::Arc;
//! use rrp_trace::{EventKind, RingSink, SpanId, TraceHandle};
//!
//! let ring = Arc::new(RingSink::new(1024));
//! let trace = TraceHandle::new(ring.clone());
//! let span = trace.open_span("milp", SpanId::ROOT);
//! trace.emit(span, EventKind::NodeOpened { id: 1, depth: 0, bound: f64::NEG_INFINITY });
//! trace.close_span(span);
//! assert_eq!(ring.drain().len(), 3);
//! ```

mod event;
mod handle;
mod hist;
mod sink;
mod stack;

pub use event::{Event, EventKind, PruneReason};
pub use handle::{
    current_worker, set_worker, with_worker, SpanGuard, SpanId, StackFrameGuard, TraceHandle,
};
pub use hist::LogHistogram;
pub use sink::{CounterSink, JsonlSink, NullSink, RingSink, Sink, TeeSink};
pub use stack::{SpanStacks, MAX_LANES, MAX_STACK_DEPTH};
