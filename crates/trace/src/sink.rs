//! Event sinks: where emitted events go. All sinks are `Sync` — the
//! parallel branch & bound emits from several lanes at once — and none may
//! block the solver hot path (the ring buffer drops oldest instead of
//! waiting; the JSONL writer takes one short lock per line).

use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{Event, EventKind};
use crate::hist::LogHistogram;

/// Receives every emitted [`Event`]. Implementations must be cheap and
/// non-blocking: `emit` runs on solver threads.
pub trait Sink: Send + Sync {
    fn emit(&self, ev: &Event);
    /// Persist anything buffered. Default: nothing to do.
    fn flush(&self) {}
    /// Events this sink has discarded under pressure (e.g. a full ring).
    /// Default: a sink that never drops reports 0. Lets the engine surface
    /// loss through `Arc<dyn Sink>` without downcasting.
    fn dropped_events(&self) -> u64 {
        0
    }
}

/// Discards everything. Useful when a sink slot must be filled but no
/// telemetry is wanted; prefer [`crate::TraceHandle::off`] where possible
/// (it skips even the timestamp read).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    fn emit(&self, _ev: &Event) {}
}

/// Fixed-capacity in-memory ring. When full it drops the *oldest* event
/// and counts the drop — the solver never blocks on a slow consumer.
pub struct RingSink {
    buf: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Events dropped because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Take every buffered event, oldest first, leaving the ring empty.
    pub fn drain(&self) -> Vec<Event> {
        self.buf.lock().drain(..).collect()
    }

    /// Copy the buffered events, oldest first, without clearing.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.lock().iter().cloned().collect()
    }
}

impl Sink for RingSink {
    fn emit(&self, ev: &Event) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(ev.clone());
    }

    fn dropped_events(&self) -> u64 {
        RingSink::dropped_events(self)
    }
}

/// Streams events as JSON lines to any writer (usually a file). Write
/// errors are swallowed — telemetry must never fail the solve.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events to it.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Stream to an arbitrary writer.
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        Self { out: Mutex::new(BufWriter::new(w)) }
    }
}

impl Sink for JsonlSink {
    fn emit(&self, ev: &Event) {
        let mut line = ev.to_json();
        line.push('\n');
        let _ = self.out.lock().write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.lock().flush();
    }
}

/// Fans every event out to all inner sinks, in order.
pub struct TeeSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl TeeSink {
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        Self { sinks }
    }
}

impl Sink for TeeSink {
    fn emit(&self, ev: &Event) {
        for s in &self.sinks {
            s.emit(ev);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }

    fn dropped_events(&self) -> u64 {
        self.sinks.iter().map(|s| s.dropped_events()).sum()
    }
}

/// Lock-free aggregate counters over the event stream — the bridge from
/// per-event telemetry to `MetricsSnapshot`-style scalars. Always safe to
/// leave attached: every update is a relaxed atomic.
#[derive(Default)]
pub struct CounterSink {
    /// Branch & bound nodes opened.
    pub milp_nodes: AtomicU64,
    /// Total simplex iterations across all LP solves.
    pub lp_iters: AtomicU64,
    /// LP solves finished.
    pub lp_solves: AtomicU64,
    /// LP solves that completed on the warm dual-simplex path.
    pub lp_warm: AtomicU64,
    /// Incumbent improvements observed.
    pub incumbents: AtomicU64,
    /// Basis (re)factorisations.
    pub refactorisations: AtomicU64,
    /// Relative gaps reported by solves that stopped on a budget
    /// (`solve_done` with a `terminated:*` status).
    pub gap_at_timeout: LogHistogram,
    /// Events seen in total.
    pub events: AtomicU64,
}

impl CounterSink {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for CounterSink {
    fn emit(&self, ev: &Event) {
        self.events.fetch_add(1, Ordering::Relaxed);
        match &ev.kind {
            EventKind::NodeOpened { .. } => {
                self.milp_nodes.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::LpSolved { iters, warm, .. } => {
                self.lp_solves.fetch_add(1, Ordering::Relaxed);
                self.lp_iters.fetch_add(*iters as u64, Ordering::Relaxed);
                if *warm {
                    self.lp_warm.fetch_add(1, Ordering::Relaxed);
                }
            }
            EventKind::IncumbentImproved { .. } => {
                self.incumbents.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::Refactored { .. } => {
                self.refactorisations.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::SolveDone { status, gap, .. } if status.starts_with("terminated") => {
                self.gap_at_timeout.record(*gap);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanId;

    fn ev(kind: EventKind) -> Event {
        Event { t_us: 0, worker: 0, span: SpanId::ROOT, kind }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let ring = RingSink::new(3);
        for i in 0..5u64 {
            ring.emit(&ev(EventKind::NodeOpened { id: i, depth: 0, bound: 0.0 }));
        }
        assert_eq!(ring.dropped_events(), 2);
        let kept = ring.drain();
        let ids: Vec<u64> = kept
            .iter()
            .map(|e| match e.kind {
                EventKind::NodeOpened { id, .. } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, [2, 3, 4]);
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::to_writer(Box::new(Shared(Arc::clone(&buf))));
        sink.emit(&ev(EventKind::Enqueued));
        sink.emit(&ev(EventKind::Dequeued));
        sink.flush();
        let text = String::from_utf8(buf.lock().clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"enqueued\""));
        assert!(lines[1].contains("\"ev\":\"dequeued\""));
    }

    #[test]
    fn counter_sink_aggregates() {
        let c = CounterSink::new();
        c.emit(&ev(EventKind::NodeOpened { id: 1, depth: 0, bound: 0.0 }));
        c.emit(&ev(EventKind::NodeOpened { id: 2, depth: 1, bound: 0.5 }));
        c.emit(&ev(EventKind::LpSolved { iters: 11, status: "optimal", warm: true }));
        c.emit(&ev(EventKind::IncumbentImproved { objective: 1.0 }));
        c.emit(&ev(EventKind::SolveDone { status: "terminated:deadline", nodes: 2, gap: 0.25 }));
        c.emit(&ev(EventKind::SolveDone { status: "optimal", nodes: 2, gap: 0.0 }));
        assert_eq!(c.milp_nodes.load(Ordering::Relaxed), 2);
        assert_eq!(c.lp_iters.load(Ordering::Relaxed), 11);
        assert_eq!(c.lp_warm.load(Ordering::Relaxed), 1);
        assert_eq!(c.incumbents.load(Ordering::Relaxed), 1);
        assert_eq!(c.gap_at_timeout.count(), 1);
        let p50 = c.gap_at_timeout.quantile(0.5);
        assert!((p50 - 0.25).abs() / 0.25 < 0.1, "p50 {p50}");
    }

    #[test]
    fn tee_fans_out() {
        let a = Arc::new(RingSink::new(4));
        let b = Arc::new(CounterSink::new());
        let tee = TeeSink::new(vec![a.clone() as Arc<dyn Sink>, b.clone() as Arc<dyn Sink>]);
        tee.emit(&ev(EventKind::NodeOpened { id: 0, depth: 0, bound: 0.0 }));
        assert_eq!(a.len(), 1);
        assert_eq!(b.milp_nodes.load(Ordering::Relaxed), 1);
    }
}
