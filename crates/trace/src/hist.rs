//! Fixed-size log-scale histogram with atomic buckets: constant memory,
//! lock-free recording, bounded quantile error.
//!
//! Buckets grow geometrically by `2^(1/4)` (≈ 1.19×) from a base of
//! `1e-9`, 200 buckets, so the covered range is `[1e-9, ~1.1e6)` — wide
//! enough for both millisecond latencies (1 ps … ~18 min when recorded in
//! ms) and relative MILP gaps (1e-9 … 1). A quantile answer is the
//! geometric midpoint of its bucket, so its relative error is at most
//! `2^(1/8) − 1 ≈ 9.05%`; values outside the range clamp to the first or
//! last bucket.

use std::sync::atomic::{AtomicU64, Ordering};

/// Smallest representable value; anything at or below lands in bucket 0.
const BASE: f64 = 1e-9;
/// Buckets per doubling (growth ratio `2^(1/SUB)` per bucket).
const SUB: f64 = 4.0;
/// Number of buckets: covers `BASE · 2^(200/4) ≈ 1.1e6`.
const BUCKETS: usize = 200;

/// Lock-free log-scale histogram of non-negative `f64` samples.
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v.is_nan() || v <= BASE {
            // NaN and sub-base values clamp low
            return 0;
        }
        let idx = (SUB * (v / BASE).log2()).floor();
        if idx < 0.0 {
            0
        } else if idx >= (BUCKETS - 1) as f64 {
            BUCKETS - 1
        } else {
            idx as usize
        }
    }

    /// The value reported for bucket `i`: its geometric midpoint.
    fn bucket_mid(i: usize) -> f64 {
        BASE * ((i as f64 + 0.5) / SUB).exp2()
    }

    /// Record one sample (relaxed atomics; safe from any thread).
    pub fn record(&self, v: f64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold `other`'s buckets into this histogram (bucket-wise add).
    ///
    /// The layout is identical for every instance (same base, growth and
    /// bucket count), so merging loses nothing beyond the resolution both
    /// histograms already had. Used to assemble one quantile view over
    /// per-shard histograms without making the record path cross shards.
    /// Concurrent recording into `other` during the merge may leave the
    /// merged count behind by the in-flight samples — the same point-in-
    /// time semantics every other snapshot counter has.
    pub fn merge_from(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`): the geometric midpoint of
    /// the bucket holding the rank. 0 when empty. Relative error vs. the
    /// exact sample quantile is bounded by `2^(1/8) − 1 ≈ 9.05%` for
    /// in-range samples.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((n - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen > rank {
                return Self::bucket_mid(i);
            }
        }
        // counts raced upward between loads; answer from the top bucket
        Self::bucket_mid(BUCKETS - 1)
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LogHistogram(count={})", self.count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_error_is_bounded() {
        let h = LogHistogram::new();
        // latencies in ms across 5 decades
        let samples: Vec<f64> = (1..=1000).map(|i| 0.01 * i as f64).collect();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.5, 0.9, 0.99] {
            let exact = samples[((samples.len() - 1) as f64 * q).round() as usize];
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(rel <= 0.0906, "q={q}: exact {exact} approx {approx} rel {rel}");
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(1e12);
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.0) < 2e-9);
        assert!(h.quantile(1.0) > 1e5);
    }

    #[test]
    fn empty_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let (a, b, merged, direct) =
            (LogHistogram::new(), LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
        for i in 1..=500 {
            let v = 0.03 * i as f64;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            };
            direct.record(v);
        }
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.count(), direct.count());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(q), direct.quantile(q), "q={q}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 * 1e-3);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
