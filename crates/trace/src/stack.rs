//! Lock-free per-lane span-stack snapshots for the sampling profiler.
//!
//! Each worker lane publishes its currently-open span path (the names of
//! the spans between the root and the innermost open span) into a fixed
//! slot guarded by a *seqlock*: the writer bumps a sequence counter to an
//! odd value, rewrites the frames, and bumps it back to even; a reader
//! that observes the same even value before and after copying the frames
//! holds a consistent snapshot, and retries (or gives up — sampling may
//! always skip a busy lane) otherwise. The writer never waits: push and
//! pop are a handful of uncontended atomic stores, no allocation, no
//! locks, so publishing costs the instrumented worker almost nothing even
//! with the sampler running hot.
//!
//! Frames hold interned name ids, not pointers — a torn read can at worst
//! mix ids from two valid stacks, and the seqlock validation discards
//! exactly those. Interning is lock-free on the hot path (an
//! open-addressed probe over published slots); only the *first* sighting
//! of a name takes a mutex, and the set of span names is a small static
//! vocabulary.
//!
//! Ordering argument (the data slots are deliberately `Relaxed`): the
//! writer's odd store is separated from the frame writes by a `Release`
//! fence and the final even store is itself `Release`; the reader loads
//! the sequence with `Acquire`, copies frames `Relaxed`, issues an
//! `Acquire` fence, and re-reads the sequence. If any frame read observed
//! a write from an in-flight update, the fences force the re-read to see
//! that writer's odd value, which fails validation. This is the classic
//! seqlock construction; the loom model in `tests/loom_stack.rs` checks
//! the interleavings and `rrp-lint`'s relaxed allowlist records the
//! argument.

use std::sync::atomic::{fence, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Lock a mutex, recovering the guard from a poisoned lock. The intern
/// list holds only `&'static str`s and is push-only, so a panic between
/// lock and unlock cannot leave it half-updated in any way that matters;
/// wedging every later intern (and the sampler) would.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Number of publishable lanes. Lane indices wrap modulo this, so an
/// engine scaled past it aliases lanes rather than racing or panicking
/// (aliased lanes would interleave pushes from two writers — see
/// [`SpanStacks::push`] for why the engine keeps lanes distinct).
pub const MAX_LANES: usize = 64;

/// Deepest publishable span path. Deeper pushes still count depth (so the
/// matching pops stay symmetric) but the frames beyond the cap are not
/// recorded; the sampler sees a truncated-at-16 path.
pub const MAX_STACK_DEPTH: usize = 16;

/// Open-addressed name-intern table size (power of two).
const NAME_SLOTS: usize = 256;
/// Probe window before falling back to the mutex-guarded slow path.
const PROBE_LIMIT: usize = 16;
/// Seqlock read attempts before the sampler skips the lane.
const SAMPLE_RETRIES: usize = 8;

struct Lane {
    /// Seqlock sequence: even = stable, odd = write in flight.
    seq: AtomicU32,
    /// Logical depth (may exceed `MAX_STACK_DEPTH`; frames are capped).
    depth: AtomicU32,
    /// Interned name ids, root at index 0.
    frames: [AtomicU32; MAX_STACK_DEPTH],
}

impl Lane {
    fn new() -> Self {
        Self {
            seq: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }
}

struct NameSlot {
    /// `as_ptr()` of the interned `&'static str`; 0 = empty. Published
    /// last (`Release`) so a visible pointer implies `len`/`id` are set.
    ptr: AtomicUsize,
    len: AtomicUsize,
    id: AtomicU32,
}

/// Interns `&'static str` span names to dense non-zero `u32` ids so a
/// stack frame is a single atomic word. Lookups on already-seen names are
/// lock-free; first sightings serialise on a mutex (cold: the span-name
/// vocabulary is static and tiny). Two distinct statics with equal text
/// get distinct ids — harmless, they resolve to the same string.
struct NameTable {
    slots: [NameSlot; NAME_SLOTS],
    /// id - 1 indexes this list. Guards inserts; readers lock briefly.
    list: Mutex<Vec<&'static str>>,
}

impl NameTable {
    fn new() -> Self {
        Self {
            slots: std::array::from_fn(|_| NameSlot {
                ptr: AtomicUsize::new(0),
                len: AtomicUsize::new(0),
                id: AtomicU32::new(0),
            }),
            list: Mutex::new(Vec::new()),
        }
    }

    fn slot_of(ptr: usize, i: usize) -> usize {
        (ptr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32).wrapping_add(i) % NAME_SLOTS
    }

    fn intern(&self, name: &'static str) -> u32 {
        let (p, n) = (name.as_ptr() as usize, name.len());
        for i in 0..PROBE_LIMIT {
            let slot = &self.slots[Self::slot_of(p, i)];
            let sp = slot.ptr.load(Ordering::Acquire);
            if sp == p && slot.len.load(Ordering::Relaxed) == n {
                // relaxed-ok: the Acquire on ptr (stored last, Release)
                // ordered the len/id stores before this load
                return slot.id.load(Ordering::Relaxed);
            }
            if sp == 0 {
                break;
            }
        }
        self.intern_slow(name)
    }

    /// First sighting (or full probe window): serialise on the list lock,
    /// re-probe, then claim an empty slot — `ptr` stored last with
    /// `Release` so lock-free probers never see a half-built slot.
    fn intern_slow(&self, name: &'static str) -> u32 {
        let (p, n) = (name.as_ptr() as usize, name.len());
        let mut list = lock(&self.list);
        for i in 0..PROBE_LIMIT {
            let slot = &self.slots[Self::slot_of(p, i)];
            let sp = slot.ptr.load(Ordering::Relaxed);
            if sp == p && slot.len.load(Ordering::Relaxed) == n {
                return slot.id.load(Ordering::Relaxed);
            }
            if sp == 0 {
                let id = (list.len() + 1) as u32;
                list.push(name);
                slot.len.store(n, Ordering::Relaxed);
                slot.id.store(id, Ordering::Relaxed);
                slot.ptr.store(p, Ordering::Release);
                return id;
            }
        }
        // probe window exhausted: the list itself is the overflow table
        if let Some(pos) = list.iter().position(|s| s.as_ptr() as usize == p && s.len() == n) {
            return (pos + 1) as u32;
        }
        list.push(name);
        list.len() as u32
    }

    fn name_of(&self, id: u32) -> Option<&'static str> {
        if id == 0 {
            return None;
        }
        lock(&self.list).get(id as usize - 1).copied()
    }
}

/// The shared publication surface: one seqlocked stack per worker lane
/// plus the name-intern table. Writers are the instrumented worker
/// threads (each owns its lane — [`crate::set_worker`]); the single
/// reader is the profiler's sampler thread.
pub struct SpanStacks {
    lanes: Vec<Lane>,
    names: NameTable,
}

impl Default for SpanStacks {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanStacks {
    pub fn new() -> Self {
        Self { lanes: (0..MAX_LANES).map(|_| Lane::new()).collect(), names: NameTable::new() }
    }

    fn lane(&self, lane: u32) -> &Lane {
        &self.lanes[lane as usize % MAX_LANES]
    }

    /// Push `name` onto `lane`'s published stack. Single-writer per lane:
    /// only the thread that owns the lane (its current worker id) may
    /// push/pop, which the RAII guards in `handle.rs` enforce by
    /// construction — they pop on the thread (and lane) that pushed.
    pub fn push(&self, lane: u32, name: &'static str) {
        let id = self.names.intern(name);
        let l = self.lane(lane);
        // relaxed-ok: single writer per lane; the Release fence below and
        // the Release store publishing the even seq carry the ordering
        let s = l.seq.load(Ordering::Relaxed);
        l.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let d = l.depth.load(Ordering::Relaxed);
        if (d as usize) < MAX_STACK_DEPTH {
            l.frames[d as usize].store(id, Ordering::Relaxed);
        }
        l.depth.store(d.wrapping_add(1), Ordering::Relaxed);
        l.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Pop the innermost frame from `lane`. Underflow is ignored (a
    /// defensive guard — balanced guards never underflow).
    pub fn pop(&self, lane: u32) {
        let l = self.lane(lane);
        // relaxed-ok: same seqlock-writer argument as push
        let s = l.seq.load(Ordering::Relaxed);
        l.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let d = l.depth.load(Ordering::Relaxed);
        if d > 0 {
            l.depth.store(d - 1, Ordering::Relaxed);
        }
        l.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Copy `lane`'s current stack (as interned ids, root first) into
    /// `out`. Returns `false` — leaving `out` empty — if the lane was
    /// being rewritten for all [`SAMPLE_RETRIES`] attempts; the sampler
    /// just skips the lane this tick. Never blocks the writer.
    pub fn sample_into(&self, lane: u32, out: &mut Vec<u32>) -> bool {
        let l = self.lane(lane);
        for _ in 0..SAMPLE_RETRIES {
            let s1 = l.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            out.clear();
            // relaxed-ok: frame loads are validated by the seq re-read
            // after the Acquire fence; torn copies are discarded
            let d = (l.depth.load(Ordering::Relaxed) as usize).min(MAX_STACK_DEPTH);
            for f in &l.frames[..d] {
                out.push(f.load(Ordering::Relaxed));
            }
            fence(Ordering::Acquire);
            if l.seq.load(Ordering::Relaxed) == s1 {
                return true;
            }
        }
        out.clear();
        false
    }

    /// Resolve interned ids back to names (unknown ids become `"?"`,
    /// which cannot happen for ids produced by [`SpanStacks::push`]).
    pub fn resolve(&self, ids: &[u32]) -> Vec<&'static str> {
        ids.iter().map(|&id| self.names.name_of(id).unwrap_or("?")).collect()
    }

    /// Current logical depth of `lane` (test/diagnostic helper).
    pub fn depth(&self, lane: u32) -> u32 {
        self.lane(lane).depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip_samples_the_path() {
        let st = SpanStacks::new();
        st.push(3, "request");
        st.push(3, "rung:full");
        st.push(3, "milp");
        let mut ids = Vec::new();
        assert!(st.sample_into(3, &mut ids));
        assert_eq!(st.resolve(&ids), ["request", "rung:full", "milp"]);
        st.pop(3);
        assert!(st.sample_into(3, &mut ids));
        assert_eq!(st.resolve(&ids), ["request", "rung:full"]);
        st.pop(3);
        st.pop(3);
        assert!(st.sample_into(3, &mut ids));
        assert!(ids.is_empty());
    }

    #[test]
    fn idle_lane_samples_empty() {
        let st = SpanStacks::new();
        let mut ids = Vec::new();
        assert!(st.sample_into(0, &mut ids));
        assert!(ids.is_empty());
    }

    #[test]
    fn interning_is_stable_and_distinct() {
        let st = SpanStacks::new();
        st.push(0, "a");
        st.push(0, "b");
        st.push(1, "a");
        let (mut l0, mut l1) = (Vec::new(), Vec::new());
        assert!(st.sample_into(0, &mut l0));
        assert!(st.sample_into(1, &mut l1));
        assert_eq!(l0[0], l1[0], "same name interns to the same id");
        assert_ne!(l0[0], l0[1], "distinct names get distinct ids");
    }

    #[test]
    fn overflow_beyond_cap_truncates_but_stays_balanced() {
        let st = SpanStacks::new();
        for _ in 0..MAX_STACK_DEPTH + 4 {
            st.push(0, "deep");
        }
        assert_eq!(st.depth(0), (MAX_STACK_DEPTH + 4) as u32);
        let mut ids = Vec::new();
        assert!(st.sample_into(0, &mut ids));
        assert_eq!(ids.len(), MAX_STACK_DEPTH);
        for _ in 0..MAX_STACK_DEPTH + 4 {
            st.pop(0);
        }
        assert_eq!(st.depth(0), 0);
        // extra pops are ignored
        st.pop(0);
        assert_eq!(st.depth(0), 0);
    }

    #[test]
    fn lanes_alias_modulo_max() {
        let st = SpanStacks::new();
        st.push(MAX_LANES as u32 + 2, "x");
        let mut ids = Vec::new();
        assert!(st.sample_into(2, &mut ids));
        assert_eq!(st.resolve(&ids), ["x"]);
    }

    #[test]
    fn many_names_survive_the_probe_window() {
        // force slow-path inserts well past NAME_SLOTS to exercise the
        // list-overflow fallback; leaked strs stand in for statics
        let st = SpanStacks::new();
        let mut ids = std::collections::HashSet::new();
        let mut names = Vec::new();
        for i in 0..NAME_SLOTS + 32 {
            let s: &'static str = Box::leak(format!("name{i}").into_boxed_str());
            names.push(s);
            st.push(0, s);
            st.pop(0);
            let id = st.names.intern(s);
            assert!(ids.insert(id), "duplicate id for fresh name {s}");
        }
        // re-interning every name is stable
        for (i, s) in names.iter().enumerate() {
            assert_eq!(st.names.name_of(st.names.intern(s)), Some(*s), "name {i}");
        }
    }
}
