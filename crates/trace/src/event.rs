//! The typed event vocabulary of the solve path, plus the flat JSON
//! encoding every sink shares.
//!
//! One [`Event`] is one observation: a monotonic timestamp (microseconds
//! since the owning [`crate::TraceHandle`]'s origin), the worker lane that
//! produced it, the span it belongs to, and a typed payload. The JSON form
//! is deliberately flat — one object per line, tagged by `"ev"` — so a
//! JSONL trace can be processed line-by-line without a schema.

use crate::SpanId;

/// Why a branch & bound node was closed without branching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// The node's LP bound met the incumbent cutoff.
    Bound,
    /// The node's LP relaxation was infeasible.
    Infeasible,
    /// The LP relaxation failed numerically (both engines).
    Numerical,
}

impl PruneReason {
    pub fn as_str(self) -> &'static str {
        match self {
            PruneReason::Bound => "bound",
            PruneReason::Infeasible => "infeasible",
            PruneReason::Numerical => "numerical",
        }
    }
}

/// Typed event payloads, one variant per observation the solve path makes.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened. `parent` is [`SpanId::ROOT`] for top-level spans.
    SpanOpen { name: &'static str, parent: SpanId },
    /// The event's span closed. Every open must be matched by exactly one
    /// close, and all of a span's events must fall between the two.
    SpanClose,

    // --- LP layer ---------------------------------------------------------
    /// Sampled simplex progress (phase 1 = feasibility, 2 = optimality).
    SimplexIter { phase: u8, iter: usize, objective: f64 },
    /// The basis was (re)factorised. `nnz` is the LU fill of the new
    /// factors (0 for the dense engine).
    Refactored { iter: usize, nnz: usize, reason: &'static str },
    /// One LP solve finished; `iters` is its total simplex iterations and
    /// `warm` is true when a warm-started dual-simplex re-solve produced the
    /// result (false = cold primal path).
    LpSolved { iters: usize, status: &'static str, warm: bool },

    // --- MILP layer -------------------------------------------------------
    /// A branch & bound node was popped for expansion.
    NodeOpened { id: u64, depth: usize, bound: f64 },
    /// A node was closed without branching.
    NodePruned { id: u64, reason: PruneReason },
    /// A node's LP optimum was integral (node closed as a leaf; whether it
    /// becomes the incumbent is reported separately).
    NodeIntegral { id: u64, objective: f64 },
    /// A new best integer-feasible solution (model-sense objective).
    IncumbentImproved { objective: f64 },
    /// The global dual bound improved (model-sense).
    BoundImproved { bound: f64 },
    /// Gap timeline sample: taken whenever incumbent or bound moves.
    GapSample { best_bound: f64, incumbent: f64, gap: f64 },
    /// The B&B search finished (any way); `gap` is the final relative gap.
    SolveDone { status: &'static str, nodes: usize, gap: f64 },

    // --- audit layer ------------------------------------------------------
    /// Pre-solve audit-gate verdict and how many strengthenings it proved.
    AuditGate { verdict: &'static str, tightenings: usize },

    // --- engine layer -----------------------------------------------------
    /// A request entered the engine queue.
    Enqueued,
    /// A worker picked the request up.
    Dequeued,
    /// Warm-start cache probe.
    CacheLookup { hit: bool },
    /// One rung of the degradation ladder ran.
    LadderStep { level: &'static str, outcome: String, elapsed_us: u64 },
    /// A request left the engine (any completion path: cache hit, audit
    /// rejection, or a ladder result). Carries the tenant id so sinks can
    /// aggregate per tenant without retaining the request, and the
    /// engine-assigned `request_id` so tail samplers and the flight
    /// recorder's in-flight table agree on which request this was.
    RequestDone {
        request_id: u64,
        tenant: String,
        level: &'static str,
        outcome: &'static str,
        latency_us: u64,
        deadline_met: bool,
    },

    // --- closed-loop simulation layer -------------------------------------
    /// A tenant's spot capacity was killed mid-plan: the realised price
    /// rose above the standing bid at this slot.
    SpotInterrupted { tenant: String, slot: u64, spot: f64, bid: f64 },
    /// A recovery policy handled an interruption. `cost` is the extra
    /// realised cost the action incurred in this slot (failover premium,
    /// checkpoint write, migration transfer).
    RecoveryApplied { tenant: String, slot: u64, action: &'static str, cost: f64 },
}

impl EventKind {
    /// The `"ev"` tag this payload serialises under.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::SpanOpen { .. } => "span_open",
            EventKind::SpanClose => "span_close",
            EventKind::SimplexIter { .. } => "simplex_iter",
            EventKind::Refactored { .. } => "refactored",
            EventKind::LpSolved { .. } => "lp_solved",
            EventKind::NodeOpened { .. } => "node_opened",
            EventKind::NodePruned { .. } => "node_pruned",
            EventKind::NodeIntegral { .. } => "node_integral",
            EventKind::IncumbentImproved { .. } => "incumbent_improved",
            EventKind::BoundImproved { .. } => "bound_improved",
            EventKind::GapSample { .. } => "gap_sample",
            EventKind::SolveDone { .. } => "solve_done",
            EventKind::AuditGate { .. } => "audit_gate",
            EventKind::Enqueued => "enqueued",
            EventKind::Dequeued => "dequeued",
            EventKind::CacheLookup { .. } => "cache_lookup",
            EventKind::LadderStep { .. } => "ladder_step",
            EventKind::RequestDone { .. } => "request_done",
            EventKind::SpotInterrupted { .. } => "spot_interrupted",
            EventKind::RecoveryApplied { .. } => "recovery_applied",
        }
    }
}

/// One timestamped observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the trace origin (monotonic clock).
    pub t_us: u64,
    /// Worker lane that produced the event: the engine worker index, or the
    /// parallel B&B batch slot. 0 on single-threaded paths.
    pub worker: u32,
    /// Span the event belongs to ([`SpanId::ROOT`] = unscoped).
    pub span: SpanId,
    pub kind: EventKind,
}

impl Event {
    /// Append the flat single-line JSON encoding (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"t_us\":");
        push_u64(out, self.t_us);
        out.push_str(",\"worker\":");
        push_u64(out, self.worker as u64);
        out.push_str(",\"span\":");
        push_u64(out, self.span.0);
        out.push_str(",\"ev\":\"");
        out.push_str(self.kind.tag());
        out.push('"');
        self.write_payload(out);
        out.push('}');
    }

    /// The JSON line as an owned string (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_json(&mut s);
        s
    }

    fn write_payload(&self, out: &mut String) {
        match &self.kind {
            EventKind::SpanOpen { name, parent } => {
                field_str(out, "name", name);
                field_u64(out, "parent", parent.0);
            }
            EventKind::SpanClose => {}
            EventKind::SimplexIter { phase, iter, objective } => {
                field_u64(out, "phase", *phase as u64);
                field_u64(out, "iter", *iter as u64);
                field_f64(out, "objective", *objective);
            }
            EventKind::Refactored { iter, nnz, reason } => {
                field_u64(out, "iter", *iter as u64);
                field_u64(out, "nnz", *nnz as u64);
                field_str(out, "reason", reason);
            }
            EventKind::LpSolved { iters, status, warm } => {
                field_u64(out, "iters", *iters as u64);
                field_str(out, "status", status);
                out.push_str(",\"warm\":");
                out.push_str(if *warm { "true" } else { "false" });
            }
            EventKind::NodeOpened { id, depth, bound } => {
                field_u64(out, "id", *id);
                field_u64(out, "depth", *depth as u64);
                field_f64(out, "bound", *bound);
            }
            EventKind::NodePruned { id, reason } => {
                field_u64(out, "id", *id);
                field_str(out, "reason", reason.as_str());
            }
            EventKind::NodeIntegral { id, objective } => {
                field_u64(out, "id", *id);
                field_f64(out, "objective", *objective);
            }
            EventKind::IncumbentImproved { objective } => {
                field_f64(out, "objective", *objective);
            }
            EventKind::BoundImproved { bound } => {
                field_f64(out, "bound", *bound);
            }
            EventKind::GapSample { best_bound, incumbent, gap } => {
                field_f64(out, "best_bound", *best_bound);
                field_f64(out, "incumbent", *incumbent);
                field_f64(out, "gap", *gap);
            }
            EventKind::SolveDone { status, nodes, gap } => {
                field_str(out, "status", status);
                field_u64(out, "nodes", *nodes as u64);
                field_f64(out, "gap", *gap);
            }
            EventKind::AuditGate { verdict, tightenings } => {
                field_str(out, "verdict", verdict);
                field_u64(out, "tightenings", *tightenings as u64);
            }
            EventKind::Enqueued | EventKind::Dequeued => {}
            EventKind::CacheLookup { hit } => {
                out.push_str(",\"hit\":");
                out.push_str(if *hit { "true" } else { "false" });
            }
            EventKind::LadderStep { level, outcome, elapsed_us } => {
                field_str(out, "level", level);
                field_str(out, "outcome", outcome);
                field_u64(out, "elapsed_us", *elapsed_us);
            }
            EventKind::RequestDone {
                request_id,
                tenant,
                level,
                outcome,
                latency_us,
                deadline_met,
            } => {
                field_u64(out, "request_id", *request_id);
                field_str(out, "tenant", tenant);
                field_str(out, "level", level);
                field_str(out, "outcome", outcome);
                field_u64(out, "latency_us", *latency_us);
                out.push_str(",\"deadline_met\":");
                out.push_str(if *deadline_met { "true" } else { "false" });
            }
            EventKind::SpotInterrupted { tenant, slot, spot, bid } => {
                field_str(out, "tenant", tenant);
                field_u64(out, "slot", *slot);
                field_f64(out, "spot", *spot);
                field_f64(out, "bid", *bid);
            }
            EventKind::RecoveryApplied { tenant, slot, action, cost } => {
                field_str(out, "tenant", tenant);
                field_u64(out, "slot", *slot);
                field_str(out, "action", action);
                field_f64(out, "cost", *cost);
            }
        }
    }
}

fn push_u64(out: &mut String, v: u64) {
    // itoa without allocation churn would be overkill here; format via
    // std is fine off the solver's innermost loops
    use std::fmt::Write;
    let _ = write!(out, "{v}");
}

fn field_u64(out: &mut String, key: &str, v: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    push_u64(out, v);
}

/// Shortest-roundtrip float with a `.0` suffix for integral values (same
/// convention as the workspace's serde shim); non-finite values become
/// `null` (JSON has no infinities — readers treat a null bound as ±∞).
fn field_f64(out: &mut String, key: &str, v: f64) {
    use std::fmt::Write;
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    if v.is_finite() {
        let start = out.len();
        let _ = write!(out, "{v}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn field_str(out: &mut String, key: &str, v: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_flat_and_tagged() {
        let ev = Event {
            t_us: 42,
            worker: 1,
            span: SpanId(3),
            kind: EventKind::NodeOpened { id: 7, depth: 2, bound: 1.5 },
        };
        assert_eq!(
            ev.to_json(),
            "{\"t_us\":42,\"worker\":1,\"span\":3,\"ev\":\"node_opened\",\"id\":7,\"depth\":2,\"bound\":1.5}"
        );
    }

    #[test]
    fn non_finite_bounds_become_null() {
        let ev = Event {
            t_us: 0,
            worker: 0,
            span: SpanId::ROOT,
            kind: EventKind::NodeOpened { id: 0, depth: 0, bound: f64::NEG_INFINITY },
        };
        assert!(ev.to_json().ends_with("\"bound\":null}"), "{}", ev.to_json());
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let ev = Event {
            t_us: 0,
            worker: 0,
            span: SpanId::ROOT,
            kind: EventKind::IncumbentImproved { objective: 2.0 },
        };
        assert!(ev.to_json().contains("\"objective\":2.0"), "{}", ev.to_json());
    }

    #[test]
    fn sim_events_serialise_flat() {
        let ev = Event {
            t_us: 5,
            worker: 0,
            span: SpanId::ROOT,
            kind: EventKind::SpotInterrupted {
                tenant: "tenant-1".to_string(),
                slot: 7,
                spot: 0.25,
                bid: 0.125,
            },
        };
        assert_eq!(
            ev.to_json(),
            "{\"t_us\":5,\"worker\":0,\"span\":0,\"ev\":\"spot_interrupted\",\
             \"tenant\":\"tenant-1\",\"slot\":7,\"spot\":0.25,\"bid\":0.125}"
        );
        let ev = Event {
            t_us: 6,
            worker: 0,
            span: SpanId::ROOT,
            kind: EventKind::RecoveryApplied {
                tenant: "tenant-1".to_string(),
                slot: 7,
                action: "on_demand_failover",
                cost: 2.0,
            },
        };
        assert!(ev.to_json().contains("\"action\":\"on_demand_failover\",\"cost\":2.0"));
    }

    #[test]
    fn request_done_carries_its_request_id_first() {
        let ev = Event {
            t_us: 9,
            worker: 2,
            span: SpanId(4),
            kind: EventKind::RequestDone {
                request_id: 17,
                tenant: "t-0".to_string(),
                level: "full",
                outcome: "ok",
                latency_us: 120,
                deadline_met: true,
            },
        };
        assert_eq!(
            ev.to_json(),
            "{\"t_us\":9,\"worker\":2,\"span\":4,\"ev\":\"request_done\",\"request_id\":17,\
             \"tenant\":\"t-0\",\"level\":\"full\",\"outcome\":\"ok\",\"latency_us\":120,\
             \"deadline_met\":true}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let ev = Event {
            t_us: 0,
            worker: 0,
            span: SpanId(1),
            kind: EventKind::LadderStep {
                level: "full",
                outcome: "failed: \"x\"\n".to_string(),
                elapsed_us: 9,
            },
        };
        let json = ev.to_json();
        assert!(json.contains("failed: \\\"x\\\"\\n"), "{json}");
    }
}
