//! The cheap handle instrumented code holds: a shared sink plus the trace
//! origin. A disabled handle is a `None` — every emit is one branch, no
//! clock read, no allocation, so un-instrumented callers pay nothing.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{Event, EventKind};
use crate::sink::Sink;
use crate::stack::SpanStacks;

/// Identity of a span. `ROOT` (0) is the implicit top-level scope: it is
/// never opened or closed, and events outside any span carry it. `Default`
/// is `ROOT`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const ROOT: SpanId = SpanId(0);

    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

struct Inner {
    /// Event delivery; `None` in profiler-only mode, where span opens
    /// still publish stack frames but no events are constructed.
    sink: Option<Arc<dyn Sink>>,
    /// Span-stack publication for the sampling profiler (`rrp-prof`).
    stacks: Option<Arc<SpanStacks>>,
    origin: Instant,
    next_span: AtomicU64,
}

/// Cloneable capability to emit trace events. The default handle is *off*:
/// `emit` is a single `Option` check. An enabled handle stamps events with
/// microseconds since its origin (monotonic) and the current worker lane.
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() { "TraceHandle(on)" } else { "TraceHandle(off)" })
    }
}

impl TraceHandle {
    /// The disabled handle (same as `Default`). ~Zero cost to carry and
    /// emit against.
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// A handle delivering events to `sink`, with its origin at "now".
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Self::with_parts(Some(sink), None)
    }

    /// A handle with any combination of event sink and span-stack
    /// publication. `(None, None)` degenerates to the disabled handle.
    /// With stacks but no sink, span guards publish frames for the
    /// profiler while `emit` stays a near-no-op (no clock read, no event
    /// construction).
    pub fn with_parts(sink: Option<Arc<dyn Sink>>, stacks: Option<Arc<SpanStacks>>) -> Self {
        if sink.is_none() && stacks.is_none() {
            return Self::off();
        }
        Self {
            inner: Some(Arc::new(Inner {
                sink,
                stacks,
                origin: Instant::now(),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The span-stack publication surface, when profiling is wired in.
    pub fn stacks(&self) -> Option<&Arc<SpanStacks>> {
        self.inner.as_ref().and_then(|i| i.stacks.as_ref())
    }

    /// Microseconds since the trace origin (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.origin.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Emit one event into `span`. No-op when disabled or when the handle
    /// is profiler-only (stacks without a sink): the event is never
    /// constructed, so hot solver loops pay two predictable branches.
    pub fn emit(&self, span: SpanId, kind: EventKind) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                let ev = Event {
                    t_us: inner.origin.elapsed().as_micros() as u64,
                    worker: current_worker(),
                    span,
                    kind,
                };
                sink.emit(&ev);
            }
        }
    }

    /// Open a span under `parent` and return its id ([`SpanId::ROOT`] when
    /// disabled, which [`TraceHandle::close_span`] then ignores).
    pub fn open_span(&self, name: &'static str, parent: SpanId) -> SpanId {
        match &self.inner {
            Some(inner) => {
                // relaxed-ok: span ids only need uniqueness, not ordering
                let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
                self.emit(id, EventKind::SpanOpen { name, parent });
                id
            }
            None => SpanId::ROOT,
        }
    }

    /// Close a span previously returned by [`TraceHandle::open_span`].
    pub fn close_span(&self, span: SpanId) {
        if !span.is_root() {
            self.emit(span, EventKind::SpanClose);
        }
    }

    /// RAII variant of open/close: the span closes when the guard drops.
    ///
    /// Unlike the raw [`TraceHandle::open_span`]/[`close_span`] pair —
    /// which may legally cross threads (the engine closes request spans
    /// on a worker other than the submitter) — a guard lives and dies on
    /// one thread, so it also publishes the span name to the current
    /// worker lane's profiler stack and pops it on drop. The lane is
    /// captured at open so a nested [`with_worker`] scope cannot
    /// unbalance another lane.
    pub fn span(&self, name: &'static str, parent: SpanId) -> SpanGuard {
        let pushed_lane = self.stack_push(name);
        SpanGuard { handle: self.clone(), id: self.open_span(name, parent), pushed_lane }
    }

    /// An event-less profiler frame: publishes `name` on the current
    /// lane's span stack (when profiling is wired in) without emitting
    /// any trace event — used where the span itself is opened raw across
    /// threads but the *work* happens on this one.
    pub fn stack_frame(&self, name: &'static str) -> StackFrameGuard {
        StackFrameGuard { handle: self.clone(), pushed_lane: self.stack_push(name) }
    }

    fn stack_push(&self, name: &'static str) -> Option<u32> {
        let inner = self.inner.as_ref()?;
        let stacks = inner.stacks.as_ref()?;
        let lane = current_worker();
        stacks.push(lane, name);
        Some(lane)
    }

    fn stack_pop(&self, lane: u32) {
        if let Some(inner) = &self.inner {
            if let Some(stacks) = &inner.stacks {
                stacks.pop(lane);
            }
        }
    }

    /// Ask the sink to persist anything buffered (JSONL writers).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                sink.flush();
            }
        }
    }
}

/// Guard returned by [`TraceHandle::span`]; closes the span on drop and
/// pops the profiler stack frame it pushed (if any).
pub struct SpanGuard {
    handle: TraceHandle,
    id: SpanId,
    pushed_lane: Option<u32>,
}

impl SpanGuard {
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Emit an event inside this span.
    pub fn emit(&self, kind: EventKind) {
        self.handle.emit(self.id, kind);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.handle.close_span(self.id);
        if let Some(lane) = self.pushed_lane {
            self.handle.stack_pop(lane);
        }
    }
}

/// Guard returned by [`TraceHandle::stack_frame`]; pops the published
/// frame on drop. Emits nothing.
pub struct StackFrameGuard {
    handle: TraceHandle,
    pushed_lane: Option<u32>,
}

impl Drop for StackFrameGuard {
    fn drop(&mut self) {
        if let Some(lane) = self.pushed_lane {
            self.handle.stack_pop(lane);
        }
    }
}

thread_local! {
    static WORKER: Cell<u32> = const { Cell::new(0) };
}

/// Tag the current thread's events with worker lane `id` (engine worker
/// index, parallel B&B batch slot, …). Defaults to 0.
pub fn set_worker(id: u32) {
    WORKER.with(|w| w.set(id));
}

/// The current thread's worker lane.
pub fn current_worker() -> u32 {
    WORKER.with(Cell::get)
}

/// Run `f` with the worker lane set to `id`, restoring the previous lane
/// afterwards — the scoped form used around parallel batch expansion.
pub fn with_worker<R>(id: u32, f: impl FnOnce() -> R) -> R {
    let prev = current_worker();
    set_worker(id);
    let out = f();
    set_worker(prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;
    use crate::stack::SpanStacks;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::off();
        assert!(!h.is_enabled());
        let s = h.open_span("x", SpanId::ROOT);
        assert!(s.is_root());
        h.emit(s, EventKind::Enqueued);
        h.close_span(s);
        h.flush();
    }

    #[test]
    fn spans_are_balanced_and_nested() {
        let ring = Arc::new(RingSink::new(64));
        let h = TraceHandle::new(ring.clone());
        let outer = h.open_span("outer", SpanId::ROOT);
        {
            let inner = h.span("inner", outer);
            inner.emit(EventKind::Dequeued);
        }
        h.close_span(outer);
        let evs = ring.drain();
        let tags: Vec<&str> = evs.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags, ["span_open", "span_open", "dequeued", "span_close", "span_close"]);
        // inner's parent is outer
        match &evs[1].kind {
            EventKind::SpanOpen { parent, .. } => assert_eq!(*parent, outer),
            other => panic!("expected span_open, got {other:?}"),
        }
    }

    #[test]
    fn worker_lane_is_scoped() {
        assert_eq!(current_worker(), 0);
        let seen = with_worker(7, current_worker);
        assert_eq!(seen, 7);
        assert_eq!(current_worker(), 0);
    }

    #[test]
    fn span_guards_publish_profiler_frames() {
        let stacks = Arc::new(SpanStacks::new());
        let h = TraceHandle::with_parts(None, Some(stacks.clone()));
        assert!(h.is_enabled(), "profiler-only handles still thread through");
        let mut ids = Vec::new();
        {
            let _req = h.stack_frame("request");
            let rung = h.span("rung:full", SpanId::ROOT);
            let _milp = h.span("milp", rung.id());
            assert!(stacks.sample_into(0, &mut ids));
            assert_eq!(stacks.resolve(&ids), ["request", "rung:full", "milp"]);
            // profiler-only: emits are inert but harmless
            h.emit(rung.id(), EventKind::Dequeued);
        }
        assert!(stacks.sample_into(0, &mut ids));
        assert!(ids.is_empty(), "guards pop their frames on drop");
        h.flush();
    }

    #[test]
    fn raw_open_close_does_not_touch_the_stack() {
        // raw spans may cross threads, so only RAII guards publish frames
        let ring = Arc::new(RingSink::new(16));
        let stacks = Arc::new(SpanStacks::new());
        let h = TraceHandle::with_parts(Some(ring.clone()), Some(stacks.clone()));
        let s = h.open_span("request", SpanId::ROOT);
        let mut ids = Vec::new();
        assert!(stacks.sample_into(0, &mut ids));
        assert!(ids.is_empty());
        h.close_span(s);
        assert_eq!(ring.drain().len(), 2, "events still flow");
    }

    #[test]
    fn guard_pops_the_lane_it_pushed() {
        let stacks = Arc::new(SpanStacks::new());
        let h = TraceHandle::with_parts(None, Some(stacks.clone()));
        let g = with_worker(5, || h.span("rung:full", SpanId::ROOT));
        assert_eq!(stacks.depth(5), 1);
        // lane changed between open and drop: the guard still pops lane 5
        drop(g);
        assert_eq!(stacks.depth(5), 0);
        assert_eq!(stacks.depth(0), 0);
    }

    #[test]
    fn timestamps_are_monotone() {
        let ring = Arc::new(RingSink::new(8));
        let h = TraceHandle::new(ring.clone());
        h.emit(SpanId::ROOT, EventKind::Enqueued);
        h.emit(SpanId::ROOT, EventKind::Dequeued);
        let evs = ring.drain();
        assert!(evs[0].t_us <= evs[1].t_us);
    }
}
