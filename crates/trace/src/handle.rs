//! The cheap handle instrumented code holds: a shared sink plus the trace
//! origin. A disabled handle is a `None` — every emit is one branch, no
//! clock read, no allocation, so un-instrumented callers pay nothing.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{Event, EventKind};
use crate::sink::Sink;

/// Identity of a span. `ROOT` (0) is the implicit top-level scope: it is
/// never opened or closed, and events outside any span carry it. `Default`
/// is `ROOT`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const ROOT: SpanId = SpanId(0);

    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

struct Inner {
    sink: Arc<dyn Sink>,
    origin: Instant,
    next_span: AtomicU64,
}

/// Cloneable capability to emit trace events. The default handle is *off*:
/// `emit` is a single `Option` check. An enabled handle stamps events with
/// microseconds since its origin (monotonic) and the current worker lane.
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() { "TraceHandle(on)" } else { "TraceHandle(off)" })
    }
}

impl TraceHandle {
    /// The disabled handle (same as `Default`). ~Zero cost to carry and
    /// emit against.
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// A handle delivering events to `sink`, with its origin at "now".
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                sink,
                origin: Instant::now(),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the trace origin (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.origin.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Emit one event into `span`. No-op when disabled.
    pub fn emit(&self, span: SpanId, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let ev = Event {
                t_us: inner.origin.elapsed().as_micros() as u64,
                worker: current_worker(),
                span,
                kind,
            };
            inner.sink.emit(&ev);
        }
    }

    /// Open a span under `parent` and return its id ([`SpanId::ROOT`] when
    /// disabled, which [`TraceHandle::close_span`] then ignores).
    pub fn open_span(&self, name: &'static str, parent: SpanId) -> SpanId {
        match &self.inner {
            Some(inner) => {
                // relaxed-ok: span ids only need uniqueness, not ordering
                let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
                self.emit(id, EventKind::SpanOpen { name, parent });
                id
            }
            None => SpanId::ROOT,
        }
    }

    /// Close a span previously returned by [`TraceHandle::open_span`].
    pub fn close_span(&self, span: SpanId) {
        if !span.is_root() {
            self.emit(span, EventKind::SpanClose);
        }
    }

    /// RAII variant of open/close: the span closes when the guard drops.
    pub fn span(&self, name: &'static str, parent: SpanId) -> SpanGuard {
        SpanGuard { handle: self.clone(), id: self.open_span(name, parent) }
    }

    /// Ask the sink to persist anything buffered (JSONL writers).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// Guard returned by [`TraceHandle::span`]; closes the span on drop.
pub struct SpanGuard {
    handle: TraceHandle,
    id: SpanId,
}

impl SpanGuard {
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Emit an event inside this span.
    pub fn emit(&self, kind: EventKind) {
        self.handle.emit(self.id, kind);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.handle.close_span(self.id);
    }
}

thread_local! {
    static WORKER: Cell<u32> = const { Cell::new(0) };
}

/// Tag the current thread's events with worker lane `id` (engine worker
/// index, parallel B&B batch slot, …). Defaults to 0.
pub fn set_worker(id: u32) {
    WORKER.with(|w| w.set(id));
}

/// The current thread's worker lane.
pub fn current_worker() -> u32 {
    WORKER.with(Cell::get)
}

/// Run `f` with the worker lane set to `id`, restoring the previous lane
/// afterwards — the scoped form used around parallel batch expansion.
pub fn with_worker<R>(id: u32, f: impl FnOnce() -> R) -> R {
    let prev = current_worker();
    set_worker(id);
    let out = f();
    set_worker(prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::off();
        assert!(!h.is_enabled());
        let s = h.open_span("x", SpanId::ROOT);
        assert!(s.is_root());
        h.emit(s, EventKind::Enqueued);
        h.close_span(s);
        h.flush();
    }

    #[test]
    fn spans_are_balanced_and_nested() {
        let ring = Arc::new(RingSink::new(64));
        let h = TraceHandle::new(ring.clone());
        let outer = h.open_span("outer", SpanId::ROOT);
        {
            let inner = h.span("inner", outer);
            inner.emit(EventKind::Dequeued);
        }
        h.close_span(outer);
        let evs = ring.drain();
        let tags: Vec<&str> = evs.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags, ["span_open", "span_open", "dequeued", "span_close", "span_close"]);
        // inner's parent is outer
        match &evs[1].kind {
            EventKind::SpanOpen { parent, .. } => assert_eq!(*parent, outer),
            other => panic!("expected span_open, got {other:?}"),
        }
    }

    #[test]
    fn worker_lane_is_scoped() {
        assert_eq!(current_worker(), 0);
        let seen = with_worker(7, current_worker);
        assert_eq!(seen, 7);
        assert_eq!(current_worker(), 0);
    }

    #[test]
    fn timestamps_are_monotone() {
        let ring = Arc::new(RingSink::new(8));
        let h = TraceHandle::new(ring.clone());
        h.emit(SpanId::ROOT, EventKind::Enqueued);
        h.emit(SpanId::ROOT, EventKind::Dequeued);
        let evs = ring.drain();
        assert!(evs[0].t_us <= evs[1].t_us);
    }
}
