//! Model-checks the span-stack seqlock (mirrors `SpanStacks` in
//! `src/stack.rs`): a writer publishing push/pop updates under an
//! odd/even sequence counter, and a sampler that copies frames and
//! discards the copy unless the sequence re-reads unchanged. Checked
//! properties: a validated sample is never torn (it always equals a
//! state the stack legitimately passed through), the writer never blocks
//! (push/pop use no waiting primitive — the model would deadlock if the
//! sampler could stall it), and — the seeded-mutant test — *skipping*
//! the sequence re-validation does admit a torn read, so the validation
//! is load-bearing, not decorative.
//!
//! Frames here are paired `(id, id + 100)` so any cross-version mix is
//! detectable: a consistent 2-deep sample must satisfy `f[1] == f[0] +
//! 100`. Name interning is not modeled — it is mutex-serialised on the
//! cold path and lock-free-read-only afterwards.

use loom::sync::atomic::{AtomicU32, Ordering};
use loom::sync::Arc;

const DEPTH_CAP: usize = 4;
const SAMPLE_RETRIES: usize = 4;

/// Miniature of one `SpanStacks` lane. Orderings are written as in the
/// real code; the model is sequentially consistent and ignores them (the
/// `relaxed` lint plus the fence argument in `stack.rs` cover that side).
struct Lane {
    seq: AtomicU32,
    depth: AtomicU32,
    frames: [AtomicU32; DEPTH_CAP],
}

impl Lane {
    fn new() -> Self {
        Self {
            seq: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    fn push(&self, id: u32) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        let d = self.depth.load(Ordering::Relaxed);
        if (d as usize) < DEPTH_CAP {
            self.frames[d as usize].store(id, Ordering::Relaxed);
        }
        self.depth.store(d + 1, Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    fn pop(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        let d = self.depth.load(Ordering::Relaxed);
        if d > 0 {
            self.depth.store(d - 1, Ordering::Relaxed);
        }
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// `validate = false` is the seeded mutant: take whatever was copied
    /// without the seq re-check.
    fn sample(&self, validate: bool) -> Option<Vec<u32>> {
        for _ in 0..SAMPLE_RETRIES {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                continue;
            }
            let d = (self.depth.load(Ordering::Relaxed) as usize).min(DEPTH_CAP);
            let mut out = Vec::with_capacity(d);
            for f in &self.frames[..d] {
                out.push(f.load(Ordering::Relaxed));
            }
            if !validate || self.seq.load(Ordering::Relaxed) == s1 {
                return Some(out);
            }
        }
        None
    }
}

/// The writer swaps the pre-published pair `[1, 101]` for `[2, 102]`
/// (pop, pop, push, push). Consistent mid-states are `[1]` and `[2]`
/// (after one pop / one push) and `[]`; anything else is a torn read.
fn is_consistent(s: &[u32]) -> bool {
    match s.len() {
        0 => true,
        1 => s[0] == 1 || s[0] == 2,
        2 => (s[0] == 1 || s[0] == 2) && s[1] == s[0] + 100,
        _ => false,
    }
}

fn swap_pair_model(validate: bool) {
    let lane = Arc::new(Lane::new());
    lane.push(1);
    lane.push(101);
    let writer_lane = Arc::clone(&lane);
    let writer = loom::thread::spawn(move || {
        writer_lane.pop();
        writer_lane.pop();
        writer_lane.push(2);
        writer_lane.push(102);
    });
    if let Some(s) = lane.sample(validate) {
        assert!(is_consistent(&s), "torn sample {s:?}");
    }
    // push/pop never block: reaching the join on every schedule — even
    // ones where the sampler gave up — is the liveness half of the claim
    writer.join().unwrap();
    let fin = lane.sample(validate).expect("quiescent lane always samples");
    assert_eq!(fin, [2, 102]);
}

#[test]
fn validated_samples_are_never_torn() {
    loom::model(|| swap_pair_model(true));
}

#[test]
#[should_panic(expected = "torn sample")]
fn skipping_validation_admits_a_torn_read() {
    // the mutant: without the seq re-check some interleaving mixes the
    // old and new pairs — proves the model can see the tear the real
    // validation discards
    loom::model(|| swap_pair_model(false));
}

#[test]
fn sampler_retries_never_starve_the_writer() {
    loom::model(|| {
        let lane = Arc::new(Lane::new());
        let writer_lane = Arc::clone(&lane);
        let writer = loom::thread::spawn(move || {
            writer_lane.push(1);
            writer_lane.push(101);
        });
        // two back-to-back sample attempts while the writer runs; both
        // may fail (None) but must never block or return a torn stack
        for _ in 0..2 {
            if let Some(s) = lane.sample(true) {
                assert!(s.is_empty() || s == [1] || s == [1, 101], "torn sample {s:?}");
            }
        }
        writer.join().unwrap();
        assert_eq!(lane.sample(true).expect("quiescent"), [1, 101]);
    });
}
