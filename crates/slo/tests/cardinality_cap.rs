//! Satellite: per-tenant `rrp_slo_*` series under the obs cardinality
//! cap. Two layers of folding are in play — the engine's own tenant-table
//! cap (`SloConfig::max_tenants`) and the registry's per-family series
//! cap — and neither may corrupt budget math: named tenants keep their
//! exact ledgers, and everything folded lands in one `__other__` series
//! carrying the most pessimistic value.

use rrp_obs::{Registry, OVERFLOW_LABEL};
use rrp_slo::{SloConfig, SloEngine};
use rrp_trace::{Event, EventKind, Sink, SpanId};

fn done(span: u64, t_us: u64, tenant: &str, deadline_met: bool) -> Event {
    Event {
        t_us,
        worker: 0,
        span: SpanId(span),
        kind: EventKind::RequestDone {
            request_id: span,
            tenant: tenant.to_string(),
            level: "full",
            outcome: "ok",
            latency_us: 1_000,
            deadline_met,
        },
    }
}

fn small_engine() -> SloEngine {
    SloEngine::new(SloConfig { max_tenants: 3, ..SloConfig::default() })
}

#[test]
fn overflow_tenants_fold_into_one_other_ledger() {
    let slo = small_engine();
    let mut span = 0u64;
    // three named tenants, all healthy
    for t in ["a", "b", "c"] {
        for i in 0..20u64 {
            span += 1;
            slo.emit(&done(span, i * 1_000, t, true));
        }
    }
    // five more tenants past the cap, all missing deadlines
    for t in ["d", "e", "f", "g", "h"] {
        for i in 0..4u64 {
            span += 1;
            slo.emit(&done(span, i * 1_000, t, false));
        }
    }
    let v: serde_json::Value =
        serde_json::from_str(&slo.status_json()).expect("status_json parses");
    let tenants = v.get("tenants").and_then(|t| t.as_array()).expect("tenants array");
    assert_eq!(tenants.len(), 4, "3 named + __other__, got {}", tenants.len());
    let name = |t: &serde_json::Value| -> String {
        t.get("tenant").and_then(|n| n.as_str()).unwrap_or_default().to_string()
    };
    let names: Vec<String> = tenants.iter().map(name).collect();
    assert!(names.iter().any(|n| n == OVERFLOW_LABEL), "{names:?}");
    for t in ["a", "b", "c"] {
        assert!(names.iter().any(|n| n == t), "{names:?}");
    }
    let deadline_miss = |t: &serde_json::Value| -> (u64, u64) {
        let dm = &t.get("objectives").and_then(|o| o.as_array()).expect("objectives")[0];
        assert_eq!(dm.get("objective").and_then(|o| o.as_str()), Some("deadline_miss"));
        (
            dm.get("events").and_then(|e| e.as_u64()).unwrap_or(0),
            dm.get("bad").and_then(|b| b.as_u64()).unwrap_or(0),
        )
    };
    // the fold bucket aggregated all 20 overflow events, every one bad
    let other = tenants.iter().find(|t| name(t) == OVERFLOW_LABEL).expect("__other__ present");
    assert_eq!(deadline_miss(other), (20, 20));
    // named ledgers are untouched by the overflow storm
    let a = tenants.iter().find(|t| name(t) == "a").expect("tenant a");
    assert_eq!(deadline_miss(a), (20, 0));
}

#[test]
fn registry_sync_respects_the_series_cap_without_corrupting_budgets() {
    let slo = small_engine();
    let mut span = 0u64;
    // tenant "hot" dominates volume and misses everything; "calm" and
    // "cool" are healthy; two more fold into __other__ (one bad, one not)
    for i in 0..40u64 {
        span += 1;
        slo.emit(&done(span, i * 1_000, "hot", false));
    }
    for t in ["calm", "cool"] {
        for i in 0..20u64 {
            span += 1;
            slo.emit(&done(span, i * 1_000, t, true));
        }
    }
    for i in 0..6u64 {
        span += 1;
        slo.emit(&done(span, i * 1_000, "over-bad", false));
        span += 1;
        slo.emit(&done(span, i * 1_000, "over-ok", true));
    }

    // a registry too small for every (tenant, objective, window) series
    let reg = Registry::with_series_cap(6);
    slo.sync_registry(&reg);
    let text = reg.render();
    let samples = rrp_obs::text::parse(&text).expect("registry text parses");

    let budget: Vec<_> = samples.iter().filter(|s| s.name == "rrp_slo_budget_remaining").collect();
    assert!(!budget.is_empty(), "budget family present:\n{text}");
    // the family stayed within the cap
    assert!(budget.len() <= 6, "{} series > cap 6", budget.len());

    let label = |s: &rrp_obs::Sample, k: &str| -> String {
        s.labels.iter().find(|(lk, _)| lk == k).map(|(_, lv)| lv.clone()).unwrap_or_default()
    };

    // "hot" is top-volume, so its exact (drained) budget survives the fold
    let hot_dm = budget
        .iter()
        .find(|s| label(s, "tenant") == "hot" && label(s, "objective") == "deadline_miss")
        .expect("hot tenant keeps a named series");
    assert!(hot_dm.value < 0.0, "hot budget must be overspent, got {}", hot_dm.value);

    // the fold bucket exists and carries the *worst* folded budget — the
    // healthy folded tenants cannot mask the bad one
    let other_dm = budget
        .iter()
        .find(|s| label(s, "tenant") == OVERFLOW_LABEL && label(s, "objective") == "deadline_miss")
        .expect("__other__ budget series");
    assert!(other_dm.value < 1.0, "fold must keep the pessimistic value, got {}", other_dm.value);

    // scalar families are always present
    for fam in [
        "rrp_slo_tenants",
        "rrp_slo_alerts_total",
        "rrp_slo_exemplars_retained_total",
        "rrp_slo_exemplars_dropped_total",
    ] {
        assert!(samples.iter().any(|s| s.name == fam), "{fam} missing:\n{text}");
    }
}
