//! Event-time sliding windows for burn-rate math.
//!
//! A [`WindowRing`] is a bounded deque of fixed-width time buckets, each
//! holding `(total, bad)` event counts. All arithmetic is in microseconds
//! of *trace time* (`Event::t_us`) — no wall clock — so replaying a trace
//! or running a seeded storm produces identical burn rates. Memory is
//! bounded by `horizon / width + 1` buckets regardless of event rate.

use std::collections::VecDeque;

const US_PER_S: u64 = 1_000_000;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    start_us: u64,
    total: u64,
    bad: u64,
}

/// Bucketed good/bad counts over a bounded trace-time horizon.
#[derive(Debug)]
pub(crate) struct WindowRing {
    width_us: u64,
    horizon_us: u64,
    buckets: VecDeque<Bucket>,
}

impl WindowRing {
    /// A ring whose buckets are `width_s` wide, retaining `horizon_s` of
    /// history (both clamped to at least one second).
    pub(crate) fn new(width_s: u64, horizon_s: u64) -> Self {
        let width_us = width_s.max(1).saturating_mul(US_PER_S);
        let horizon_us = horizon_s.max(1).saturating_mul(US_PER_S).max(width_us);
        Self { width_us, horizon_us, buckets: VecDeque::new() }
    }

    /// Record one event at trace time `t_us`. Events arrive roughly in
    /// order (worker lanes race by microseconds); anything older than the
    /// newest bucket is charged to it — burn windows are minutes wide, so
    /// sub-bucket reordering cannot move an event across a window edge
    /// that matters.
    pub(crate) fn record(&mut self, t_us: u64, bad: bool) {
        let start = t_us - t_us % self.width_us;
        match self.buckets.back_mut() {
            Some(b) if b.start_us >= start => {
                b.total += 1;
                b.bad += u64::from(bad);
            }
            _ => {
                self.buckets.push_back(Bucket { start_us: start, total: 1, bad: u64::from(bad) });
                while let Some(front) = self.buckets.front() {
                    if start.saturating_sub(front.start_us) > self.horizon_us {
                        self.buckets.pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// `(bad, total)` over the trailing `window_s` seconds ending at
    /// `now_us`, bucket-granular: a bucket counts while any part of it is
    /// inside the window.
    pub(crate) fn tally(&self, window_s: u64, now_us: u64) -> (u64, u64) {
        let cutoff = now_us.saturating_sub(window_s.saturating_mul(US_PER_S));
        let mut bad = 0u64;
        let mut total = 0u64;
        for b in self.buckets.iter().rev() {
            if b.start_us + self.width_us <= cutoff {
                break;
            }
            bad += b.bad;
            total += b.total;
        }
        (bad, total)
    }

    /// Lifetime of the ring in buckets (test/debug visibility).
    #[cfg(test)]
    pub(crate) fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_covers_only_the_window() {
        let mut r = WindowRing::new(10, 300);
        // 5 bad events at t=0..5s, 5 good at t=100..105s
        for i in 0..5u64 {
            r.record(i * US_PER_S, true);
        }
        for i in 0..5u64 {
            r.record((100 + i) * US_PER_S, false);
        }
        let now = 105 * US_PER_S;
        // trailing 30 s sees only the good tail
        assert_eq!(r.tally(30, now), (0, 5));
        // trailing 300 s sees everything
        assert_eq!(r.tally(300, now), (5, 10));
    }

    #[test]
    fn horizon_bounds_memory() {
        let mut r = WindowRing::new(1, 60);
        for t in 0..10_000u64 {
            r.record(t * US_PER_S, false);
        }
        assert!(r.bucket_count() <= 62, "{} buckets retained", r.bucket_count());
        // old history is gone: a full-horizon tally only sees the tail
        let (_, total) = r.tally(60, 9_999 * US_PER_S);
        assert!(total <= 62, "{total}");
    }

    #[test]
    fn out_of_order_events_are_charged_to_the_newest_bucket() {
        let mut r = WindowRing::new(10, 300);
        r.record(50 * US_PER_S, false);
        r.record(49 * US_PER_S, true); // late arrival from another lane
        assert_eq!(r.tally(300, 50 * US_PER_S), (1, 2));
    }

    #[test]
    fn same_bucket_accumulates() {
        let mut r = WindowRing::new(10, 300);
        for _ in 0..100 {
            r.record(3 * US_PER_S, true);
        }
        assert_eq!(r.bucket_count(), 1);
        assert_eq!(r.tally(10, 3 * US_PER_S), (100, 100));
    }
}
