//! # rrp-slo — per-tenant error budgets, burn-rate alerting, tail sampling
//!
//! The fourth observability layer: `rrp-trace` records *what happened*,
//! `rrp-obs` *how much*, `rrp-prof` *where the time went*; this crate
//! answers *is each tenant getting the service they were promised, and if
//! not, which request shows why*.
//!
//! **SLO engine** ([`SloEngine`]): per-tenant objectives — deadline-miss
//! rate, plan-latency threshold, realised/planned cost ratio (fed by
//! `rrp-sim` soaks) — each with a rolling error-budget ledger and
//! Google-SRE-style multi-window burn-rate alerting. An alert fires when
//! the budget burns faster than a threshold over *both* windows of a pair
//! (fast 5m/1h catches cliffs, slow 6h/3d catches slow leaks). All window
//! arithmetic runs on trace timestamps (`Event::t_us`), never the wall
//! clock, so seeded storms and trace replays alert deterministically.
//!
//! **Tail sampler**: every request assembles a lightweight causal
//! timeline (queue → audit → rung ladder → LP/B&B spans, keyed by the
//! engine-assigned request id), but only timelines that breach an
//! objective or land in the latency tail are retained, in a bounded
//! exemplar store linked from the alert that fired. The healthy 99% of
//! traffic costs a handful of clones and is discarded at completion.
//!
//! The engine embeds this as `EngineConfig::slo`; `/slo` serves
//! [`SloEngine::status_json`], `rrp_slo_*` metric families land in the
//! `rrp-obs` registry via [`SloEngine::sync_registry`], and burn-rate
//! breaches fire a `slo_burn_rate` flight-recorder trigger so post-mortem
//! bundles carry the offending tenant's exemplar timelines.

mod engine;
mod window;

use std::sync::{Mutex, MutexGuard};

pub use engine::{Alert, Objective, SloEngine, OBJECTIVES};

/// Lock a mutex, recovering the guard from a poisoned lock: everything
/// this crate protects is observational (ledgers, timelines, exemplars),
/// and a panicking instrumented thread must not also wedge the SLO
/// accounting that exists to notice the damage.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// SLO options (engine: `EngineConfig::slo`). Budgets are *bad-event
/// fractions*: a `deadline_miss_budget` of 0.01 promises 99% of requests
/// meet their deadline; burn rate is the observed bad fraction divided by
/// that budget, so burn 1.0 spends the budget exactly at the sustainable
/// rate and burn 14.4 exhausts a 3-day budget in five hours.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Tolerated deadline-miss fraction per tenant (0 disables the
    /// objective).
    pub deadline_miss_budget: f64,
    /// Plan-latency threshold (ms): requests slower than this are
    /// latency-bad.
    pub latency_slo_ms: f64,
    /// Tolerated latency-bad fraction per tenant (0 disables).
    pub latency_budget: f64,
    /// Realised/planned cost ratio above which a sim episode is cost-bad.
    pub cost_ratio_max: f64,
    /// Tolerated cost-bad fraction of episodes per tenant (0 disables).
    pub cost_budget: f64,
    /// Fast alert pair `(short, long)` in seconds of trace time.
    pub fast_windows_s: (u64, u64),
    /// Slow alert pair `(short, long)` in seconds of trace time.
    pub slow_windows_s: (u64, u64),
    /// Burn-rate threshold both fast windows must exceed to page.
    pub fast_burn: f64,
    /// Burn-rate threshold both slow windows must exceed to page.
    pub slow_burn: f64,
    /// Minimum events in every window of a pair before its burn rate is
    /// trusted (guards divide-by-tiny alerts on the first bad request).
    pub min_samples: u64,
    /// Same guard for the episode-grained cost objective.
    pub cost_min_samples: u64,
    /// A fired (tenant, objective) alert suppresses re-fires for this
    /// long — one incident, one alert.
    pub alert_cooldown_s: u64,
    /// Tenant-table cap: further tenants fold into `__other__` (same
    /// convention as the `rrp-obs` registry's series cap).
    pub max_tenants: usize,
    /// Exemplar-store cap: retaining past this evicts the oldest.
    pub max_exemplars: usize,
    /// Events kept per timeline; the rest are counted as truncated.
    pub max_exemplar_events: usize,
    /// Latency quantile defining "the tail" for retention.
    pub tail_quantile: f64,
    /// Retention margin over the tail quantile: a request is tail-sampled
    /// when its latency exceeds `quantile(tail_quantile) × tail_margin`.
    /// The margin absorbs the log-histogram's ~9% quantile error so a
    /// healthy, tight latency distribution retains nothing.
    pub tail_margin: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            deadline_miss_budget: 0.01,
            latency_slo_ms: 250.0,
            latency_budget: 0.01,
            cost_ratio_max: 1.5,
            cost_budget: 0.05,
            fast_windows_s: (300, 3_600),
            slow_windows_s: (21_600, 259_200),
            fast_burn: 14.4,
            slow_burn: 6.0,
            min_samples: 10,
            cost_min_samples: 4,
            alert_cooldown_s: 3_600,
            max_tenants: 16,
            max_exemplars: 32,
            max_exemplar_events: 64,
            tail_quantile: 0.99,
            tail_margin: 2.0,
        }
    }
}
