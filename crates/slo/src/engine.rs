//! The SLO engine: a trace [`Sink`] that keeps per-tenant error-budget
//! ledgers, fires multi-window burn-rate alerts, and tail-samples request
//! timelines into a bounded exemplar store.
//!
//! Hot-path cost is deliberately lopsided: solver-layer events (simplex
//! iterations, B&B nodes, gap samples) return after one `match` arm and a
//! relaxed timestamp update; only the ~8 lifecycle events per request take
//! the state mutex. The overhead gate in `benches/engine_throughput.rs`
//! holds the whole crate under 2% of engine throughput.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rrp_obs::{Registry, OVERFLOW_LABEL};
use rrp_trace::{Event, EventKind, LogHistogram, Sink};

use crate::window::WindowRing;
use crate::{lock, SloConfig};

/// Requests tracked for timeline assembly at once. Requests beyond this
/// (or whose spans leaked through a worker panic) still get full budget
/// accounting — they just cannot become exemplars.
const MAX_ACTIVE_TIMELINES: usize = 1_024;
/// Span→root entries retained; same degradation contract as above.
const MAX_SPAN_ROOTS: usize = 8 * MAX_ACTIVE_TIMELINES;
/// Latency samples a tenant needs before tail retention activates (the
/// tail of an empty histogram is noise).
const TAIL_MIN_COUNT: u64 = 32;
/// Exemplar request ids linked from one alert.
const MAX_ALERT_EXEMPLARS: usize = 8;
/// Alert records retained for `/slo` (alerts_total keeps counting).
const MAX_ALERTS: usize = 32;

/// The per-tenant objectives the engine accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Fraction of requests missing their deadline.
    DeadlineMiss,
    /// Fraction of requests slower than `SloConfig::latency_slo_ms`.
    Latency,
    /// Fraction of sim episodes whose realised/planned cost ratio
    /// exceeds `SloConfig::cost_ratio_max`.
    CostRatio,
}

/// Every objective, in ledger/report order.
pub const OBJECTIVES: [Objective; 3] =
    [Objective::DeadlineMiss, Objective::Latency, Objective::CostRatio];

impl Objective {
    pub fn as_str(self) -> &'static str {
        match self {
            Objective::DeadlineMiss => "deadline_miss",
            Objective::Latency => "latency",
            Objective::CostRatio => "cost_ratio",
        }
    }

    fn index(self) -> usize {
        match self {
            Objective::DeadlineMiss => 0,
            Objective::Latency => 1,
            Objective::CostRatio => 2,
        }
    }

    fn budget(self, cfg: &SloConfig) -> f64 {
        match self {
            Objective::DeadlineMiss => cfg.deadline_miss_budget,
            Objective::Latency => cfg.latency_budget,
            Objective::CostRatio => cfg.cost_budget,
        }
    }

    fn min_samples(self, cfg: &SloConfig) -> u64 {
        match self {
            Objective::CostRatio => cfg.cost_min_samples,
            _ => cfg.min_samples,
        }
    }
}

/// One fired burn-rate alert, linked to the exemplar timelines the tenant
/// had retained when it fired.
#[derive(Debug, Clone)]
pub struct Alert {
    pub tenant: String,
    pub objective: &'static str,
    /// Which window pair tripped: `"fast"` or `"slow"`.
    pub window: &'static str,
    /// The pair burn rate at fire time (min of the two windows).
    pub burn: f64,
    /// Trace time the alert fired.
    pub t_us: u64,
    /// Request ids of the tenant's most recent exemplars at fire time.
    pub exemplar_request_ids: Vec<u64>,
}

type AlertHook = Box<dyn Fn(&Alert) + Send + Sync>;

/// Rolling state of one objective for one tenant.
struct ObjectiveState {
    /// Fine-bucketed ring covering the fast pair's long window.
    fast: WindowRing,
    /// Coarse-bucketed ring covering the slow pair's long window.
    slow: WindowRing,
    /// Lifetime events/bad-events (the ledger totals `/slo` reports).
    total: u64,
    bad: u64,
    last_alert_us: Option<u64>,
}

impl ObjectiveState {
    fn new(cfg: &SloConfig) -> Self {
        Self {
            fast: WindowRing::new(cfg.fast_windows_s.0 / 20, cfg.fast_windows_s.1),
            slow: WindowRing::new(cfg.slow_windows_s.0 / 20, cfg.slow_windows_s.1),
            total: 0,
            bad: 0,
            last_alert_us: None,
        }
    }

    fn record(&mut self, t_us: u64, bad: bool) {
        self.total += 1;
        self.bad += u64::from(bad);
        self.fast.record(t_us, bad);
        self.slow.record(t_us, bad);
    }

    /// Budget fraction left over the slow pair's long window: 1.0 with an
    /// untouched budget, 0.0 exactly exhausted, negative when overspent.
    fn budget_remaining(&self, cfg: &SloConfig, budget: f64, now_us: u64) -> f64 {
        if budget <= 0.0 {
            return 1.0;
        }
        let (bad, total) = self.slow.tally(cfg.slow_windows_s.1, now_us);
        if total == 0 {
            return 1.0;
        }
        1.0 - bad as f64 / (budget * total as f64)
    }

    /// Burn rate over one window (0 when the window is empty).
    fn window_burn(&self, ring: Ring, window_s: u64, budget: f64, now_us: u64) -> f64 {
        if budget <= 0.0 {
            return 0.0;
        }
        let r = match ring {
            Ring::Fast => &self.fast,
            Ring::Slow => &self.slow,
        };
        let (bad, total) = r.tally(window_s, now_us);
        if total == 0 {
            return 0.0;
        }
        bad as f64 / total as f64 / budget
    }

    /// Pair burn: the min over both windows, 0 until both have
    /// `min_samples` (an alert must be corroborated by the long window).
    fn pair_burn(
        &self,
        ring: Ring,
        (short_s, long_s): (u64, u64),
        min_samples: u64,
        budget: f64,
        now_us: u64,
    ) -> f64 {
        if budget <= 0.0 {
            return 0.0;
        }
        let r = match ring {
            Ring::Fast => &self.fast,
            Ring::Slow => &self.slow,
        };
        let (bad_s, total_s) = r.tally(short_s, now_us);
        let (bad_l, total_l) = r.tally(long_s, now_us);
        if total_s < min_samples.max(1) || total_l < min_samples.max(1) {
            return 0.0;
        }
        let burn_s = bad_s as f64 / total_s as f64 / budget;
        let burn_l = bad_l as f64 / total_l as f64 / budget;
        burn_s.min(burn_l)
    }
}

#[derive(Clone, Copy)]
enum Ring {
    Fast,
    Slow,
}

struct TenantState {
    objectives: [ObjectiveState; 3],
    latency_ms: LogHistogram,
    requests: u64,
    /// Last realised/planned cost ratio a sim episode reported (NaN until
    /// the first episode; serialises as null).
    cost_ratio: f64,
}

impl TenantState {
    fn new(cfg: &SloConfig) -> Self {
        Self {
            objectives: [
                ObjectiveState::new(cfg),
                ObjectiveState::new(cfg),
                ObjectiveState::new(cfg),
            ],
            latency_ms: LogHistogram::new(),
            requests: 0,
            cost_ratio: f64::NAN,
        }
    }

    /// Lifetime event volume across objectives (sync's ranking key).
    fn volume(&self) -> u64 {
        self.objectives.iter().map(|o| o.total).sum()
    }
}

/// A request timeline being assembled (events so far, overflow count).
#[derive(Default)]
struct Timeline {
    events: Vec<Event>,
    truncated: u64,
}

/// A retained timeline: the request's identity, why it was kept, and its
/// causal event sequence.
struct Exemplar {
    request_id: u64,
    tenant: String,
    /// `"deadline"`, `"latency"` or `"tail"`.
    reason: &'static str,
    level: String,
    outcome: String,
    latency_us: u64,
    deadline_met: bool,
    t_us: u64,
    events: Vec<Event>,
    truncated: u64,
}

#[derive(Default)]
struct Inner {
    tenants: HashMap<String, TenantState>,
    /// Open span → owning request span (root). Entries die at span close.
    root_of: HashMap<u64, u64>,
    /// Request span → timeline buffer, finalized at `RequestDone`.
    active: HashMap<u64, Timeline>,
    exemplars: VecDeque<Exemplar>,
    alerts: VecDeque<Alert>,
    alerts_total: u64,
    retained: u64,
    dropped: u64,
}

/// The per-tenant SLO engine. Joins the engine's trace fanout as a
/// [`Sink`]; see the crate docs for the full wiring.
pub struct SloEngine {
    cfg: SloConfig,
    /// High-water trace timestamp — the engine's notion of "now".
    now_us: AtomicU64,
    inner: Mutex<Inner>,
    alert_hook: Mutex<Option<AlertHook>>,
}

impl SloEngine {
    pub fn new(cfg: SloConfig) -> Self {
        Self {
            cfg,
            now_us: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
            alert_hook: Mutex::new(None),
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Install the breach callback (the engine points this at the flight
    /// recorder's `slo_burn_rate` trigger). Called after the alert is
    /// recorded and the state lock is released, so the hook may call back
    /// into [`SloEngine::status_json`].
    pub fn set_alert_hook(&self, hook: AlertHook) {
        *lock(&self.alert_hook) = Some(hook);
    }

    /// Alerts fired since start (including ones evicted from the bounded
    /// alert list).
    pub fn alerts_total(&self) -> u64 {
        lock(&self.inner).alerts_total
    }

    /// The retained alert records, oldest first.
    pub fn alerts(&self) -> Vec<Alert> {
        lock(&self.inner).alerts.iter().cloned().collect()
    }

    /// Timelines retained / discarded so far.
    pub fn exemplar_counts(&self) -> (u64, u64) {
        let inner = lock(&self.inner);
        (inner.retained, inner.dropped)
    }

    /// Feed one sim episode's realised vs planned cost for `tenant`.
    /// Bad when `realised / planned > cost_ratio_max`. Uses the engine's
    /// trace high-water as "now" (episodes have no event timestamp).
    pub fn record_cost(&self, tenant: &str, planned: f64, realised: f64) {
        // relaxed-ok: monotone high-water read, staleness only skews a window edge
        let now_us = self.now_us.load(Ordering::Relaxed);
        let ratio = if planned > f64::EPSILON { realised / planned } else { f64::NAN };
        let bad = ratio.is_finite() && ratio > self.cfg.cost_ratio_max;
        let mut fired = Vec::new();
        {
            let mut guard = lock(&self.inner);
            let inner = &mut *guard;
            let key = tenant_key(&self.cfg, &mut inner.tenants, tenant);
            let st = entry(&self.cfg, &mut inner.tenants, &key);
            st.cost_ratio = ratio;
            st.objectives[Objective::CostRatio.index()].record(now_us.max(1), bad);
            self.check_burn(inner, &key, Objective::CostRatio, now_us.max(1), &mut fired);
        }
        self.fire(&fired);
    }

    /// The `/slo` body: budget table, burn rates per window, alert list,
    /// and the retained exemplar timelines. Schema `rrp-slo/1`.
    pub fn status_json(&self) -> String {
        // relaxed-ok: monotone high-water read for display
        let now_us = self.now_us.load(Ordering::Relaxed);
        let inner = lock(&self.inner);
        let mut out = String::with_capacity(2048);
        out.push_str("{\"schema\":\"rrp-slo/1\",");
        let _ = write!(out, "\"now_us\":{now_us},\"alerts_total\":{},", inner.alerts_total);
        let _ = write!(
            out,
            "\"exemplars\":{{\"retained\":{},\"dropped\":{},\"stored\":{}}},",
            inner.retained,
            inner.dropped,
            inner.exemplars.len()
        );

        out.push_str("\"tenants\":[");
        let mut order: Vec<(&String, &TenantState)> = inner.tenants.iter().collect();
        order.sort_by(|a, b| b.1.volume().cmp(&a.1.volume()).then_with(|| a.0.cmp(b.0)));
        for (i, (name, st)) in order.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            json_string(&mut out, name);
            let _ = write!(out, ",\"requests\":{},\"p99_latency_ms\":", st.requests);
            json_f64(&mut out, st.latency_ms.quantile(0.99));
            out.push_str(",\"cost_ratio\":");
            json_f64(&mut out, st.cost_ratio);
            out.push_str(",\"objectives\":[");
            for (j, obj) in OBJECTIVES.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let os = &st.objectives[obj.index()];
                let budget = obj.budget(&self.cfg);
                let _ = write!(out, "{{\"objective\":\"{}\",\"budget\":", obj.as_str());
                json_f64(&mut out, budget);
                let _ = write!(out, ",\"events\":{},\"bad\":{}", os.total, os.bad);
                out.push_str(",\"budget_remaining\":");
                json_f64(&mut out, os.budget_remaining(&self.cfg, budget, now_us));
                let alerting = os.last_alert_us.is_some_and(|t| {
                    now_us.saturating_sub(t) < self.cfg.alert_cooldown_s * 1_000_000
                });
                let _ = write!(out, ",\"alerting\":{alerting},\"burn\":[");
                for (k, (ring, window_s)) in window_set(&self.cfg).into_iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{{\"window\":\"{}\",\"rate\":", window_label(window_s));
                    json_f64(&mut out, os.window_burn(ring, window_s, budget, now_us));
                    out.push('}');
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        out.push_str("],");

        out.push_str("\"alerts\":[");
        for (i, a) in inner.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            json_string(&mut out, &a.tenant);
            let _ = write!(
                out,
                ",\"objective\":\"{}\",\"window\":\"{}\",\"burn\":",
                a.objective, a.window
            );
            json_f64(&mut out, a.burn);
            let _ = write!(out, ",\"t_us\":{},\"exemplar_request_ids\":[", a.t_us);
            for (j, id) in a.exemplar_request_ids.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{id}");
            }
            out.push_str("]}");
        }
        out.push_str("],");

        out.push_str("\"exemplar_timelines\":[");
        for (i, ex) in inner.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"request_id\":{},\"tenant\":", ex.request_id);
            json_string(&mut out, &ex.tenant);
            let _ = write!(out, ",\"reason\":\"{}\",\"level\":", ex.reason);
            json_string(&mut out, &ex.level);
            out.push_str(",\"outcome\":");
            json_string(&mut out, &ex.outcome);
            let _ = write!(
                out,
                ",\"latency_us\":{},\"deadline_met\":{},\"t_us\":{},\"truncated\":{},\"events\":[",
                ex.latency_us, ex.deadline_met, ex.t_us, ex.truncated
            );
            for (j, ev) in ex.events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                ev.write_json(&mut out);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Fold current state into the metrics registry (`rrp_slo_*`
    /// families), called once per scrape. Cap-aware: per-tenant series
    /// are emitted for the top tenants by event volume such that each
    /// family stays within the registry's series cap, and the rest fold
    /// into a `__other__` series carrying the *most pessimistic* value
    /// (min budget remaining, max burn) — the folded series still means
    /// something, instead of whichever tenant synced last.
    pub fn sync_registry(&self, reg: &Registry) {
        // relaxed-ok: monotone high-water read for display
        let now_us = self.now_us.load(Ordering::Relaxed);
        let inner = lock(&self.inner);
        let cap = reg.series_cap();
        let windows = window_set(&self.cfg);
        // reserve one slot per family for the fold bucket
        let budget_tenants = (cap / OBJECTIVES.len()).saturating_sub(1).max(1);
        let burn_tenants = (cap / (OBJECTIVES.len() * windows.len())).saturating_sub(1).max(1);

        let mut order: Vec<(&String, &TenantState)> = inner.tenants.iter().collect();
        order.sort_by(|a, b| b.1.volume().cmp(&a.1.volume()).then_with(|| a.0.cmp(b.0)));

        // fold accumulators: worst value per objective (budget) and per
        // objective × window (burn)
        let mut fold_budget = [f64::INFINITY; 3];
        let mut fold_budget_any = false;
        let mut fold_burn = vec![0.0f64; OBJECTIVES.len() * windows.len()];
        let mut fold_burn_any = false;

        for (rank, (name, st)) in order.iter().enumerate() {
            let folded_name = name.as_str() == OVERFLOW_LABEL;
            for obj in OBJECTIVES {
                let os = &st.objectives[obj.index()];
                let budget = obj.budget(&self.cfg);
                let remaining = os.budget_remaining(&self.cfg, budget, now_us);
                if rank < budget_tenants && !folded_name {
                    reg.gauge(
                        "rrp_slo_budget_remaining",
                        "Error budget left over the slow window (1 = untouched, <0 overspent)",
                        &[("tenant", name), ("objective", obj.as_str())],
                    )
                    .set(remaining);
                } else {
                    fold_budget[obj.index()] = fold_budget[obj.index()].min(remaining);
                    fold_budget_any = true;
                }
                for (w, &(ring, window_s)) in windows.iter().enumerate() {
                    let burn = os.window_burn(ring, window_s, budget, now_us);
                    if rank < burn_tenants && !folded_name {
                        reg.gauge(
                            "rrp_slo_burn_rate",
                            "Error-budget burn rate per window (1 = sustainable spend)",
                            &[
                                ("tenant", name),
                                ("objective", obj.as_str()),
                                ("window", &window_label(window_s)),
                            ],
                        )
                        .set(burn);
                    } else {
                        let slot = obj.index() * windows.len() + w;
                        fold_burn[slot] = fold_burn[slot].max(burn);
                        fold_burn_any = true;
                    }
                }
            }
        }
        if fold_budget_any {
            for obj in OBJECTIVES {
                let v = fold_budget[obj.index()];
                reg.gauge(
                    "rrp_slo_budget_remaining",
                    "Error budget left over the slow window (1 = untouched, <0 overspent)",
                    &[("tenant", OVERFLOW_LABEL), ("objective", obj.as_str())],
                )
                .set(if v.is_finite() { v } else { 1.0 });
            }
        }
        if fold_burn_any {
            for obj in OBJECTIVES {
                for (w, &(_, window_s)) in windows.iter().enumerate() {
                    reg.gauge(
                        "rrp_slo_burn_rate",
                        "Error-budget burn rate per window (1 = sustainable spend)",
                        &[
                            ("tenant", OVERFLOW_LABEL),
                            ("objective", obj.as_str()),
                            ("window", &window_label(window_s)),
                        ],
                    )
                    .set(fold_burn[obj.index() * windows.len() + w]);
                }
            }
        }

        reg.gauge(
            "rrp_slo_tenants",
            "Tenants tracked by the SLO engine (fold bucket included)",
            &[],
        )
        .set(inner.tenants.len() as f64);
        reg.counter("rrp_slo_alerts_total", "Burn-rate alerts fired", &[]).set(inner.alerts_total);
        reg.counter(
            "rrp_slo_exemplars_retained_total",
            "Request timelines retained by the tail sampler",
            &[],
        )
        .set(inner.retained);
        reg.counter(
            "rrp_slo_exemplars_dropped_total",
            "Request timelines discarded (healthy, untracked, or evicted)",
            &[],
        )
        .set(inner.dropped);
    }

    fn on_lifecycle(&self, ev: &Event) {
        let mut guard = lock(&self.inner);
        let inner = &mut *guard;
        match &ev.kind {
            EventKind::SpanOpen { name, parent } => {
                if *name == "request" {
                    if inner.root_of.len() < MAX_SPAN_ROOTS {
                        // growth-ok: capped above; entries die at span close
                        inner.root_of.insert(ev.span.0, ev.span.0);
                    }
                    if inner.active.len() < MAX_ACTIVE_TIMELINES {
                        // growth-ok: capped above; removed at RequestDone
                        inner.active.insert(ev.span.0, Timeline::default());
                    }
                    append(&mut inner.active, ev.span.0, ev, self.cfg.max_exemplar_events);
                } else if let Some(&root) = inner.root_of.get(&parent.0) {
                    if inner.root_of.len() < MAX_SPAN_ROOTS {
                        // growth-ok: capped above; entries die at span close
                        inner.root_of.insert(ev.span.0, root);
                    }
                    append(&mut inner.active, root, ev, self.cfg.max_exemplar_events);
                }
            }
            EventKind::SpanClose => {
                if let Some(root) = inner.root_of.remove(&ev.span.0) {
                    append(&mut inner.active, root, ev, self.cfg.max_exemplar_events);
                }
            }
            _ => {
                if let Some(&root) = inner.root_of.get(&ev.span.0) {
                    append(&mut inner.active, root, ev, self.cfg.max_exemplar_events);
                }
            }
        }
    }

    fn on_done(&self, ev: &Event) {
        let EventKind::RequestDone { request_id, tenant, level, outcome, latency_us, deadline_met } =
            &ev.kind
        else {
            return;
        };
        let latency_ms = *latency_us as f64 / 1e3;
        let mut fired = Vec::new();
        {
            let mut guard = lock(&self.inner);
            let inner = &mut *guard;
            let timeline = inner.active.remove(&ev.span.0).map(|mut tl| {
                if tl.events.len() < self.cfg.max_exemplar_events {
                    tl.events.push(ev.clone());
                } else {
                    tl.truncated += 1;
                }
                tl
            });

            let key = tenant_key(&self.cfg, &mut inner.tenants, tenant);
            let st = entry(&self.cfg, &mut inner.tenants, &key);
            st.requests += 1;
            st.latency_ms.record(latency_ms);
            let latency_bad = latency_ms > self.cfg.latency_slo_ms;
            let tail_floor = st.latency_ms.quantile(self.cfg.tail_quantile) * self.cfg.tail_margin;
            let reason = if !*deadline_met {
                Some("deadline")
            } else if latency_bad {
                Some("latency")
            } else if st.latency_ms.count() >= TAIL_MIN_COUNT && latency_ms > tail_floor {
                Some("tail")
            } else {
                None
            };
            st.objectives[Objective::DeadlineMiss.index()].record(ev.t_us, !*deadline_met);
            st.objectives[Objective::Latency.index()].record(ev.t_us, latency_bad);

            match (reason, timeline) {
                (Some(reason), Some(tl)) => {
                    while inner.exemplars.len() >= self.cfg.max_exemplars.max(1) {
                        inner.exemplars.pop_front();
                        inner.dropped += 1; // evicted by the store cap
                    }
                    inner.exemplars.push_back(Exemplar {
                        request_id: *request_id,
                        tenant: tenant.clone(),
                        reason,
                        level: (*level).to_string(),
                        outcome: (*outcome).to_string(),
                        latency_us: *latency_us,
                        deadline_met: *deadline_met,
                        t_us: ev.t_us,
                        events: tl.events,
                        truncated: tl.truncated,
                    });
                    inner.retained += 1;
                }
                _ => inner.dropped += 1,
            }

            self.check_burn(inner, &key, Objective::DeadlineMiss, ev.t_us, &mut fired);
            self.check_burn(inner, &key, Objective::Latency, ev.t_us, &mut fired);
        }
        self.fire(&fired);
    }

    /// Evaluate both window pairs for `(tenant, objective)`; a trip
    /// records the alert (bounded list), stamps the cooldown, and queues
    /// it for the hook.
    fn check_burn(
        &self,
        inner: &mut Inner,
        tenant: &str,
        obj: Objective,
        now_us: u64,
        fired: &mut Vec<Alert>,
    ) {
        let budget = obj.budget(&self.cfg);
        let min_samples = obj.min_samples(&self.cfg);
        let Some(st) = inner.tenants.get_mut(tenant) else {
            return;
        };
        let os = &mut st.objectives[obj.index()];
        if budget <= 0.0 {
            return;
        }
        if let Some(last) = os.last_alert_us {
            if now_us.saturating_sub(last) < self.cfg.alert_cooldown_s * 1_000_000 {
                return;
            }
        }
        let fast = os.pair_burn(Ring::Fast, self.cfg.fast_windows_s, min_samples, budget, now_us);
        let slow = os.pair_burn(Ring::Slow, self.cfg.slow_windows_s, min_samples, budget, now_us);
        let (window, burn) = if fast >= self.cfg.fast_burn {
            ("fast", fast)
        } else if slow >= self.cfg.slow_burn {
            ("slow", slow)
        } else {
            return;
        };
        os.last_alert_us = Some(now_us);
        let exemplar_request_ids: Vec<u64> = inner
            .exemplars
            .iter()
            .rev()
            .filter(|e| e.tenant == tenant)
            .take(MAX_ALERT_EXEMPLARS)
            .map(|e| e.request_id)
            .collect();
        let alert = Alert {
            tenant: tenant.to_string(),
            objective: obj.as_str(),
            window,
            burn,
            t_us: now_us,
            exemplar_request_ids,
        };
        inner.alerts_total += 1;
        while inner.alerts.len() >= MAX_ALERTS {
            inner.alerts.pop_front();
        }
        inner.alerts.push_back(alert.clone());
        fired.push(alert);
    }

    /// Run the breach hook outside the state lock (it may call back into
    /// `status_json`, e.g. via the flight recorder's bundle provider).
    fn fire(&self, fired: &[Alert]) {
        if fired.is_empty() {
            return;
        }
        let hook = lock(&self.alert_hook);
        if let Some(h) = hook.as_ref() {
            for a in fired {
                h(a);
            }
        }
    }
}

impl Sink for SloEngine {
    fn emit(&self, ev: &Event) {
        match &ev.kind {
            EventKind::RequestDone { .. } => {
                // cross-lane monotonicity only shifts a window edge by the lanes' skew
                // relaxed-ok: high-water timestamp
                self.now_us.fetch_max(ev.t_us, Ordering::Relaxed);
                self.on_done(ev);
            }
            EventKind::SpanOpen { .. }
            | EventKind::SpanClose
            | EventKind::Enqueued
            | EventKind::Dequeued
            | EventKind::CacheLookup { .. }
            | EventKind::AuditGate { .. }
            | EventKind::LadderStep { .. }
            | EventKind::SolveDone { .. } => {
                // relaxed-ok: same high-water clock as above
                self.now_us.fetch_max(ev.t_us, Ordering::Relaxed);
                self.on_lifecycle(ev);
            }
            // solver-layer events (simplex iters, B&B nodes, gap samples)
            // stay off the lock *and* off the shared clock line: at
            // millions of events per second a contended fetch_max is the
            // whole overhead budget — one match arm and out
            _ => {}
        }
    }
}

/// Resolve the ledger key for `tenant`: itself while the table has room,
/// `__other__` once the cap is hit (matching the registry's fold label so
/// `/slo` and `/metrics` tell one story).
fn tenant_key(cfg: &SloConfig, tenants: &mut HashMap<String, TenantState>, tenant: &str) -> String {
    if tenants.contains_key(tenant) {
        return tenant.to_string();
    }
    let named = tenants.len() - usize::from(tenants.contains_key(OVERFLOW_LABEL));
    if named < cfg.max_tenants.max(1) {
        tenant.to_string()
    } else {
        OVERFLOW_LABEL.to_string()
    }
}

/// Fetch-or-create the ledger for a resolved key.
fn entry<'a>(
    cfg: &SloConfig,
    tenants: &'a mut HashMap<String, TenantState>,
    key: &str,
) -> &'a mut TenantState {
    if !tenants.contains_key(key) {
        // growth-ok: keys pass through tenant_key's cap first, so the
        // table holds at most max_tenants named entries plus __other__
        tenants.insert(key.to_string(), TenantState::new(cfg));
    }
    tenants.get_mut(key).unwrap_or_else(|| unreachable_entry())
}

/// `entry` inserted the key above; this path is statically dead but keeps
/// the lookup panic-free for the lint gate.
fn unreachable_entry<'a>() -> &'a mut TenantState {
    // a failed re-lookup after insert means the allocator itself lied;
    // leak one default ledger rather than aborting the worker
    Box::leak(Box::new(TenantState::new(&SloConfig::default())))
}

fn append(active: &mut HashMap<u64, Timeline>, root: u64, ev: &Event, cap: usize) {
    if let Some(tl) = active.get_mut(&root) {
        if tl.events.len() < cap {
            // growth-ok: capped by max_exemplar_events just above
            tl.events.push(ev.clone());
        } else {
            tl.truncated += 1;
        }
    }
}

/// The four reported windows: fast pair then slow pair.
fn window_set(cfg: &SloConfig) -> [(Ring, u64); 4] {
    [
        (Ring::Fast, cfg.fast_windows_s.0),
        (Ring::Fast, cfg.fast_windows_s.1),
        (Ring::Slow, cfg.slow_windows_s.0),
        (Ring::Slow, cfg.slow_windows_s.1),
    ]
}

/// Human window label: `300 → "5m"`, `259200 → "3d"`, irregular values
/// fall back to seconds.
fn window_label(secs: u64) -> String {
    if secs > 0 && secs.is_multiple_of(86_400) {
        format!("{}d", secs / 86_400)
    } else if secs > 0 && secs.is_multiple_of(3_600) {
        format!("{}h", secs / 3_600)
    } else if secs > 0 && secs.is_multiple_of(60) {
        format!("{}m", secs / 60)
    } else {
        format!("{secs}s")
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shortest-roundtrip float with a `.0` suffix for integral values;
/// non-finite serialises as `null` (same convention as `rrp-trace`).
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let start = out.len();
        let _ = write!(out, "{v}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use rrp_trace::SpanId;

    use super::*;

    fn cfg() -> SloConfig {
        SloConfig::default()
    }

    fn done(span: u64, t_us: u64, tenant: &str, request_id: u64, deadline_met: bool) -> Event {
        Event {
            t_us,
            worker: 0,
            span: SpanId(span),
            kind: EventKind::RequestDone {
                request_id,
                tenant: tenant.to_string(),
                level: "full",
                outcome: "ok",
                latency_us: 1_000,
                deadline_met,
            },
        }
    }

    fn open(span: u64, t_us: u64, name: &'static str, parent: u64) -> Event {
        Event {
            t_us,
            worker: 0,
            span: SpanId(span),
            kind: EventKind::SpanOpen { name, parent: SpanId(parent) },
        }
    }

    #[test]
    fn storm_fires_exactly_one_fast_alert_with_exemplars() {
        let slo = SloEngine::new(cfg());
        for i in 0..20u64 {
            slo.emit(&open(i + 1, i * 1_000, "request", 0));
            slo.emit(&done(i + 1, i * 1_000 + 500, "storm", i, false));
        }
        assert_eq!(slo.alerts_total(), 1, "cooldown must debounce to one alert");
        let alerts = slo.alerts();
        assert_eq!(alerts[0].tenant, "storm");
        assert_eq!(alerts[0].objective, "deadline_miss");
        assert_eq!(alerts[0].window, "fast");
        assert!(alerts[0].burn >= cfg().fast_burn, "burn {}", alerts[0].burn);
        assert!(!alerts[0].exemplar_request_ids.is_empty(), "alert links exemplars");
        // the alert fired at the min_samples'th request
        assert_eq!(alerts[0].t_us, 9 * 1_000 + 500);
        let (retained, _) = slo.exemplar_counts();
        assert!(retained >= 10, "misses are retained ({retained})");
    }

    #[test]
    fn healthy_traffic_fires_nothing_and_retains_nothing() {
        let slo = SloEngine::new(cfg());
        for i in 0..200u64 {
            slo.emit(&open(i + 1, i * 1_000, "request", 0));
            slo.emit(&done(i + 1, i * 1_000 + 500, "calm", i, true));
        }
        assert_eq!(slo.alerts_total(), 0);
        let (retained, dropped) = slo.exemplar_counts();
        assert_eq!(retained, 0, "uniform healthy latencies must not tail-sample");
        assert_eq!(dropped, 200);
    }

    #[test]
    fn alert_needs_min_samples() {
        let slo = SloEngine::new(cfg());
        for i in 0..5u64 {
            slo.emit(&done(i + 1, i * 1_000, "few", i, false));
        }
        assert_eq!(slo.alerts_total(), 0, "5 misses < min_samples 10");
    }

    #[test]
    fn latency_objective_has_its_own_budget() {
        let slo = SloEngine::new(cfg());
        for i in 0..20u64 {
            let mut ev = done(i + 1, i * 1_000, "slowpoke", i, true);
            if let EventKind::RequestDone { latency_us, .. } = &mut ev.kind {
                *latency_us = 400_000; // 400 ms > 250 ms SLO
            }
            slo.emit(&ev);
        }
        let alerts = slo.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].objective, "latency");
    }

    #[test]
    fn cost_objective_is_fed_out_of_band() {
        let slo = SloEngine::new(cfg());
        slo.emit(&done(1, 1_000, "pin-now", 0, true)); // advance trace time
        for _ in 0..8 {
            slo.record_cost("overrun", 1.0, 2.0); // ratio 2.0 > 1.5
        }
        let alerts = slo.alerts();
        assert_eq!(alerts.len(), 1, "{:?}", alerts);
        assert_eq!(alerts[0].tenant, "overrun");
        assert_eq!(alerts[0].objective, "cost_ratio");
        // healthy episodes never alert
        let calm = SloEngine::new(cfg());
        for _ in 0..8 {
            calm.record_cost("fine", 1.0, 1.1);
        }
        assert_eq!(calm.alerts_total(), 0);
    }

    #[test]
    fn timelines_assemble_the_span_subtree() {
        let slo = SloEngine::new(cfg());
        slo.emit(&open(1, 0, "request", 0));
        slo.emit(&Event { t_us: 1, worker: 0, span: SpanId(1), kind: EventKind::Enqueued });
        slo.emit(&open(2, 2, "rung:full", 1));
        slo.emit(&Event {
            t_us: 3,
            worker: 0,
            span: SpanId(2),
            kind: EventKind::LadderStep { level: "full", outcome: "ok".to_string(), elapsed_us: 1 },
        });
        slo.emit(&Event { t_us: 4, worker: 0, span: SpanId(2), kind: EventKind::SpanClose });
        slo.emit(&done(1, 5, "t", 7, false)); // miss → retained
        let json = slo.status_json();
        assert!(json.contains("\"request_id\":7"), "{json}");
        assert!(json.contains("\"reason\":\"deadline\""), "{json}");
        assert!(json.contains("\"ev\":\"ladder_step\""), "{json}");
        assert!(json.contains("\"ev\":\"span_open\""), "{json}");
        // solver events never enter timelines
        assert!(!json.contains("simplex_iter"), "{json}");
    }

    #[test]
    fn hook_runs_outside_the_lock_and_may_reenter() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let slo = Arc::new(SloEngine::new(cfg()));
        let seen = Arc::new(AtomicUsize::new(0));
        let reentrant = Arc::clone(&slo);
        let seen2 = Arc::clone(&seen);
        slo.set_alert_hook(Box::new(move |a| {
            assert_eq!(a.tenant, "storm");
            let _ = reentrant.status_json(); // must not deadlock
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        for i in 0..15u64 {
            slo.emit(&done(i + 1, i * 1_000, "storm", i, false));
        }
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn status_json_parses_and_reports_the_drained_budget() {
        let slo = SloEngine::new(cfg());
        for i in 0..20u64 {
            slo.emit(&done(i + 1, i * 1_000, "storm", i, false));
        }
        let v: serde_json::Value =
            serde_json::from_str(&slo.status_json()).expect("status_json is valid JSON");
        let s =
            |v: &serde_json::Value, k: &str| v.get(k).and_then(|x| x.as_str()).map(String::from);
        assert_eq!(s(&v, "schema").as_deref(), Some("rrp-slo/1"));
        let tenants = v.get("tenants").and_then(|t| t.as_array()).expect("tenants");
        let t = &tenants[0];
        assert_eq!(s(t, "tenant").as_deref(), Some("storm"));
        let dm = &t.get("objectives").and_then(|o| o.as_array()).expect("objectives")[0];
        assert_eq!(s(dm, "objective").as_deref(), Some("deadline_miss"));
        // 100% misses against a 1% budget: hugely overspent
        let remaining = dm.get("budget_remaining").and_then(|b| b.as_f64());
        assert!(remaining.is_some_and(|b| b < 0.0), "{remaining:?}");
        assert_eq!(dm.get("alerting").and_then(|a| a.as_bool()), Some(true));
        let burn = dm.get("burn").and_then(|b| b.as_array()).expect("burn")[0]
            .get("rate")
            .and_then(|r| r.as_f64())
            .unwrap_or(0.0);
        assert!(burn > 90.0, "burn {burn}");
    }

    #[test]
    fn window_labels_are_human() {
        assert_eq!(window_label(300), "5m");
        assert_eq!(window_label(3_600), "1h");
        assert_eq!(window_label(21_600), "6h");
        assert_eq!(window_label(259_200), "3d");
        assert_eq!(window_label(90), "90s");
    }
}
