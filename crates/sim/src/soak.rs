//! Multi-tenant soak mode: N concurrent simulated tenants drive the
//! engine at once, exercising the plan/basis caches, the degradation
//! ladder and the obs stack under churn — the sim doubling as a realistic
//! load generator.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rrp_engine::{Engine, PolicyKind};
use rrp_spotmarket::{SeedSeq, VmClass};

use crate::bidding::FeedbackBid;
use crate::episode::{run_episode, SimConfig};
use crate::recovery::OnDemandFailover;

/// Soak-run shape. Tenant `i` draws its episode seed from the master via
/// `derive_indexed("tenant", i % distinct_profiles)` — capping the number
/// of distinct profiles makes tenants share problem fingerprints, which
/// is exactly what heats the engine's plan cache.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    pub tenants: usize,
    /// Episode length per tenant (slots).
    pub slots: usize,
    /// Rolling window per tenant.
    pub horizon: usize,
    pub seed: u64,
    pub demand_mean: f64,
    pub deadline: Duration,
    /// Number of distinct episode profiles across tenants (cache sharing
    /// knob: `tenants` forces all-distinct, `1` forces all-identical).
    pub distinct_profiles: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            tenants: 128,
            slots: 12,
            horizon: 4,
            seed: 20120521,
            demand_mean: 0.4,
            deadline: Duration::from_secs(10),
            distinct_profiles: 32,
        }
    }
}

/// Aggregate outcome of a soak run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SoakOutcome {
    pub tenants: usize,
    /// Engine responses produced during the run.
    pub requests: u64,
    pub wall_ms: f64,
    /// Requests per second through the engine.
    pub rps: f64,
    pub cache_hit_rate: f64,
    pub deadline_misses: u64,
    /// Out-of-bid interruptions summed across tenants.
    pub interruptions: usize,
    /// SLO-violated slots summed across tenants.
    pub violated_slots: usize,
    /// Demand still unserved at episode end, summed across tenants (GB).
    pub unrecovered_gb: f64,
}

/// Drive `cfg.tenants` concurrent episodes through `engine` (one OS
/// thread per tenant — plan requests are CPU-bound and the engine's own
/// worker pool does the solving).
pub fn run_soak(engine: &Engine, cfg: &SoakConfig) -> SoakOutcome {
    assert!(cfg.tenants >= 1 && cfg.distinct_profiles >= 1);
    let seq = SeedSeq::new(cfg.seed);
    let before = engine.metrics();
    let start = Instant::now();
    let results = Mutex::new(Vec::with_capacity(cfg.tenants));
    std::thread::scope(|scope| {
        for i in 0..cfg.tenants {
            let results = &results;
            let sim = SimConfig {
                seed: seq.derive_indexed("tenant", i % cfg.distinct_profiles),
                class: VmClass::C1Medium,
                slots: cfg.slots,
                horizon: cfg.horizon,
                demand_mean: cfg.demand_mean,
                policy: PolicyKind::Deterministic,
                deadline: cfg.deadline,
                app_id: format!("tenant-{i}"),
                reservation: None,
            };
            scope.spawn(move || {
                let mut bid = FeedbackBid::default();
                let mut rec = OnDemandFailover;
                let r = run_episode(engine, &sim, &mut bid, &mut rec);
                results.lock().push(r);
            });
        }
    });
    let wall = start.elapsed();
    let after = engine.metrics();
    let results = results.into_inner();

    let requests = after.completed - before.completed;
    let mut interruptions = 0;
    let mut violated_slots = 0;
    let mut unrecovered_gb = 0.0;
    for r in &results {
        interruptions += r.interruptions;
        violated_slots += r.slo.violated_slots;
        unrecovered_gb += r.slo.unrecovered_gb;
    }
    SoakOutcome {
        tenants: cfg.tenants,
        requests,
        wall_ms: wall.as_secs_f64() * 1e3,
        rps: requests as f64 / wall.as_secs_f64().max(1e-9),
        cache_hit_rate: after.cache_hit_rate,
        deadline_misses: after.deadline_misses - before.deadline_misses,
        interruptions,
        violated_slots,
        unrecovered_gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_drives_concurrent_tenants_through_the_engine() {
        let engine = Engine::new(4);
        let cfg = SoakConfig { tenants: 16, slots: 6, horizon: 3, ..Default::default() };
        let out = run_soak(&engine, &cfg);
        assert_eq!(out.tenants, 16);
        // every tenant re-plans at least twice over 6 slots with window 3
        assert!(out.requests >= 32, "requests {}", out.requests);
        assert!(out.rps > 0.0);
        assert!(out.unrecovered_gb < 1e-6, "failover recovery keeps demand whole");
    }

    #[test]
    fn shared_profiles_heat_the_plan_cache() {
        let engine = Engine::new(4);
        let cfg = SoakConfig {
            tenants: 12,
            slots: 4,
            horizon: 2,
            distinct_profiles: 3,
            ..Default::default()
        };
        let out = run_soak(&engine, &cfg);
        assert!(
            out.cache_hit_rate > 0.0,
            "12 tenants over 3 profiles must share fingerprints: {out:?}"
        );
    }
}
