//! The (bid policy × recovery policy) evaluation matrix: run the same
//! fixed-seed trace through every combination and report realised vs
//! planned cost plus SLO violations per cell, the way the replan ablation
//! reports its grid.

use crate::bidding::{BidPolicy, FeedbackBid, OnDemandClamp, StaticBid};
use crate::episode::{run_episode, SimConfig};
use crate::recovery::{CheckpointResume, MigrateMarket, OnDemandFailover, RecoveryPolicy};
use rrp_engine::Engine;

/// One (bid × recovery) cell of the matrix. All money values are rounded
/// to 4 decimals so the serialised report is golden-pinnable.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MatrixCell {
    pub bid: String,
    pub recovery: String,
    pub planned: f64,
    pub realised: f64,
    /// `realised / planned` — the interruption premium.
    pub ratio: f64,
    pub recovery_overhead: f64,
    pub interruptions: usize,
    pub replans: usize,
    pub violated_slots: usize,
    pub unmet_demand_gb: f64,
    pub unrecovered_gb: f64,
    pub deadline_misses: usize,
}

/// The full matrix over one fixed-seed trace.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SimReport {
    /// The master seed every stream of the run derived from — reproduces
    /// the whole report.
    pub master_seed: u64,
    pub class: String,
    pub slots: usize,
    pub horizon: usize,
    pub cells: Vec<MatrixCell>,
}

fn round4(v: f64) -> f64 {
    (v * 1e4).round() / 1e4
}

type BidFactory = (&'static str, fn() -> Box<dyn BidPolicy>);
type RecoveryFactory = (&'static str, fn() -> Box<dyn RecoveryPolicy>);

/// The default bid-policy line-up: static-at-mean, on-demand clamp,
/// feedback control.
pub fn default_bid_policies() -> Vec<BidFactory> {
    vec![
        ("static", || Box::new(StaticBid::at_mean())),
        ("clamp", || Box::new(OnDemandClamp)),
        ("feedback", || Box::new(FeedbackBid::default())),
    ]
}

/// The default recovery line-up: on-demand failover, checkpoint+resume,
/// migrate-to-surviving-market.
pub fn default_recovery_policies() -> Vec<RecoveryFactory> {
    vec![
        ("failover", || Box::new(OnDemandFailover)),
        ("checkpoint", || Box::new(CheckpointResume::default())),
        ("migrate", || Box::new(MigrateMarket::default())),
    ]
}

/// Run every (bid × recovery) combination over the same trace (same
/// master seed, so every cell sees identical prices and demand).
pub fn run_matrix(engine: &Engine, cfg: &SimConfig) -> SimReport {
    let mut cells = Vec::new();
    for (bid_name, bid_factory) in default_bid_policies() {
        for (rec_name, rec_factory) in default_recovery_policies() {
            let mut cell_cfg = cfg.clone();
            cell_cfg.app_id = format!("{}-{bid_name}-{rec_name}", cfg.app_id);
            let mut bid = bid_factory();
            let mut rec = rec_factory();
            let r = run_episode(engine, &cell_cfg, bid.as_mut(), rec.as_mut());
            cells.push(MatrixCell {
                bid: bid_name.to_string(),
                recovery: rec_name.to_string(),
                planned: round4(r.report.planned),
                realised: round4(r.report.realised),
                ratio: round4(r.report.ratio()),
                recovery_overhead: round4(r.report.recovery_overhead),
                interruptions: r.interruptions,
                replans: r.slo.replans,
                violated_slots: r.slo.violated_slots,
                unmet_demand_gb: round4(r.slo.unmet_demand_gb),
                unrecovered_gb: round4(r.slo.unrecovered_gb),
                deadline_misses: r.slo.deadline_misses,
            });
        }
    }
    SimReport {
        master_seed: cfg.seed,
        class: cfg.class.name().to_string(),
        slots: cfg.slots,
        horizon: cfg.horizon,
        cells,
    }
}

impl SimReport {
    /// The cell for a (bid, recovery) pair, when present.
    pub fn cell(&self, bid: &str, recovery: &str) -> Option<&MatrixCell> {
        self.cells.iter().find(|c| c.bid == bid && c.recovery == recovery)
    }

    /// Serialise the report (for `xtask simreport` and the golden pin).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// ANSI summary table: one row per cell, the ratio colour-coded
    /// (green ≤ 1.05, yellow ≤ 1.5, red beyond).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "closed-loop sim · class {} · {} slots · window {} · master seed {}",
            self.class, self.slots, self.horizon, self.master_seed
        );
        let _ = writeln!(
            out,
            "\x1b[1m{:<10} {:<12} {:>9} {:>9} {:>7} {:>7} {:>5} {:>5} {:>7} {:>5}\x1b[0m",
            "bid",
            "recovery",
            "planned",
            "realised",
            "ratio",
            "ovh$",
            "intr",
            "viol",
            "unrec",
            "miss"
        );
        for c in &self.cells {
            let colour = if c.ratio <= 1.05 {
                "\x1b[32m"
            } else if c.ratio <= 1.5 {
                "\x1b[33m"
            } else {
                "\x1b[31m"
            };
            let _ = writeln!(
                out,
                "{:<10} {:<12} {:>9.4} {:>9.4} {colour}{:>7.3}\x1b[0m {:>7.4} {:>5} {:>5} {:>7.4} {:>5}",
                c.bid,
                c.recovery,
                c.planned,
                c.realised,
                c.ratio,
                c.recovery_overhead,
                c.interruptions,
                c.violated_slots,
                c.unrecovered_gb,
                c.deadline_misses
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn matrix_covers_three_by_three() {
        let engine = Engine::new(2);
        let cfg = SimConfig { slots: 8, horizon: 4, ..Default::default() };
        let report = run_matrix(&engine, &cfg);
        assert_eq!(report.cells.len(), 9);
        for (b, _) in default_bid_policies() {
            for (r, _) in default_recovery_policies() {
                assert!(report.cell(b, r).is_some(), "missing cell {b}×{r}");
            }
        }
        assert_eq!(report.master_seed, cfg.seed);
    }

    #[test]
    fn report_json_round_trips_through_the_value_model() {
        let engine = Engine::new(2);
        let cfg = SimConfig {
            slots: 6,
            horizon: 3,
            deadline: Duration::from_secs(10),
            ..Default::default()
        };
        let report = run_matrix(&engine, &cfg);
        let v = serde_json::from_str(&report.to_json()).expect("report JSON must parse");
        assert_eq!(v.get("master_seed").and_then(|m| m.as_u64()), Some(cfg.seed));
        let cells = v.get("cells").and_then(|c| c.as_array()).expect("cells array");
        assert_eq!(cells.len(), 9);
        assert!(cells[0].get("ratio").and_then(|r| r.as_f64()).is_some());
    }

    #[test]
    fn render_is_ansi_and_lists_every_cell() {
        let engine = Engine::new(2);
        let cfg = SimConfig { slots: 6, horizon: 3, ..Default::default() };
        let report = run_matrix(&engine, &cfg);
        let text = report.render();
        assert!(text.contains("\x1b["));
        for c in &report.cells {
            assert!(text.contains(&c.bid) && text.contains(&c.recovery));
        }
    }
}
