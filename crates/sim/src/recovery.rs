//! Pluggable recovery policies: what a tenant does in the slot where the
//! spot market killed its instance (Voorsluys et al. quantify exactly
//! these three options: fail over to on-demand, checkpoint and resume
//! later, or migrate the work to a surviving market).

/// Everything a recovery policy sees about the interruption it must
/// handle.
#[derive(Debug, Clone, Copy)]
pub struct InterruptionCtx {
    /// Slot the interruption happened in.
    pub slot: usize,
    /// Realised spot price that outbid the tenant.
    pub spot: f64,
    /// The losing bid.
    pub bid: f64,
    /// On-demand fallback price λ.
    pub on_demand: f64,
    /// Realised spot price on the alternate (surviving) market this slot.
    pub alt_spot: f64,
    /// Production (GB) the committed plan wanted this slot.
    pub planned_alpha: f64,
    /// Inventory (GB) held entering the slot.
    pub inventory: f64,
}

/// The concrete action a recovery policy chose, with its priced-out
/// overheads. The episode runner applies the action; the policy only
/// decides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryAction {
    /// Produce the planned amount on on-demand capacity at λ.
    OnDemandFailover,
    /// Skip the slot's production: checkpoint `overhead_gb` of state to
    /// storage and resume later, letting the backlog carry the demand.
    CheckpointResume { overhead_gb: f64 },
    /// Produce the planned amount on the alternate market at its spot
    /// price, paying `overhead_cost` to move state across.
    MigrateMarket { overhead_cost: f64 },
}

impl RecoveryAction {
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryAction::OnDemandFailover => "on_demand_failover",
            RecoveryAction::CheckpointResume { .. } => "checkpoint_resume",
            RecoveryAction::MigrateMarket { .. } => "migrate_market",
        }
    }
}

/// An interruption-handling strategy. Stateful like [`crate::BidPolicy`];
/// called once per interruption.
pub trait RecoveryPolicy: Send {
    fn name(&self) -> &'static str;
    fn recover(&mut self, ctx: &InterruptionCtx) -> RecoveryAction;
}

/// Always fall back to on-demand capacity — the paper's own out-of-bid
/// assumption (§IV), made explicit as a policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnDemandFailover;

impl RecoveryPolicy for OnDemandFailover {
    fn name(&self) -> &'static str {
        "failover"
    }

    fn recover(&mut self, _ctx: &InterruptionCtx) -> RecoveryAction {
        RecoveryAction::OnDemandFailover
    }
}

/// Checkpoint and wait the spike out: write `overhead_frac` of the
/// interrupted slot's planned production as checkpoint state, produce
/// nothing, and let the re-plan clear the backlog.
///
/// Deferral is bounded: after `max_defer` *consecutive* checkpointed
/// slots the policy escalates to on-demand failover, so a persistently
/// out-of-bid tenant cannot starve its demand forever (the liveness half
/// of Voorsluys et al.'s checkpoint/resume trade-off).
#[derive(Debug, Clone, Copy)]
pub struct CheckpointResume {
    /// Checkpoint size as a fraction of the slot's planned production.
    pub overhead_frac: f64,
    /// Consecutive interrupted slots to sit out before escalating.
    pub max_defer: usize,
    streak: usize,
    last_slot: Option<usize>,
}

impl CheckpointResume {
    pub fn new(overhead_frac: f64, max_defer: usize) -> Self {
        assert!(overhead_frac >= 0.0 && max_defer >= 1);
        Self { overhead_frac, max_defer, streak: 0, last_slot: None }
    }
}

impl Default for CheckpointResume {
    fn default() -> Self {
        Self::new(0.25, 2)
    }
}

impl RecoveryPolicy for CheckpointResume {
    fn name(&self) -> &'static str {
        "checkpoint"
    }

    fn recover(&mut self, ctx: &InterruptionCtx) -> RecoveryAction {
        let consecutive = matches!(self.last_slot, Some(s) if s + 1 == ctx.slot);
        self.streak = if consecutive { self.streak + 1 } else { 1 };
        self.last_slot = Some(ctx.slot);
        if self.streak > self.max_defer {
            self.streak = 0;
            return RecoveryAction::OnDemandFailover;
        }
        RecoveryAction::CheckpointResume { overhead_gb: self.overhead_frac * ctx.planned_alpha }
    }
}

/// Migrate to the surviving alternate market: keep producing at its spot
/// price, paying a per-GB transfer for the state (inventory + in-flight
/// production) that must move.
#[derive(Debug, Clone, Copy)]
pub struct MigrateMarket {
    pub migration_cost_per_gb: f64,
}

impl Default for MigrateMarket {
    fn default() -> Self {
        Self { migration_cost_per_gb: 0.05 }
    }
}

impl RecoveryPolicy for MigrateMarket {
    fn name(&self) -> &'static str {
        "migrate"
    }

    fn recover(&mut self, ctx: &InterruptionCtx) -> RecoveryAction {
        RecoveryAction::MigrateMarket {
            overhead_cost: self.migration_cost_per_gb * (ctx.inventory + ctx.planned_alpha),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> InterruptionCtx {
        InterruptionCtx {
            slot: 3,
            spot: 0.09,
            bid: 0.06,
            on_demand: 0.2,
            alt_spot: 0.055,
            planned_alpha: 0.8,
            inventory: 1.2,
        }
    }

    #[test]
    fn failover_is_unconditional() {
        assert_eq!(OnDemandFailover.recover(&ctx()), RecoveryAction::OnDemandFailover);
    }

    #[test]
    fn checkpoint_sizes_overhead_from_planned_production() {
        let a = CheckpointResume::default().recover(&ctx());
        match a {
            RecoveryAction::CheckpointResume { overhead_gb } => {
                assert!((overhead_gb - 0.2).abs() < 1e-12)
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn checkpoint_escalates_after_consecutive_deferrals() {
        let mut p = CheckpointResume::default();
        let at = |slot| InterruptionCtx { slot, ..ctx() };
        assert!(matches!(p.recover(&at(4)), RecoveryAction::CheckpointResume { .. }));
        assert!(matches!(p.recover(&at(5)), RecoveryAction::CheckpointResume { .. }));
        assert_eq!(p.recover(&at(6)), RecoveryAction::OnDemandFailover, "third in a row escalates");
        // the streak resets after escalation and after any quiet slot
        assert!(matches!(p.recover(&at(7)), RecoveryAction::CheckpointResume { .. }));
        assert!(matches!(p.recover(&at(9)), RecoveryAction::CheckpointResume { .. }));
        assert!(matches!(p.recover(&at(10)), RecoveryAction::CheckpointResume { .. }));
    }

    #[test]
    fn migrate_prices_state_transfer() {
        let a = MigrateMarket::default().recover(&ctx());
        match a {
            RecoveryAction::MigrateMarket { overhead_cost } => {
                assert!((overhead_cost - 0.05 * 2.0).abs() < 1e-12)
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn action_names_are_stable() {
        assert_eq!(RecoveryAction::OnDemandFailover.name(), "on_demand_failover");
        assert_eq!(
            RecoveryAction::CheckpointResume { overhead_gb: 0.0 }.name(),
            "checkpoint_resume"
        );
        assert_eq!(RecoveryAction::MigrateMarket { overhead_cost: 0.0 }.name(), "migrate_market");
    }
}
