//! # rrp-sim — closed-loop spot-market simulation
//!
//! Everything else in the workspace plans *open-loop*: the engine emits a
//! rental plan against a price forecast and never learns what the market
//! actually did. This crate closes the loop. It plays a synthetic spot
//! trace forward against a running [`rrp_engine::Engine`] through its
//! public API:
//!
//! * [`bidding`] — pluggable bid policies: the paper's fixed bid
//!   ([`StaticBid`]), the never-interrupted on-demand clamp
//!   ([`OnDemandClamp`]), and a feedback controller steering the bid from
//!   the observed interruption rate ([`FeedbackBid`], à la Li et al.).
//! * [`recovery`] — pluggable interruption handling: fail over to
//!   on-demand (the paper's §IV assumption), checkpoint + resume with a
//!   configurable overhead, or migrate to a surviving market
//!   (Voorsluys et al.'s trio).
//! * [`episode`] — the per-slot event loop: reveal price → kill
//!   out-of-bid capacity → recover → ship demand → update bid →
//!   rolling-horizon re-plan. Two ledgers (planned counterfactual vs
//!   realised) make `realised / planned` the interruption premium.
//! * [`report`] — the (bid × recovery) matrix over one fixed-seed trace
//!   with an ANSI summary table and a golden-pinnable JSON form.
//! * [`soak`] — multi-tenant load generation: N concurrent tenants
//!   through the engine's caches, ladder and obs stack.
//!
//! Determinism: every random stream of a run derives from one master
//! `u64` via [`rrp_spotmarket::SeedSeq`]; the report prints it.

pub mod bidding;
pub mod episode;
pub mod recovery;
pub mod report;
pub mod soak;

pub use bidding::{BidPolicy, FeedbackBid, MarketObs, OnDemandClamp, StaticBid};
pub use episode::{
    episode_inputs, run_episode, EpisodeInputs, EpisodeResult, SimConfig, SimReservation,
    SlotOutcome,
};
pub use recovery::{
    CheckpointResume, InterruptionCtx, MigrateMarket, OnDemandFailover, RecoveryAction,
    RecoveryPolicy,
};
pub use report::{run_matrix, MatrixCell, SimReport};
pub use soak::{run_soak, SoakConfig, SoakOutcome};
