//! One closed-loop episode: a synthetic spot trace played forward against
//! the running engine.
//!
//! Per slot the simulator (1) reveals the realised spot price, (2) kills
//! spot capacity whose standing bid is out-of-bid (an interruption), (3)
//! lets the [`RecoveryPolicy`] handle the slot, (4) ships demand through
//! the inventory/backlog model, (5) gives the [`BidPolicy`] exactly one
//! look at the outcome, and (6) asks the engine for a rolling-horizon
//! re-plan when the committed window is exhausted — or immediately for the
//! window's tail after an interruption.
//!
//! Two ledgers run side by side. *Planned* is the counterfactual: the
//! committed plans executed at the realised spot prices with every bid
//! winning. *Realised* is what actually happened once interruptions,
//! recovery overheads and reservation charges landed. On an
//! interruption-free trace the two coincide, so `realised / planned` is
//! precisely the interruption premium of a bid policy.

use std::time::Duration;

use rrp_core::demand::DemandModel;
use rrp_core::{
    on_demand_plan, CostBreakdown, CostSchedule, PlanningParams, RealisedReport, RentalPlan,
    ReservationLedger, ReservedTerm, SloReport,
};
use rrp_engine::{Engine, PlanRequest, PolicyKind};
use rrp_spotmarket::archive::{SpotArchive, ARCHIVE_DAYS, ESTIMATION_END_DAY};
use rrp_spotmarket::{rental_outcome, CostRates, SeedSeq, VmClass};
use rrp_trace::{EventKind, SpanId};

use crate::bidding::{BidPolicy, MarketObs};
use crate::recovery::{InterruptionCtx, RecoveryAction, RecoveryPolicy};

/// Backlog below this is float residue, not an SLO violation.
const SLO_TOL: f64 = 1e-6;

/// A reserved-capacity commitment running alongside the spot rentals:
/// `capacity_gb` of production per covered slot, billed through the
/// commit-once [`ReservationLedger`].
#[derive(Debug, Clone, Copy)]
pub struct SimReservation {
    pub term: ReservedTerm,
    pub capacity_gb: f64,
}

/// Configuration of one episode. Every random stream derives from `seed`
/// (see [`SeedSeq`]), so a printed master seed reproduces the run exactly.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; the report prints it.
    pub seed: u64,
    pub class: VmClass,
    /// Episode length in slots (hours).
    pub slots: usize,
    /// Rolling re-plan window length.
    pub horizon: usize,
    /// Mean of the truncated-normal hourly demand (GB).
    pub demand_mean: f64,
    /// Planner the engine is asked for.
    pub policy: PolicyKind,
    /// Per-request wall-clock deadline.
    pub deadline: Duration,
    /// Tenant identity, reported in trace events and metrics.
    pub app_id: String,
    /// Optional reserved-capacity commitment.
    pub reservation: Option<SimReservation>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 20120521,
            class: VmClass::C1Medium,
            slots: 24,
            horizon: 6,
            demand_mean: 0.4,
            policy: PolicyKind::Deterministic,
            deadline: Duration::from_secs(30),
            app_id: "sim".to_string(),
            reservation: None,
        }
    }
}

/// The derived inputs of an episode: every stream seeded from the master.
#[derive(Debug, Clone)]
pub struct EpisodeInputs {
    pub seq: SeedSeq,
    /// Realised home-market spot prices, one per slot (the archive's
    /// post-estimation continuation).
    pub spot: Vec<f64>,
    /// Realised alternate-market spot prices (the migration target).
    pub alt_spot: Vec<f64>,
    /// Realised hourly demand (GB).
    pub demand: Vec<f64>,
    /// Mean spot price over the estimation window.
    pub hist_mean: f64,
    /// Last estimation-window price (the "current" price at slot 0).
    pub last_hist: f64,
}

/// Derive all of an episode's random streams from the config's master
/// seed: home market, alternate market and demand each get an independent
/// labelled sub-seed.
pub fn episode_inputs(cfg: &SimConfig) -> EpisodeInputs {
    assert!(cfg.slots >= 1 && cfg.horizon >= 1, "episode needs at least one slot and window");
    let max_slots = (ARCHIVE_DAYS - ESTIMATION_END_DAY) * 24;
    assert!(cfg.slots <= max_slots, "episode of {} slots exceeds the archive tail", cfg.slots);
    let seq = SeedSeq::new(cfg.seed);
    let home = SpotArchive::generate(cfg.class, seq.derive("spot"));
    let alt = SpotArchive::generate(cfg.class, seq.derive("alt-market"));
    let hist = home.estimation_window();
    let hist_values = hist.values();
    let hist_mean = hist_values.iter().sum::<f64>() / hist_values.len() as f64;
    let last_hist = hist_values[hist_values.len() - 1];
    let spot = home.hourly_window(ESTIMATION_END_DAY, ARCHIVE_DAYS).values()[..cfg.slots].to_vec();
    let alt_spot =
        alt.hourly_window(ESTIMATION_END_DAY, ARCHIVE_DAYS).values()[..cfg.slots].to_vec();
    let demand = DemandModel::with_mean(cfg.demand_mean).sample(cfg.slots, seq.derive("demand"));
    EpisodeInputs { seq, spot, alt_spot, demand, hist_mean, last_hist }
}

/// What one slot of the episode did — the sim's analogue of
/// `rolling::SlotRecord`, for diagnostics and tests.
#[derive(Debug, Clone, Copy)]
pub struct SlotOutcome {
    pub slot: usize,
    pub spot: f64,
    /// Bid standing during this slot.
    pub bid: f64,
    /// Whether the committed plan rented this slot.
    pub rented: bool,
    pub interrupted: bool,
    /// Recovery action applied, when interrupted.
    pub action: Option<&'static str>,
    pub produced: f64,
    pub shipped: f64,
    /// Backlog carried out of the slot.
    pub backlog: f64,
    /// Inventory held at end of slot.
    pub inventory: f64,
}

/// Everything one episode produced.
#[derive(Debug, Clone)]
pub struct EpisodeResult {
    pub report: RealisedReport,
    pub slo: SloReport,
    /// Out-of-bid events over the episode.
    pub interruptions: usize,
    /// Recovery actions applied, counted by action name.
    pub recoveries: Vec<(&'static str, usize)>,
    pub slots: Vec<SlotOutcome>,
}

fn submit_plan(
    engine: &Engine,
    req: PlanRequest,
    slo: &mut SloReport,
) -> (PlanRequest, RentalPlan) {
    slo.replans += 1;
    let resp = engine.submit(req.clone()).wait();
    if !resp.deadline_met {
        slo.deadline_misses += 1;
    }
    let plan = match resp.plan {
        Some(p) => p,
        // the sim's instances are uncapacitated and therefore always
        // feasible; an audit rejection still degrades gracefully
        None => on_demand_plan(&req.schedule, &req.params),
    };
    (req, plan)
}

/// Play one episode of `cfg` against `engine` under the given bid and
/// recovery policies.
pub fn run_episode(
    engine: &Engine,
    cfg: &SimConfig,
    bid_policy: &mut dyn BidPolicy,
    recovery: &mut dyn RecoveryPolicy,
) -> EpisodeResult {
    let inputs = episode_inputs(cfg);
    let rates = CostRates::ec2_2011();
    let gen_rate = rates.transfer_in_per_output_gb();
    let inv_rate = rates.inventory_gb_slot();
    let out_rate = rates.transfer_out_gb;
    let lambda = cfg.class.on_demand_price();

    let mut res_ledger = ReservationLedger::new();
    if let Some(r) = &cfg.reservation {
        res_ledger.commit(r.term);
    }
    let reserved_at = |t: usize| -> f64 {
        match &cfg.reservation {
            Some(r) if r.term.covers(t) => r.capacity_gb,
            _ => 0.0,
        }
    };
    // the planner covers only what the reservation does not
    let net_demand: Vec<f64> =
        (0..cfg.slots).map(|t| (inputs.demand[t] - reserved_at(t)).max(0.0)).collect();

    let window_request = |from: usize, inventory: f64, backlog: f64, bid: f64| -> PlanRequest {
        let to = (from + cfg.horizon).min(cfg.slots);
        let mut demand_w = net_demand[from..to].to_vec();
        demand_w[0] += backlog;
        PlanRequest {
            app_id: cfg.app_id.clone(),
            vm_class: cfg.class.name().to_string(),
            schedule: CostSchedule::ec2(vec![bid; to - from], demand_w, &rates),
            params: PlanningParams { initial_inventory: inventory, capacity: None },
            tree: None,
            policy: cfg.policy,
            deadline: cfg.deadline,
            seed: inputs.seq.master(),
        }
    };

    let mut slo = SloReport::default();
    let mut planned = CostBreakdown::default();
    let mut realised = CostBreakdown::default();
    let mut recovery_overhead = 0.0;
    let mut reservation_cost = 0.0;
    let mut interruptions = 0usize;
    let mut recoveries: Vec<(&'static str, usize)> = Vec::new();
    let mut records = Vec::with_capacity(cfg.slots);

    let mut bid = bid_policy.next_bid(&MarketObs {
        slot: 0,
        last_price: inputs.last_hist,
        hist_mean: inputs.hist_mean,
        on_demand: lambda,
        interrupted: false,
    });
    let mut inv = 0.0f64;
    let mut backlog = 0.0f64;
    let (mut cur_req, mut plan) = submit_plan(engine, window_request(0, 0.0, 0.0, bid), &mut slo);
    let mut plan_base = 0usize;

    for t in 0..cfg.slots {
        let k = t - plan_base;
        let window_end = plan_base + plan.alpha.len();
        let reserved = reserved_at(t);
        let planned_alpha = plan.alpha[k];
        let rented = plan.chi[k];
        let spot = inputs.spot[t];

        // planned counterfactual: the committed plan at realised prices,
        // every bid winning
        if rented {
            planned.compute += spot;
        }
        planned.transfer_in += gen_rate * (planned_alpha + reserved);
        planned.inventory += inv_rate * plan.beta[k];
        planned.transfer_out += out_rate * inputs.demand[t];

        // realised execution: resolve the auction, recover if killed
        let mut produced = 0.0;
        let mut interrupted = false;
        let mut action_name = None;
        if rented {
            let outcome = rental_outcome(bid, spot, lambda);
            if !outcome.out_of_bid {
                realised.compute += spot;
                produced = planned_alpha;
            } else {
                interrupted = true;
                interruptions += 1;
                engine.trace().emit(
                    SpanId::ROOT,
                    EventKind::SpotInterrupted {
                        tenant: cfg.app_id.clone(),
                        slot: t as u64,
                        spot,
                        bid,
                    },
                );
                let ctx = InterruptionCtx {
                    slot: t,
                    spot,
                    bid,
                    on_demand: lambda,
                    alt_spot: inputs.alt_spot[t],
                    planned_alpha,
                    inventory: inv,
                };
                let action = recovery.recover(&ctx);
                let cost = match action {
                    RecoveryAction::OnDemandFailover => {
                        realised.compute += lambda;
                        produced = planned_alpha;
                        lambda
                    }
                    RecoveryAction::CheckpointResume { overhead_gb } => {
                        // nothing produced: the checkpoint write is the
                        // slot's only cost; backlog carries the demand
                        let c = gen_rate * overhead_gb.max(0.0);
                        recovery_overhead += c;
                        c
                    }
                    RecoveryAction::MigrateMarket { overhead_cost } => {
                        realised.compute += ctx.alt_spot;
                        produced = planned_alpha;
                        let c = overhead_cost.max(0.0);
                        recovery_overhead += c;
                        ctx.alt_spot + c
                    }
                };
                action_name = Some(action.name());
                match recoveries.iter_mut().find(|(name, _)| *name == action.name()) {
                    Some((_, n)) => *n += 1,
                    None => recoveries.push((action.name(), 1)),
                }
                engine.trace().emit(
                    SpanId::ROOT,
                    EventKind::RecoveryApplied {
                        tenant: cfg.app_id.clone(),
                        slot: t as u64,
                        action: action.name(),
                        cost,
                    },
                );
            }
        }
        realised.transfer_in += gen_rate * (produced + reserved);

        // ship demand through the inventory/backlog model
        let backlog_pre = backlog;
        let owed = backlog + inputs.demand[t];
        let available = inv + produced + reserved;
        let shipped = available.min(owed);
        backlog = owed - shipped;
        inv = available - shipped;
        if backlog > SLO_TOL {
            slo.violated_slots += 1;
        }
        slo.unmet_demand_gb += (backlog - backlog_pre).max(0.0);
        realised.inventory += inv_rate * inv;
        realised.transfer_out += out_rate * shipped;
        reservation_cost += res_ledger.accrue_window(t, t + 1);

        records.push(SlotOutcome {
            slot: t,
            spot,
            bid,
            rented,
            interrupted,
            action: action_name,
            produced: produced + reserved,
            shipped,
            backlog,
            inventory: inv,
        });

        // exactly one bid update per slot boundary
        bid = bid_policy.next_bid(&MarketObs {
            slot: t + 1,
            last_price: spot,
            hist_mean: inputs.hist_mean,
            on_demand: lambda,
            interrupted,
        });

        if t + 1 < cfg.slots {
            if interrupted && t + 1 < window_end {
                // interruption mid-window: re-plan the window's tail at
                // the fresh bid, folding the backlog into its first slot
                let tail =
                    cur_req.replan_tail(k + 1, inv, vec![bid; window_end - (t + 1)], backlog);
                (cur_req, plan) = submit_plan(engine, tail, &mut slo);
                plan_base = t + 1;
            } else if t + 1 >= window_end {
                // rolling horizon: the committed window is exhausted
                let req = window_request(t + 1, inv, backlog, bid);
                (cur_req, plan) = submit_plan(engine, req, &mut slo);
                plan_base = t + 1;
            }
        }
    }

    slo.unrecovered_gb = backlog;
    // A breached episode is an incident worth a post-mortem: slots ended
    // with unserved backlog, or demand was still outstanding at the end.
    // No-op unless the engine runs with a flight recorder; the recorder's
    // debounce folds a breach-heavy soak into one bundle.
    if slo.violated_slots > 0 || slo.unrecovered_gb > SLO_TOL {
        engine.flight_trigger("sim_slo_breach");
    }
    let report = RealisedReport {
        planned: planned.total() + reservation_cost,
        realised: realised.total() + recovery_overhead + reservation_cost,
        recovery_overhead,
        reservation: reservation_cost,
    };
    // feed the episode's realised/planned ratio into the tenant's
    // cost-ratio error budget (no-op unless the engine runs with an SLO
    // engine) — this is how soak runs exercise the cost objective
    engine.slo_record_cost(&cfg.app_id, report.planned, report.realised);
    EpisodeResult { report, slo, interruptions, recoveries, slots: records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidding::{OnDemandClamp, StaticBid};
    use crate::recovery::{CheckpointResume, OnDemandFailover};

    fn cfg() -> SimConfig {
        SimConfig { slots: 12, horizon: 4, ..Default::default() }
    }

    #[test]
    fn clamp_bid_runs_interruption_free_and_matches_planned() {
        let engine = Engine::new(2);
        let r = run_episode(&engine, &cfg(), &mut OnDemandClamp, &mut OnDemandFailover);
        assert_eq!(r.interruptions, 0, "archive spikes never exceed on-demand");
        assert!(r.recoveries.is_empty());
        assert!(
            (r.report.realised - r.report.planned).abs() < 1e-9,
            "interruption-free ⇒ realised == planned, got {:?}",
            r.report
        );
        assert_eq!(r.slo.violated_slots, 0);
        assert!(r.slo.unrecovered_gb < SLO_TOL);
        assert!(r.slo.replans >= 3, "rolling horizon must re-plan");
    }

    #[test]
    fn low_static_bid_gets_interrupted_and_pays_premium() {
        let engine = Engine::new(2);
        let mut bid = StaticBid { margin: 0.9 };
        let r = run_episode(&engine, &cfg(), &mut bid, &mut OnDemandFailover);
        assert!(r.interruptions > 0, "a below-mean bid must lose some slots");
        assert!(r.report.realised > r.report.planned, "failover pays λ over spot");
        assert!(r.slo.unrecovered_gb < SLO_TOL, "failover keeps demand whole");
    }

    #[test]
    fn checkpoint_backlog_is_recovered_even_when_always_out_of_bid() {
        // margin 0.9 sits below the realised tail for this seed, so *every*
        // rented slot is interrupted — the worst case for a deferring
        // recovery. Bounded deferral (max_defer = 2) guarantees the backlog
        // never ages past two slots, so the only demand an episode can
        // strand is whatever arrived in its final two slots.
        let engine = Engine::new(2);
        let mut bid = StaticBid { margin: 0.9 };
        let mut rec = CheckpointResume::default();
        let c = cfg();
        let r = run_episode(&engine, &c, &mut bid, &mut rec);
        assert!(r.interruptions > 0);
        let tail: f64 = episode_inputs(&c).demand[c.slots - 2..].iter().sum();
        assert!(
            r.slo.unrecovered_gb <= tail + SLO_TOL,
            "staleness bound breached: unrecovered {:?} > tail demand {tail}",
            r.slo
        );
        let total: f64 = episode_inputs(&c).demand.iter().sum();
        assert!(r.slo.unrecovered_gb < total / 2.0, "most demand must still be served");
        assert!(r.report.recovery_overhead > 0.0);
        let escalated = r.recoveries.iter().any(|(n, _)| *n == "on_demand_failover");
        let deferred = r.recoveries.iter().any(|(n, _)| *n == "checkpoint_resume");
        assert!(escalated && deferred, "both modes must appear: {:?}", r.recoveries);
    }

    #[test]
    fn episodes_are_reproducible_from_the_master_seed() {
        let engine = Engine::new(2);
        let a = run_episode(&engine, &cfg(), &mut OnDemandClamp, &mut OnDemandFailover);
        let b = run_episode(&engine, &cfg(), &mut OnDemandClamp, &mut OnDemandFailover);
        assert_eq!(a.report.realised, b.report.realised);
        assert_eq!(a.slo.violated_slots, b.slo.violated_slots);
    }

    #[test]
    fn slo_breach_fires_the_flight_recorder() {
        use rrp_engine::{EngineConfig, ProfConfig};

        // deferring recovery under an always-losing bid leaves backlog in
        // violated slots — a breached episode on a profiling engine must
        // land a `sim_slo_breach` trigger in the flight recorder
        let engine = Engine::with_config(
            2,
            EngineConfig {
                prof: Some(ProfConfig {
                    deadline_miss_spike: 0,
                    budget_exhaustion_spike: 0,
                    ..Default::default()
                }),
                ..Default::default()
            },
        );
        let mut bid = StaticBid { margin: 0.9 };
        let mut rec = CheckpointResume::default();
        let r = run_episode(&engine, &cfg(), &mut bid, &mut rec);
        assert!(r.slo.violated_slots > 0, "this config must actually breach: {:?}", r.slo);
        assert_eq!(engine.flight_dumps(), 1, "one breach, one incident");
        let status = engine.flight_status_json().expect("profiling engine has flight status");
        assert!(status.contains("\"last_trigger\":\"sim_slo_breach\""), "{status}");
        // the same episode on a plain engine is silently untracked
        let plain = Engine::new(2);
        let r2 = run_episode(&plain, &cfg(), &mut StaticBid { margin: 0.9 }, &mut rec);
        assert!(r2.slo.violated_slots > 0);
        assert_eq!(plain.flight_dumps(), 0);
    }

    #[test]
    fn reservation_charges_flow_into_both_sides() {
        let engine = Engine::new(2);
        let mut c = cfg();
        c.reservation = Some(SimReservation {
            term: ReservedTerm { start: 2, len: 8, upfront: 1.0, hourly: 0.02 },
            capacity_gb: 0.1,
        });
        let r = run_episode(&engine, &c, &mut OnDemandClamp, &mut OnDemandFailover);
        let expected = 1.0 + 0.02 * 8.0;
        assert!((r.report.reservation - expected).abs() < 1e-9, "{:?}", r.report);
        // reservation charges land on both ledgers; realised can only sit
        // above planned (surplus reserved output becomes extra inventory)
        assert!(r.report.realised >= r.report.planned - 1e-9, "{:?}", r.report);
        assert!(r.report.planned > expected, "reservation is part of the planned total");
    }
}
