//! Pluggable bid policies: how a tenant sets its spot bid for the next
//! slot, given what the market just did to it.
//!
//! The paper fixes the bid for a whole horizon; the literature closes the
//! loop — Li et al.'s feedback-control bidding adjusts the bid from the
//! observed interruption rate. The simulator calls [`BidPolicy::next_bid`]
//! exactly once per slot boundary, so stateful policies see every outcome
//! exactly once.

/// What a bid policy observes at a slot boundary.
#[derive(Debug, Clone, Copy)]
pub struct MarketObs {
    /// Slot the returned bid will apply from.
    pub slot: usize,
    /// Realised spot price of the slot that just ended (the archive's
    /// last estimation-window price before slot 0).
    pub last_price: f64,
    /// Mean spot price over the estimation window.
    pub hist_mean: f64,
    /// On-demand fallback price λ.
    pub on_demand: f64,
    /// Whether the tenant was interrupted (out-of-bid) in the slot that
    /// just ended.
    pub interrupted: bool,
}

/// A bidding strategy. Stateful: the simulator keeps one instance per
/// episode and feeds it every slot boundary.
pub trait BidPolicy: Send {
    fn name(&self) -> &'static str;
    /// The bid to stand for the next slot.
    fn next_bid(&mut self, obs: &MarketObs) -> f64;
}

/// The paper's stance: a fixed bid at `margin ×` the historical mean,
/// clamped to the on-demand price (bidding above λ never helps).
#[derive(Debug, Clone, Copy)]
pub struct StaticBid {
    pub margin: f64,
}

impl StaticBid {
    /// Bid exactly the historical mean — the truthful-valuation baseline.
    pub fn at_mean() -> Self {
        Self { margin: 1.0 }
    }
}

impl BidPolicy for StaticBid {
    fn name(&self) -> &'static str {
        "static"
    }

    fn next_bid(&mut self, obs: &MarketObs) -> f64 {
        (self.margin * obs.hist_mean).min(obs.on_demand)
    }
}

/// Bid the on-demand price itself: the never-interrupted upper envelope
/// (a winner pays the spot price, so overbidding costs nothing per slot —
/// it only removes the interruption hedge the bid encodes).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnDemandClamp;

impl BidPolicy for OnDemandClamp {
    fn name(&self) -> &'static str {
        "clamp"
    }

    fn next_bid(&mut self, obs: &MarketObs) -> f64 {
        obs.on_demand
    }
}

/// Feedback-control bidding à la Li et al.: track the observed
/// interruption rate with an EWMA and steer a multiplicative bid factor
/// toward a target rate — interruptions push the bid up, quiet slots let
/// it relax back toward the mean.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackBid {
    /// Interruption rate the controller steers toward.
    pub target_interrupt_rate: f64,
    /// Proportional gain on the rate error.
    pub gain: f64,
    /// EWMA smoothing factor for the observed rate.
    pub smoothing: f64,
    rate: f64,
    mult: f64,
}

impl FeedbackBid {
    pub fn new(target_interrupt_rate: f64, gain: f64, smoothing: f64) -> Self {
        assert!((0.0..1.0).contains(&target_interrupt_rate));
        assert!(gain > 0.0 && (0.0..=1.0).contains(&smoothing));
        Self { target_interrupt_rate, gain, smoothing, rate: 0.0, mult: 1.0 }
    }

    /// The EWMA-estimated interruption rate so far.
    pub fn observed_rate(&self) -> f64 {
        self.rate
    }
}

impl Default for FeedbackBid {
    fn default() -> Self {
        Self::new(0.02, 2.0, 0.25)
    }
}

impl BidPolicy for FeedbackBid {
    fn name(&self) -> &'static str {
        "feedback"
    }

    fn next_bid(&mut self, obs: &MarketObs) -> f64 {
        let hit = if obs.interrupted { 1.0 } else { 0.0 };
        self.rate = (1.0 - self.smoothing) * self.rate + self.smoothing * hit;
        self.mult *= 1.0 + self.gain * (self.rate - self.target_interrupt_rate);
        // floor 1.0: never bid below the static-at-mean baseline, so the
        // controller only ever *reduces* interruptions relative to it
        self.mult = self.mult.clamp(1.0, 2.5);
        (self.mult * obs.hist_mean).min(obs.on_demand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(interrupted: bool) -> MarketObs {
        MarketObs { slot: 1, last_price: 0.06, hist_mean: 0.06, on_demand: 0.2, interrupted }
    }

    #[test]
    fn static_bid_is_constant_and_clamped() {
        let mut p = StaticBid::at_mean();
        assert_eq!(p.next_bid(&obs(false)), 0.06);
        assert_eq!(p.next_bid(&obs(true)), 0.06);
        let mut high = StaticBid { margin: 10.0 };
        assert_eq!(high.next_bid(&obs(false)), 0.2);
    }

    #[test]
    fn clamp_bids_on_demand() {
        assert_eq!(OnDemandClamp.next_bid(&obs(true)), 0.2);
    }

    #[test]
    fn feedback_raises_bid_under_interruptions() {
        let mut p = FeedbackBid::default();
        let calm = p.next_bid(&obs(false));
        for _ in 0..6 {
            p.next_bid(&obs(true));
        }
        let stressed = p.next_bid(&obs(true));
        assert!(stressed > calm, "{stressed} vs {calm}");
        assert!(p.observed_rate() > 0.5);
    }

    #[test]
    fn feedback_never_bids_below_mean_or_above_on_demand() {
        let mut p = FeedbackBid::default();
        for i in 0..200 {
            let b = p.next_bid(&obs(i % 2 == 0));
            assert!((0.06 - 1e-12..=0.2 + 1e-12).contains(&b), "bid {b} out of range");
        }
    }
}
