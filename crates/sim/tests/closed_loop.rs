//! End-to-end closed-loop properties and a golden pin.
//!
//! * Property: an on-demand clamp bid is never outbid, and on an
//!   interruption-free trace the realised ledger reproduces the planned
//!   counterfactual exactly — `realised / planned == 1` by construction,
//!   not by luck.
//! * Property: with on-demand failover recovery the realised cost can
//!   never beat the planned counterfactual (failover pays λ where the
//!   plan paid the spot price), and no demand is ever stranded.
//! * Golden: one small fixed-seed matrix pinned byte-for-byte, plus the
//!   headline claim at the default configuration — the feedback bidder
//!   realises a cheaper episode than the static bidder under failover.

use proptest::prelude::*;
use rrp_engine::Engine;
use rrp_sim::{
    run_episode, run_matrix, FeedbackBid, OnDemandClamp, OnDemandFailover, SimConfig, StaticBid,
};

fn cfg(seed: u64, slots: usize, horizon: usize) -> SimConfig {
    SimConfig { seed, slots, horizon, app_id: format!("prop-{seed}"), ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bidding λ wins every slot: zero interruptions, and the realised
    /// ledger must agree with the planned counterfactual to the float.
    #[test]
    fn clamp_trace_realises_exactly_the_plan(
        (seed, slots, horizon) in (any::<u64>(), 6usize..16, 2usize..6)
    ) {
        let engine = Engine::new(2);
        let c = cfg(seed, slots, horizon);
        let r = run_episode(&engine, &c, &mut OnDemandClamp, &mut OnDemandFailover);
        prop_assert_eq!(r.interruptions, 0);
        prop_assert!(
            (r.report.realised - r.report.planned).abs() < 1e-9,
            "interruption-free episode diverged: planned {} realised {}",
            r.report.planned, r.report.realised
        );
        prop_assert!((r.report.ratio() - 1.0).abs() < 1e-9);
        prop_assert_eq!(r.slo.violated_slots, 0);
        prop_assert!(r.slo.unrecovered_gb < 1e-9);
    }

    /// Failover recovery keeps demand whole and always costs at least the
    /// counterfactual: every interrupted slot swaps a spot price the plan
    /// paid for the strictly-dearer λ.
    #[test]
    fn failover_realised_cost_dominates_planned(
        (seed, margin) in (any::<u64>(), 0.7f64..1.1)
    ) {
        let engine = Engine::new(2);
        let c = cfg(seed, 10, 4);
        let mut bid = StaticBid { margin };
        let r = run_episode(&engine, &c, &mut bid, &mut OnDemandFailover);
        prop_assert!(
            r.report.realised >= r.report.planned - 1e-9,
            "realised {} beat planned {} with {} interruptions",
            r.report.realised, r.report.planned, r.interruptions
        );
        prop_assert!(r.slo.unrecovered_gb < 1e-9, "failover stranded demand: {:?}", r.slo);
    }
}

/// Byte-for-byte pin of one small fixed-seed matrix (no timestamps in the
/// report, so the JSON is fully deterministic). Regenerate with:
/// `cargo run --example spot_sim -- --slots 8 --horizon 3 --json <path>`.
#[test]
fn golden_small_matrix_is_pinned() {
    let engine = Engine::new(2);
    let c = SimConfig { slots: 8, horizon: 3, ..Default::default() };
    let report = run_matrix(&engine, &c);
    let expected = include_str!("golden/matrix_s8_h3.json");
    assert_eq!(report.to_json(), expected.trim_end(), "matrix drifted from the golden pin");
}

/// The headline acceptance claim at the default configuration: across one
/// fixed-seed 24-slot trace the feedback bidder realises a cheaper episode
/// than the static bidder under on-demand failover, because it raises its
/// bid after interruptions instead of being repeatedly outbid.
#[test]
fn feedback_beats_static_on_realised_cost_at_defaults() {
    let engine = Engine::new(2);
    let report = run_matrix(&engine, &SimConfig::default());
    assert_eq!(report.cells.len(), 9, "3 bid × 3 recovery policies");
    let fb = report.cell("feedback", "failover").expect("feedback×failover cell");
    let st = report.cell("static", "failover").expect("static×failover cell");
    assert!(
        fb.realised < st.realised,
        "feedback ({}) must realise cheaper than static ({}) under failover",
        fb.realised,
        st.realised
    );
    assert!(fb.interruptions < st.interruptions, "feedback must suffer fewer interruptions");
    // the clamp column is the interruption-free control group
    for rec in ["failover", "checkpoint", "migrate"] {
        let cell = report.cell("clamp", rec).expect("clamp cell");
        assert_eq!(cell.interruptions, 0);
        assert!((cell.ratio - 1.0).abs() < 1e-9, "clamp ratio must pin at 1.0");
    }
    // nothing stranded anywhere at the default episode length
    for cell in &report.cells {
        assert!(cell.unrecovered_gb < 1e-9, "{}×{} stranded demand", cell.bid, cell.recovery);
        assert_eq!(cell.deadline_misses, 0);
    }
}

/// The feedback controller's bid multiplier reacts to pressure: replaying
/// the same trace it ends above its floor iff it saw interruptions.
#[test]
fn feedback_bid_state_is_observable() {
    let engine = Engine::new(2);
    let mut fb = FeedbackBid::default();
    let c = SimConfig { slots: 12, horizon: 4, ..Default::default() };
    let r = run_episode(&engine, &c, &mut fb, &mut OnDemandFailover);
    assert!(r.interruptions >= 1, "this seed must pressure the feedback bidder");
    assert!(fb.observed_rate() > 0.0, "EWMA interruption rate must be non-zero");
}
