//! # rrp-prof — continuous profiling and post-mortem capture
//!
//! The third observability layer: `rrp-trace` records *what happened*,
//! `rrp-obs` *how much*; this crate attributes wall-clock to code paths
//! and captures state at the moment an SLO dies.
//!
//! **Sampling profiler** ([`Profiler`]): a sampler thread walks the
//! lock-free per-lane span stacks published by `rrp_trace::SpanStacks`
//! at a configurable rate (default 97 Hz — prime, so it cannot phase-lock
//! with millisecond-periodic work), accumulating sample counts per
//! collapsed span path (`request;rung:deterministic;milp`). The
//! instrumented workers pay only the seqlocked push/pop per span —
//! no allocation, no locks, no coordination with the sampler.
//!
//! **Flight recorder** ([`FlightRecorder`]): an always-on bounded ring of
//! recent trace events plus trigger detection. When a trigger fires —
//! deadline-miss spike, budget-exhaustion spike, `readyz` flip, panic,
//! sim SLO breach, or an explicit external cause — it dumps a post-mortem
//! bundle (JSON: cause, recent events, profiler samples, metrics
//! snapshot, in-flight request table) into a configurable directory,
//! rendered by `cargo run -p xtask -- postmortem <bundle.json>`.
//!
//! Both halves hang off [`ProfConfig`], which the engine embeds as
//! `EngineConfig::prof`.

mod flight;
mod profiler;

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

pub use flight::{install_panic_hook, FlightRecorder};
pub use profiler::{Profiler, SamplerShared};

/// Lock a mutex, recovering the guard from a poisoned lock: everything
/// this crate protects is observational (rings, histograms, providers),
/// and a panicking instrumented thread must not also wedge the
/// post-mortem machinery that exists to explain the panic.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Profiling and flight-recorder options (engine: `EngineConfig::prof`).
#[derive(Debug, Clone)]
pub struct ProfConfig {
    /// Sampler frequency. 0 disables the sampler thread (the flight
    /// recorder still runs; its bundles just carry no samples).
    pub sample_hz: u32,
    /// Flight-ring retention horizon: events older than this are pruned.
    pub ring_seconds: u64,
    /// Hard cap on ring occupancy (guards against event storms inside
    /// the retention window).
    pub ring_events: usize,
    /// Where post-mortem bundles land. `None` = triggers are tracked
    /// (cause, counters) but nothing is written to disk.
    pub bundle_dir: Option<PathBuf>,
    /// Fire `deadline_miss_spike` when this many deadline-missed
    /// requests complete within [`ProfConfig::spike_window_ms`]. 0 = off.
    pub deadline_miss_spike: u32,
    /// Sliding window for both spike triggers.
    pub spike_window_ms: u64,
    /// Fire `budget_exhaustion` when this many `exhausted:*` ladder
    /// rungs land within the window. 0 = off.
    pub budget_exhaustion_spike: u32,
    /// Debounce: a fired trigger suppresses further dumps for this long,
    /// so one incident produces one bundle, not a bundle per symptom.
    pub min_dump_interval_ms: u64,
    /// Chain a process-wide panic hook that fires a `panic` trigger
    /// before the previous hook runs. Off by default (it is global
    /// state, so embedders opt in).
    pub panic_hook: bool,
}

impl Default for ProfConfig {
    fn default() -> Self {
        Self {
            sample_hz: 97,
            ring_seconds: 30,
            ring_events: 16_384,
            bundle_dir: None,
            deadline_miss_spike: 16,
            spike_window_ms: 5_000,
            budget_exhaustion_spike: 64,
            min_dump_interval_ms: 30_000,
            panic_hook: false,
        }
    }
}
