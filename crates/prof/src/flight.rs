//! The flight-recorder half: an always-on bounded ring of recent trace
//! events plus trigger detection, dumping a post-mortem bundle when an
//! incident fires.
//!
//! The recorder is a [`Sink`] teed into the engine's event pipeline.
//! Every event lands in the ring (bounded by both a retention horizon
//! and a hard event cap); two event-driven triggers watch the stream —
//! a sliding-window spike of deadline-missed requests and a spike of
//! `exhausted:*` ladder rungs — and external triggers (`readyz` flip,
//! panic hook, sim SLO breach) arrive via [`FlightRecorder::trigger`].
//! A fired trigger is debounced (`min_dump_interval_ms`): one incident
//! produces one bundle, not one per symptom.
//!
//! Dumping happens inline on the triggering thread. That is a deliberate
//! trade: triggers are rare by construction (debounced, spike-gated) and
//! the dump is a bounded serialisation + one file write, so pausing the
//! thread that noticed the incident for a few milliseconds beats running
//! a dedicated thread that is idle for weeks.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use rrp_trace::{Event, EventKind, Sink};

use crate::profiler::SamplerShared;
use crate::ProfConfig;

/// Providers the engine wires in after construction (the recorder must
/// exist before the engine's shared state does, since it sits inside the
/// trace pipeline that state holds).
#[derive(Default)]
struct Providers {
    /// Metrics snapshot as a JSON object string.
    snapshot_json: Option<Box<dyn Fn() -> String + Send + Sync>>,
    /// In-flight request table as a JSON array string.
    inflight_json: Option<Box<dyn Fn() -> String + Send + Sync>>,
    /// SLO engine status (budgets, alerts, exemplar timelines) as a JSON
    /// object string — so a burn-rate bundle carries the offending
    /// tenant's tail-sampled timelines alongside the event ring.
    slo_json: Option<Box<dyn Fn() -> String + Send + Sync>>,
    /// Profiler aggregates for the bundle's `samples` section.
    samples: Option<Arc<SamplerShared>>,
}

pub struct FlightRecorder {
    cfg: ProfConfig,
    /// Monotonic origin for debounce and bundle timestamps.
    origin: Instant,
    ring: Mutex<VecDeque<Event>>,
    /// Events evicted by the hard cap (time-pruning is by design and
    /// not counted as loss).
    ring_dropped: AtomicU64,
    dumps: AtomicU64,
    last_trigger: Mutex<Option<String>>,
    /// Timestamps (event `t_us`) of recent deadline misses / exhausted
    /// rungs, pruned to the spike window.
    miss_window: Mutex<VecDeque<u64>>,
    exhaust_window: Mutex<VecDeque<u64>>,
    /// Debounce state: recorder-time µs of the last fired trigger.
    last_fired_us: Mutex<Option<u64>>,
    /// `readyz` edge detector for [`FlightRecorder::note_ready`].
    was_ready: AtomicBool,
    providers: Mutex<Providers>,
}

impl FlightRecorder {
    pub fn new(cfg: ProfConfig) -> Self {
        Self {
            cfg,
            origin: Instant::now(),
            ring: Mutex::new(VecDeque::new()),
            ring_dropped: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            last_trigger: Mutex::new(None),
            miss_window: Mutex::new(VecDeque::new()),
            exhaust_window: Mutex::new(VecDeque::new()),
            last_fired_us: Mutex::new(None),
            was_ready: AtomicBool::new(true),
            providers: Mutex::new(Providers::default()),
        }
    }

    /// Microseconds since the recorder came up.
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    pub fn set_snapshot_provider(&self, f: Box<dyn Fn() -> String + Send + Sync>) {
        crate::lock(&self.providers).snapshot_json = Some(f);
    }

    pub fn set_inflight_provider(&self, f: Box<dyn Fn() -> String + Send + Sync>) {
        crate::lock(&self.providers).inflight_json = Some(f);
    }

    pub fn set_slo_provider(&self, f: Box<dyn Fn() -> String + Send + Sync>) {
        crate::lock(&self.providers).slo_json = Some(f);
    }

    pub fn set_sampler(&self, s: Arc<SamplerShared>) {
        crate::lock(&self.providers).samples = Some(s);
    }

    pub fn ring_len(&self) -> usize {
        crate::lock(&self.ring).len()
    }

    pub fn ring_dropped(&self) -> u64 {
        // relaxed-ok: telemetry counters, nothing gates on them
        self.ring_dropped.load(Ordering::Relaxed)
    }

    pub fn dumps_fired(&self) -> u64 {
        // relaxed-ok: telemetry counter
        self.dumps.load(Ordering::Relaxed)
    }

    pub fn last_trigger(&self) -> Option<String> {
        crate::lock(&self.last_trigger).clone()
    }

    /// `/flight` status document: ring occupancy and trigger history.
    pub fn status_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"ring_events\":");
        let _ = write!(out, "{}", self.ring_len());
        out.push_str(",\"ring_cap\":");
        let _ = write!(out, "{}", self.cfg.ring_events);
        out.push_str(",\"ring_seconds\":");
        let _ = write!(out, "{}", self.cfg.ring_seconds);
        out.push_str(",\"ring_dropped\":");
        let _ = write!(out, "{}", self.ring_dropped());
        out.push_str(",\"dumps\":");
        let _ = write!(out, "{}", self.dumps_fired());
        out.push_str(",\"last_trigger\":");
        match self.last_trigger() {
            Some(cause) => {
                out.push('"');
                json_escape(&mut out, &cause);
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Readiness edge detector: a ready→not-ready transition fires the
    /// `readyz_flip` trigger (the not-ready→ready edge is recovery, not
    /// an incident).
    pub fn note_ready(&self, ready: bool) {
        // relaxed-ok: single-word edge detector; the trigger path re-syncs on the debounce mutex
        let was = self.was_ready.swap(ready, Ordering::Relaxed);
        if was && !ready {
            let _ = self.trigger("readyz_flip");
        }
    }

    /// Fire a trigger: record the cause, and — unless debounced — dump a
    /// bundle to the configured directory. External callers (readiness,
    /// panic hook, sim SLO gate) use this directly; event-driven spikes
    /// arrive via [`Sink::emit`]. Returns whether the incident fired
    /// (false when the debounce window swallowed it).
    pub fn trigger(&self, cause: &str) -> bool {
        {
            let mut last = crate::lock(&self.last_fired_us);
            let now = self.now_us();
            if let Some(prev) = *last {
                if now.saturating_sub(prev) < self.cfg.min_dump_interval_ms * 1_000 {
                    return false;
                }
            }
            *last = Some(now);
        }
        // relaxed-ok: telemetry counter
        self.dumps.fetch_add(1, Ordering::Relaxed);
        *crate::lock(&self.last_trigger) = Some(cause.to_string());
        if let Some(dir) = self.cfg.bundle_dir.clone() {
            // relaxed-ok: reads back our own fetch_add; concurrent dumps excluded by debounce
            let seq = self.dumps.load(Ordering::Relaxed).saturating_sub(1);
            let bundle = self.render_bundle(cause);
            let path = dir.join(format!("postmortem-{seq:03}-{cause}.json"));
            let write = std::fs::create_dir_all(&dir)
                .and_then(|()| std::fs::write(&path, bundle.as_bytes()));
            if let Err(e) = write {
                // a failing disk must not take the planner down with it
                eprintln!("rrp-prof: post-mortem dump to {} failed: {e}", path.display());
            }
        }
        true
    }

    /// Serialise the post-mortem bundle (`rrp-postmortem/1` schema).
    fn render_bundle(&self, cause: &str) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"rrp-postmortem/1\",\"cause\":\"");
        json_escape(&mut out, cause);
        out.push_str("\",\"t_us\":");
        let _ = write!(out, "{}", self.now_us());
        out.push_str(",\"ring_seconds\":");
        let _ = write!(out, "{}", self.cfg.ring_seconds);
        out.push_str(",\"ring_dropped\":");
        let _ = write!(out, "{}", self.ring_dropped());
        out.push_str(",\"events\":[");
        {
            let ring = crate::lock(&self.ring);
            for (i, ev) in ring.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                ev.write_json(&mut out);
            }
        }
        out.push(']');
        let providers = crate::lock(&self.providers);
        out.push_str(",\"samples\":");
        match &providers.samples {
            Some(s) => {
                out.push('[');
                for (i, (path, n)) in s.entries().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"stack\":\"");
                    json_escape(&mut out, path);
                    let _ = write!(out, "\",\"count\":{n}}}");
                }
                out.push(']');
                let _ = write!(out, ",\"samples_total\":{}", s.samples_total());
            }
            None => out.push_str("[],\"samples_total\":0"),
        }
        out.push_str(",\"metrics\":");
        match &providers.snapshot_json {
            Some(f) => out.push_str(&f()),
            None => out.push_str("null"),
        }
        out.push_str(",\"inflight\":");
        match &providers.inflight_json {
            Some(f) => out.push_str(&f()),
            None => out.push_str("null"),
        }
        out.push_str(",\"slo\":");
        match &providers.slo_json {
            Some(f) => out.push_str(&f()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Slide `window` to `[t_us - spike_window, t_us]`, admit `t_us`, and
    /// report whether occupancy reached `threshold`.
    fn spike(&self, window: &Mutex<VecDeque<u64>>, t_us: u64, threshold: u32) -> bool {
        if threshold == 0 {
            return false;
        }
        let horizon = t_us.saturating_sub(self.cfg.spike_window_ms * 1_000);
        let mut w = crate::lock(window);
        while w.front().is_some_and(|&t| t < horizon) {
            w.pop_front();
        }
        w.push_back(t_us);
        w.len() >= threshold as usize
    }
}

impl Sink for FlightRecorder {
    fn emit(&self, ev: &Event) {
        // Solver-layer events (per-node, per-simplex-iteration) are
        // deliberately not recorded: they arrive thousands per request,
        // would age the lifecycle events a post-mortem actually needs out
        // of the ring in milliseconds, and the mutex push per event would
        // show up in engine throughput. The profiler's samples are the
        // intended window into solver internals; the ring keeps request
        // lifecycle, ladder, audit and solve summaries.
        match &ev.kind {
            EventKind::SimplexIter { .. }
            | EventKind::Refactored { .. }
            | EventKind::LpSolved { .. }
            | EventKind::NodeOpened { .. }
            | EventKind::NodePruned { .. }
            | EventKind::NodeIntegral { .. }
            | EventKind::IncumbentImproved { .. }
            | EventKind::BoundImproved { .. }
            | EventKind::GapSample { .. } => return,
            _ => {}
        }
        {
            let mut ring = crate::lock(&self.ring);
            ring.push_back(ev.clone());
            let horizon = ev.t_us.saturating_sub(self.cfg.ring_seconds * 1_000_000);
            while ring.front().is_some_and(|e| e.t_us < horizon) {
                ring.pop_front();
            }
            while ring.len() > self.cfg.ring_events {
                ring.pop_front();
                // relaxed-ok: telemetry counter
                self.ring_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        match &ev.kind {
            EventKind::RequestDone { deadline_met: false, .. }
                if self.spike(&self.miss_window, ev.t_us, self.cfg.deadline_miss_spike) =>
            {
                let _ = self.trigger("deadline_miss_spike");
            }
            EventKind::LadderStep { outcome, .. }
                if outcome.starts_with("exhausted:")
                    && self.spike(
                        &self.exhaust_window,
                        ev.t_us,
                        self.cfg.budget_exhaustion_spike,
                    ) =>
            {
                let _ = self.trigger("budget_exhaustion");
            }
            _ => {}
        }
    }
}

/// Chain a process-wide panic hook firing a `panic` trigger before the
/// previous hook runs. Holds only a [`Weak`]: once the recorder's engine
/// is gone the hook degenerates to the previous behaviour.
pub fn install_panic_hook(recorder: &Arc<FlightRecorder>) {
    let weak: Weak<FlightRecorder> = Arc::downgrade(recorder);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(rec) = weak.upgrade() {
            let _ = rec.trigger("panic");
        }
        prev(info);
    }));
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_trace::SpanId;

    fn cfg() -> ProfConfig {
        ProfConfig {
            bundle_dir: None,
            deadline_miss_spike: 3,
            spike_window_ms: 1_000,
            budget_exhaustion_spike: 0,
            min_dump_interval_ms: 0,
            ..ProfConfig::default()
        }
    }

    fn done(t_us: u64, met: bool) -> Event {
        Event {
            t_us,
            worker: 0,
            span: SpanId::ROOT,
            kind: EventKind::RequestDone {
                request_id: 0,
                tenant: "t".to_string(),
                level: "full",
                outcome: "ok",
                latency_us: 1,
                deadline_met: met,
            },
        }
    }

    #[test]
    fn miss_spike_fires_inside_the_window_only() {
        let rec = FlightRecorder::new(cfg());
        rec.emit(&done(0, false));
        rec.emit(&done(100, false));
        assert_eq!(rec.dumps_fired(), 0, "two misses stay under the threshold");
        // third miss arrives after the window slid past the first two
        rec.emit(&done(5_000_000, false));
        assert_eq!(rec.dumps_fired(), 0);
        rec.emit(&done(5_000_100, false));
        rec.emit(&done(5_000_200, false));
        assert_eq!(rec.dumps_fired(), 1, "three misses in-window fire");
        assert_eq!(rec.last_trigger().as_deref(), Some("deadline_miss_spike"));
    }

    #[test]
    fn met_deadlines_do_not_count() {
        let rec = FlightRecorder::new(cfg());
        for i in 0..10 {
            rec.emit(&done(i * 100, true));
        }
        assert_eq!(rec.dumps_fired(), 0);
    }

    #[test]
    fn debounce_coalesces_one_incident_into_one_dump() {
        let mut c = cfg();
        c.min_dump_interval_ms = 60_000;
        let rec = FlightRecorder::new(c);
        for i in 0..20 {
            rec.emit(&done(i * 100, false));
        }
        assert_eq!(rec.dumps_fired(), 1, "the storm fires exactly once");
    }

    #[test]
    fn ring_prunes_by_time_and_cap() {
        let mut c = cfg();
        c.ring_seconds = 1;
        c.ring_events = 4;
        let rec = FlightRecorder::new(c);
        for i in 0..8 {
            rec.emit(&done(i * 1_000, true));
        }
        assert_eq!(rec.ring_len(), 4, "hard cap holds");
        assert_eq!(rec.ring_dropped(), 4);
        // an event far in the future ages everything else out
        rec.emit(&done(10_000_000, true));
        assert_eq!(rec.ring_len(), 1, "retention horizon pruned the rest");
    }

    #[test]
    fn readiness_flip_triggers_on_the_falling_edge_only() {
        let rec = FlightRecorder::new(cfg());
        rec.note_ready(true);
        assert_eq!(rec.dumps_fired(), 0);
        rec.note_ready(false);
        assert_eq!(rec.dumps_fired(), 1);
        assert_eq!(rec.last_trigger().as_deref(), Some("readyz_flip"));
        rec.note_ready(true); // recovery is not an incident
        assert_eq!(rec.dumps_fired(), 1);
    }

    #[test]
    fn bundle_lands_in_the_configured_dir_and_parses_shapely() {
        let dir = std::env::temp_dir().join(format!("rrp-prof-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = cfg();
        c.bundle_dir = Some(dir.clone());
        let rec = FlightRecorder::new(c);
        rec.set_snapshot_provider(Box::new(|| "{\"completed\":7}".to_string()));
        rec.set_inflight_provider(Box::new(|| "[{\"tenant\":\"a\"}]".to_string()));
        for i in 0..3 {
            rec.emit(&done(i, false));
        }
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        assert_eq!(files.len(), 1, "exactly one bundle: {files:?}");
        let body = std::fs::read_to_string(&files[0]).unwrap();
        assert!(body.contains("\"schema\":\"rrp-postmortem/1\""), "{body}");
        assert!(body.contains("\"cause\":\"deadline_miss_spike\""), "{body}");
        assert!(body.contains("\"completed\":7"), "{body}");
        assert!(body.contains("\"inflight\":[{\"tenant\":\"a\"}]"), "{body}");
        assert!(body.contains("\"ev\":\"request_done\""), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_json_reports_ring_and_trigger_state() {
        let rec = FlightRecorder::new(cfg());
        rec.emit(&done(0, true));
        let s = rec.status_json();
        assert!(s.contains("\"ring_events\":1"), "{s}");
        assert!(s.contains("\"last_trigger\":null"), "{s}");
        let _ = rec.trigger("sim_slo_breach");
        assert!(rec.status_json().contains("\"last_trigger\":\"sim_slo_breach\""));
    }
}
