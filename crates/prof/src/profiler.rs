//! The sampling half: a background thread walking every lane's seqlocked
//! span stack at a fixed rate, folding consistent snapshots into a
//! collapsed-path histogram.
//!
//! What sampling can and cannot attribute: a sample charges the *whole
//! current path* one hit, so path counts divided by the rate estimate
//! total wall-clock per path (and, per frame, self time = hits on paths
//! where the frame is the leaf). It cannot see work that opens no span
//! (charged to the enclosing frame) nor spans shorter than a couple of
//! sample periods (they appear, but with high variance). Lanes whose
//! stack is mid-rewrite for a full retry budget are skipped for that
//! tick — a bias against extremely-frequent span churn, not against any
//! particular path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rrp_trace::{SpanStacks, MAX_LANES};

/// Aggregation state shared between the sampler thread and its readers
/// (`/profile`, bundle dumps, the metrics bridge).
pub struct SamplerShared {
    stacks: Arc<SpanStacks>,
    stop: AtomicBool,
    samples_total: AtomicU64,
    /// Collapsed path (`"request;rung:full;milp"`) → sample hits. BTreeMap
    /// keeps `collapsed()` deterministic. Bounded by the span-name
    /// vocabulary (a handful of static names), not by traffic.
    paths: Mutex<BTreeMap<String, u64>>,
}

impl SamplerShared {
    /// Samples that found a non-empty stack, across all lanes.
    pub fn samples_total(&self) -> u64 {
        // relaxed-ok: monotonic telemetry counter, nothing gates on it
        self.samples_total.load(Ordering::Relaxed)
    }

    /// Number of distinct span paths observed so far.
    pub fn distinct_paths(&self) -> usize {
        crate::lock(&self.paths).len()
    }

    /// `(path, hits)` pairs in deterministic (path) order.
    pub fn entries(&self) -> Vec<(String, u64)> {
        crate::lock(&self.paths).iter().map(|(p, n)| (p.clone(), *n)).collect()
    }

    /// The standard collapsed-stack format: one `path count` line per
    /// observed path — ready for flamegraph tooling or `xtask prof`.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, n) in crate::lock(&self.paths).iter() {
            out.push_str(path);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out
    }

    /// One sweep over all lanes (the sampler tick body; public so tests
    /// and zero-rate configurations can sample deterministically).
    pub fn sample_once(&self) {
        let mut ids = Vec::with_capacity(16);
        let mut key = String::with_capacity(64);
        for lane in 0..MAX_LANES as u32 {
            if !self.stacks.sample_into(lane, &mut ids) || ids.is_empty() {
                continue;
            }
            key.clear();
            for (i, name) in self.stacks.resolve(&ids).iter().enumerate() {
                if i > 0 {
                    key.push(';');
                }
                key.push_str(name);
            }
            *crate::lock(&self.paths).entry(key.clone()).or_insert(0) += 1;
            // relaxed-ok: telemetry counter
            self.samples_total.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Owns the sampler thread; stops and joins it on drop.
pub struct Profiler {
    shared: Arc<SamplerShared>,
    thread: Option<JoinHandle<()>>,
}

impl Profiler {
    /// Start sampling `stacks` at `sample_hz`. A zero rate builds the
    /// shared state but no thread ([`SamplerShared::sample_once`] can
    /// still be driven manually).
    pub fn start(stacks: Arc<SpanStacks>, sample_hz: u32) -> Self {
        let shared = Arc::new(SamplerShared {
            stacks,
            stop: AtomicBool::new(false),
            samples_total: AtomicU64::new(0),
            paths: Mutex::new(BTreeMap::new()),
        });
        let thread = (sample_hz > 0).then(|| {
            let shared = Arc::clone(&shared);
            let period = Duration::from_nanos(1_000_000_000 / u64::from(sample_hz));
            std::thread::Builder::new()
                .name("rrp-prof-sampler".to_string())
                .spawn(move || {
                    // relaxed-ok: stop flag; one extra tick is harmless and Drop joins regardless
                    while !shared.stop.load(Ordering::Relaxed) {
                        shared.sample_once();
                        std::thread::sleep(period);
                    }
                })
                .expect("spawn profiler sampler")
        });
        Self { shared, thread }
    }

    pub fn shared(&self) -> Arc<SamplerShared> {
        Arc::clone(&self.shared)
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        // relaxed-ok: stop flag; the join below is the real synchronisation point
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_sampling_accumulates_collapsed_paths() {
        let stacks = Arc::new(SpanStacks::new());
        let prof = Profiler::start(Arc::clone(&stacks), 0);
        let shared = prof.shared();
        stacks.push(0, "request");
        stacks.push(0, "rung:full");
        stacks.push(3, "request");
        shared.sample_once();
        shared.sample_once();
        stacks.push(0, "milp");
        shared.sample_once();
        let collapsed = shared.collapsed();
        assert_eq!(
            collapsed, "request 3\nrequest;rung:full 2\nrequest;rung:full;milp 1\n",
            "{collapsed}"
        );
        assert_eq!(shared.samples_total(), 6);
        assert_eq!(shared.distinct_paths(), 3);
    }

    #[test]
    fn sampler_thread_observes_a_held_span() {
        let stacks = Arc::new(SpanStacks::new());
        stacks.push(1, "request");
        let prof = Profiler::start(Arc::clone(&stacks), 500);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while prof.shared().samples_total() < 3 {
            assert!(std::time::Instant::now() < deadline, "sampler made no progress");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(prof); // joins cleanly
        stacks.pop(1);
    }

    #[test]
    fn idle_stacks_produce_no_samples() {
        let prof = Profiler::start(Arc::new(SpanStacks::new()), 0);
        prof.shared().sample_once();
        assert_eq!(prof.shared().samples_total(), 0);
        assert!(prof.shared().collapsed().is_empty());
    }
}
