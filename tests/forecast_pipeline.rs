//! The §IV-A predictability pipeline on the synthetic archive: the paper's
//! qualitative conclusions must reproduce end-to-end.

use rrp_spotmarket::{SpotArchive, VmClass};
use rrp_timeseries::acf::{acf, confidence_band};
use rrp_timeseries::metrics::mspe;
use rrp_timeseries::normality::shapiro_wilk;
use rrp_timeseries::outlier::BoxWhisker;
use rrp_timeseries::sarima::SarimaSpec;
use rrp_timeseries::stats::mean;

#[test]
fn normality_rejected_on_estimation_window() {
    // Paper Fig. 5: "normal distribution is inadequate to approximate the
    // selected data set ... supported by the Shapiro-Wilk test".
    let archive = SpotArchive::canonical(VmClass::C1Medium);
    let est = archive.estimation_window();
    let sample = &est.values()[..est.len().min(2000)];
    let r = shapiro_wilk(sample);
    assert!(r.rejects_normality(0.05), "W = {} p = {}", r.statistic, r.p_value);
}

#[test]
fn autocorrelation_weak_but_present() {
    // Paper Fig. 7: some lags exceed the 95% band, but correlations are far
    // from 1 ("not strong enough").
    let archive = SpotArchive::canonical(VmClass::C1Medium);
    let est = archive.estimation_window();
    let r = acf(est.values(), 30);
    let band = confidence_band(est.len());
    let beyond = (1..=30).filter(|&k| r[k].abs() > band).count();
    assert!(beyond >= 1, "no lag beyond the band — series looks like pure noise");
    let max_corr = (1..=30).map(|k| r[k].abs()).fold(0.0, f64::max);
    assert!(max_corr < 0.95, "correlation {max_corr} too strong — unlike the paper's data");
}

#[test]
fn outliers_bounded_across_classes() {
    // Paper Fig. 3: outliers < 3% of the data even for the most volatile
    // class, with more outliers for more powerful classes.
    for class in VmClass::ALL {
        let archive = SpotArchive::canonical(class);
        let bw = BoxWhisker::build(archive.hourly.values());
        let frac = bw.outlier_fraction(archive.hourly.len());
        assert!(frac < 0.03, "{class}: {frac}");
    }
}

#[test]
fn sarima_beats_mean_only_marginally() {
    // Paper Fig. 8 conclusion: the best SARIMA's day-ahead MSPE "is only
    // slightly better than the simple prediction using the expected mean
    // value" — i.e. the ratio should be near 1, not a large win.
    let archive = SpotArchive::canonical(VmClass::C1Medium);
    let est = archive.estimation_window();
    let actual = archive.validation_day();

    let fit = SarimaSpec { p: 2, d: 0, q: 1, sp: 2, sd: 0, sq: 0, s: 24 }.fit(est.values());
    let fc = fit.forecast(24);
    let sarima_mspe = mspe(actual.values(), &fc);

    let mean_pred = vec![mean(est.values()); 24];
    let mean_mspe = mspe(actual.values(), &mean_pred);

    // not catastrophically worse, and no dramatic improvement
    assert!(
        sarima_mspe < mean_mspe * 3.0,
        "SARIMA MSPE {sarima_mspe:.3e} ≫ mean-predictor {mean_mspe:.3e}"
    );
    assert!(
        sarima_mspe > mean_mspe * 0.2,
        "SARIMA MSPE {sarima_mspe:.3e} beats the mean by >5× — spot prices \
         should not be this predictable (paper §IV-A)"
    );
}

#[test]
fn forecast_stays_in_price_range() {
    // Fig. 8: "predicted prices are mostly hanging over the average price
    // line" — forecasts must stay within the observed price band.
    let archive = SpotArchive::canonical(VmClass::C1Medium);
    let est = archive.estimation_window();
    let lo = est.values().iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = est.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let fit = SarimaSpec { p: 2, d: 0, q: 1, sp: 1, sd: 0, sq: 0, s: 24 }.fit(est.values());
    for (h, v) in fit.forecast(24).iter().enumerate() {
        assert!(
            (lo * 0.8..=hi * 1.2).contains(v),
            "forecast[{h}] = {v} escapes the plausible band [{lo}, {hi}]"
        );
    }
}

#[test]
fn hourly_regularisation_matches_event_feed() {
    // The hourly series must track the raw feed: at every event hour the
    // regularised price equals the last event's price in that hour.
    let archive = SpotArchive::canonical(VmClass::M1Large);
    let ev = &archive.events;
    let hourly = archive.hourly.values();
    // walk events; check the containing hour's value
    for (i, (&t, &v)) in ev.times.iter().zip(&ev.values).enumerate() {
        let hour = (t / 3600) as usize;
        // only check when this is the last event of its hour
        let last_of_hour = ev.times.get(i + 1).is_none_or(|&t2| t2 / 3600 != t / 3600);
        if last_of_hour && hour < hourly.len() {
            assert_eq!(hourly[hour], v, "hour {hour}");
        }
    }
}
