//! The paper's qualitative result: SRRP consistently beats its DRRP
//! counterpart under price uncertainty, and planning beats no planning.
//! Protocol as in §V: DRRP plans a 24-hour horizon, SRRP a 6-hour horizon,
//! each plan executed over its horizon (SRRP walking the scenario tree).
//! Costs are averaged over several evaluation days, as the paper averages
//! over scenarios.

use rrp_core::demand::DemandModel;
use rrp_core::policy::Policy;
use rrp_core::rolling::{simulate, MarketEnv, RollingConfig};
use rrp_milp::MilpOptions;
use rrp_spotmarket::{CostRates, SpotArchive, VmClass};
use rrp_timeseries::stats::mean;

fn config(policy: Policy) -> RollingConfig {
    RollingConfig {
        horizon: if policy.is_stochastic() { 6 } else { 24 },
        milp: MilpOptions { node_limit: 50_000, ..Default::default() },
        ..Default::default()
    }
}

/// Average cost of a policy over several consecutive evaluation days.
fn average_cost(policy: Policy, class: VmClass, days: usize) -> f64 {
    let archive = SpotArchive::canonical(class);
    let mut total = 0.0;
    for d in 0..days {
        let start = rrp_spotmarket::archive::ESTIMATION_START_DAY + d;
        let end = rrp_spotmarket::archive::ESTIMATION_END_DAY + d;
        let history = archive.hourly_window(start, end).into_values();
        let realized = archive.hourly_window(end, end + 1).into_values();
        let demand = DemandModel::paper_default().sample(realized.len(), 1000 + d as u64);
        let predictions = vec![mean(&history); realized.len()];
        let env = MarketEnv {
            realized: &realized,
            history: &history,
            predictions: Some(&predictions),
            on_demand: class.on_demand_price(),
            demand: &demand,
            rates: CostRates::ec2_2011(),
        };
        total += simulate(policy, &env, &config(policy)).cost.total();
    }
    total / days as f64
}

#[test]
fn planning_beats_no_planning() {
    // Fig. 10: DRRP ≤ no-plan; the gap grows with instance price.
    for class in [VmClass::C1Medium, VmClass::M1Xlarge] {
        let noplan = average_cost(Policy::NoPlan, class, 3);
        let planned = average_cost(Policy::OnDemandPlanned, class, 3);
        assert!(planned <= noplan + 1e-9, "{class}: planned {planned} vs no-plan {noplan}");
    }
}

#[test]
fn spot_planning_beats_on_demand_planning() {
    // Fig. 12(a): the on-demand scheme yields the most overpay.
    let class = VmClass::C1Medium;
    let od = average_cost(Policy::OnDemandPlanned, class, 3);
    let det = average_cost(Policy::DetExpMean, class, 3);
    let sto = average_cost(Policy::StoExpMean, class, 3);
    assert!(det <= od + 1e-9, "det-exp-mean {det} vs on-demand {od}");
    assert!(sto <= od + 1e-9, "sto-exp-mean {sto} vs on-demand {od}");
}

#[test]
fn srrp_beats_drrp_counterpart() {
    // Fig. 12(a): "SRRP consistently outperforms its DRRP counterpart" —
    // averaged over days (single days are noisy, as the paper's §V-D
    // discussion of converging models acknowledges).
    let class = VmClass::C1Medium;
    let days = 8;
    let det = average_cost(Policy::DetExpMean, class, days);
    let sto = average_cost(Policy::StoExpMean, class, days);
    assert!(
        sto <= det + 1e-9,
        "sto-exp-mean {sto} should not exceed det-exp-mean {det} over {days} days"
    );
}

#[test]
fn oracle_lower_bounds_everyone() {
    let class = VmClass::C1Medium;
    let oracle = average_cost(Policy::Oracle, class, 2);
    for policy in [Policy::DetExpMean, Policy::StoExpMean, Policy::OnDemandPlanned] {
        let c = average_cost(policy, class, 2);
        assert!(c >= oracle - 1e-6, "{policy}: {c} beat oracle {oracle}");
    }
}
