//! End-to-end runs wiring every crate together: archive → distributions →
//! scenario tree → SRRP MILP → rolling execution with realised billing.

use rrp_core::demand::DemandModel;
use rrp_core::policy::Policy;
use rrp_core::rolling::{simulate, MarketEnv, RollingConfig};
use rrp_core::sampling::stage_distributions;
use rrp_core::{CostSchedule, PlanningParams, ScenarioTree, SrrpProblem};
use rrp_milp::MilpOptions;
use rrp_spotmarket::{CostRates, EmpiricalDist, SpotArchive, VmClass};

fn day_env(class: VmClass) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let archive = SpotArchive::canonical(class);
    let history = archive.estimation_window().into_values();
    let realized = archive.validation_day().into_values();
    let demand = DemandModel::paper_default().sample(realized.len(), 77);
    (history, realized, demand)
}

#[test]
fn srrp_from_real_archive_solves() {
    let class = VmClass::C1Medium;
    let (history, _, demand) = day_env(class);
    let base = EmpiricalDist::from_history(&history, 3);
    let bid = base.mean();
    let horizon = 6;
    let dists = stage_distributions(&base, &vec![bid; horizon], class.on_demand_price());
    let tree = ScenarioTree::from_stage_distributions(&dists, 50_000);
    let schedule =
        CostSchedule::ec2(vec![0.0; horizon], demand[..horizon].to_vec(), &CostRates::ec2_2011());
    let srrp = SrrpProblem::new(schedule, PlanningParams::default(), tree);
    let plan = srrp.solve_milp(&MilpOptions { node_limit: 100_000, ..Default::default() }).unwrap();
    assert!(srrp.is_feasible(&plan, 1e-6));
    assert!(plan.expected_cost > 0.0);
    assert!(plan.gap <= 1e-4, "gap {}", plan.gap);
}

#[test]
fn all_policies_complete_a_day() {
    let class = VmClass::C1Medium;
    let (history, realized, demand) = day_env(class);
    let predictions = vec![rrp_timeseries::stats::mean(&history); realized.len()];
    let env = MarketEnv {
        realized: &realized,
        history: &history,
        predictions: Some(&predictions),
        on_demand: class.on_demand_price(),
        demand: &demand,
        rates: CostRates::ec2_2011(),
    };
    let cfg = RollingConfig { horizon: 6, max_states: 3, ..Default::default() };
    for policy in [
        Policy::NoPlan,
        Policy::OnDemandPlanned,
        Policy::DetPredict,
        Policy::StoPredict,
        Policy::DetExpMean,
        Policy::StoExpMean,
        Policy::Oracle,
    ] {
        let r = simulate(policy, &env, &cfg);
        assert!(r.cost.total() > 0.0, "{policy}: zero cost");
        // transfer-out is identical across policies (demand is fixed)
        let expect_out: f64 = demand.iter().sum::<f64>() * 0.17;
        assert!(
            (r.cost.transfer_out - expect_out).abs() < 1e-9,
            "{policy}: transfer-out {}",
            r.cost.transfer_out
        );
    }
}

#[test]
fn oracle_is_cheapest() {
    let class = VmClass::C1Medium;
    let (history, realized, demand) = day_env(class);
    let predictions = vec![rrp_timeseries::stats::mean(&history); realized.len()];
    let env = MarketEnv {
        realized: &realized,
        history: &history,
        predictions: Some(&predictions),
        on_demand: class.on_demand_price(),
        demand: &demand,
        rates: CostRates::ec2_2011(),
    };
    let cfg = RollingConfig { horizon: 6, ..Default::default() };
    let oracle = simulate(Policy::Oracle, &env, &cfg).cost.total();
    for policy in Policy::FIG12A {
        let c = simulate(policy, &env, &cfg).cost.total();
        assert!(c >= oracle - 1e-6, "{policy} ({c}) beat the oracle ({oracle})");
    }
}

#[test]
fn on_demand_planning_is_most_expensive_spot_alternative() {
    // The paper's headline Fig. 12(a) observation: the on-demand scheme
    // overpays the most among planned policies.
    let class = VmClass::M1Large;
    let (history, realized, demand) = day_env(class);
    let predictions = vec![rrp_timeseries::stats::mean(&history); realized.len()];
    let env = MarketEnv {
        realized: &realized,
        history: &history,
        predictions: Some(&predictions),
        on_demand: class.on_demand_price(),
        demand: &demand,
        rates: CostRates::ec2_2011(),
    };
    let cfg = RollingConfig { horizon: 6, ..Default::default() };
    let on_demand = simulate(Policy::OnDemandPlanned, &env, &cfg).cost.total();
    for policy in [Policy::DetExpMean, Policy::StoExpMean] {
        let c = simulate(policy, &env, &cfg).cost.total();
        assert!(
            c <= on_demand + 1e-6,
            "{policy} ({c}) should not exceed on-demand planning ({on_demand})"
        );
    }
}

#[test]
fn demand_always_met_with_initial_inventory() {
    let class = VmClass::C1Medium;
    let (history, realized, demand) = day_env(class);
    let env = MarketEnv {
        realized: &realized,
        history: &history,
        predictions: None,
        on_demand: class.on_demand_price(),
        demand: &demand,
        rates: CostRates::ec2_2011(),
    };
    // simulate() asserts demand coverage internally each slot
    let r = simulate(Policy::DetExpMean, &env, &RollingConfig::default());
    assert!(r.final_inventory >= 0.0);
}
