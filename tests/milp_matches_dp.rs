//! Cross-crate invariant: the generic branch & bound MILP (the paper's
//! solution method) and the Wagner–Whitin dynamic program (the lot-sizing
//! structure the paper identifies) must agree exactly on uncapacitated
//! DRRP instances.

use rand::{Rng, SeedableRng};
use rrp_core::demand::DemandModel;
use rrp_core::{wagner_whitin, CostSchedule, DrrpProblem, PlanningParams};
use rrp_milp::MilpOptions;
use rrp_spotmarket::{CostRates, SpotArchive, VmClass};

#[test]
fn milp_equals_ww_on_random_instances() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let rates = CostRates::ec2_2011();
    for trial in 0..25 {
        let t = 2 + rng.gen_range(0..10);
        let compute: Vec<f64> = (0..t).map(|_| rng.gen_range(0.02..1.0)).collect();
        let demand: Vec<f64> = (0..t).map(|_| rng.gen_range(0.0..1.2)).collect();
        let eps = if trial % 3 == 0 { rng.gen_range(0.0..0.8) } else { 0.0 };
        let schedule = CostSchedule::ec2(compute, demand, &rates);
        let params = PlanningParams { initial_inventory: eps, capacity: None };
        let problem = DrrpProblem::new(schedule.clone(), params);

        let ww = wagner_whitin::solve(&schedule, &params);
        let milp = problem.solve_milp(&MilpOptions::default()).unwrap();
        assert!(
            (ww.objective - milp.objective).abs() <= 1e-6 * (1.0 + ww.objective.abs()),
            "trial {trial}: WW {} vs MILP {}",
            ww.objective,
            milp.objective
        );
        assert!(ww.is_feasible(&schedule, &params, 1e-7), "WW plan infeasible");
        assert!(milp.is_feasible(&schedule, &params, 1e-5), "MILP plan infeasible");
    }
}

#[test]
fn milp_equals_ww_on_archive_prices() {
    // A realistic instance: 24 h of realised c1.medium spot prices as the
    // compute schedule (the oracle planner's problem).
    let archive = SpotArchive::canonical(VmClass::C1Medium);
    let prices = archive.validation_day();
    let demand = DemandModel::paper_default().sample(24, 5);
    let schedule = CostSchedule::ec2(prices.values().to_vec(), demand, &CostRates::ec2_2011());
    let problem = DrrpProblem::new(schedule.clone(), PlanningParams::default());

    let ww = wagner_whitin::solve(&schedule, &PlanningParams::default());
    let milp = problem.solve_milp(&MilpOptions::default()).unwrap();
    assert!(
        (ww.objective - milp.objective).abs() < 1e-6,
        "WW {} vs MILP {}",
        ww.objective,
        milp.objective
    );
}

#[test]
fn capacitated_milp_never_beats_uncapacitated_ww() {
    let rates = CostRates::ec2_2011();
    let demand = vec![0.9, 1.1, 0.8, 1.0];
    let schedule = CostSchedule::ec2(vec![0.3; 4], demand, &rates);
    let unconstrained = wagner_whitin::solve(&schedule, &PlanningParams::default());
    for cap in [1.2, 1.5, 2.0, 5.0] {
        let p = DrrpProblem::new(
            schedule.clone(),
            PlanningParams { initial_inventory: 0.0, capacity: Some(cap) },
        );
        let sol = p.solve_milp(&MilpOptions::default()).unwrap();
        assert!(
            sol.objective >= unconstrained.objective - 1e-7,
            "cap {cap}: capacitated {} beat unconstrained {}",
            sol.objective,
            unconstrained.objective
        );
    }
}

#[test]
fn ww_scales_to_long_horizons() {
    // The DP must handle a week of hourly slots instantly and stay
    // consistent with the MILP on a spot-check prefix.
    let demand = DemandModel::paper_default().sample(168, 9);
    let compute: Vec<f64> = (0..168).map(|t| 0.2 + 0.05 * ((t % 24) as f64 / 24.0)).collect();
    let schedule = CostSchedule::ec2(compute, demand, &CostRates::ec2_2011());
    let plan = wagner_whitin::solve(&schedule, &PlanningParams::default());
    assert!(plan.is_feasible(&schedule, &PlanningParams::default(), 1e-7));
    assert!(plan.objective > 0.0);
}
