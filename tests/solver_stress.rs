//! Stress and failure-injection tests spanning the solver stack: larger
//! randomized instances, degenerate inputs, and limit handling.

use rand::{Rng, SeedableRng};
use rrp_core::demand::DemandModel;
use rrp_core::sampling::stage_distributions;
use rrp_core::{
    wagner_whitin, CostSchedule, DrrpProblem, PlanningParams, ScenarioTree, SrrpProblem,
};
use rrp_lp::{Cmp, Model, Sense, Status};
use rrp_milp::{MilpOptions, MilpProblem};
use rrp_spotmarket::{CostRates, EmpiricalDist};

#[test]
fn lp_presolve_roundtrip_on_planning_models() {
    // DRRP relaxations run through presolve must keep their optimum.
    let rates = CostRates::ec2_2011();
    let demand = DemandModel::paper_default().sample(12, 5);
    let schedule = CostSchedule::ec2(vec![0.2; 12], demand, &rates);
    let p = DrrpProblem::new(schedule, PlanningParams::default());
    let (milp, _) = p.to_milp();
    let direct = milp.model.solve().unwrap();
    match rrp_lp::presolve(&milp.model) {
        rrp_lp::PresolveOutcome::Reduced(pr) => {
            let via = pr.solve().unwrap();
            assert!(
                (via.objective - direct.objective).abs() < 1e-6,
                "presolve changed the relaxation: {} vs {}",
                via.objective,
                direct.objective
            );
            assert_eq!(via.values.len(), direct.values.len());
        }
        rrp_lp::PresolveOutcome::Infeasible(proof) => {
            panic!("feasible model declared infeasible: {proof}")
        }
    }
}

#[test]
fn week_long_drrp_solves_and_verifies() {
    let rates = CostRates::ec2_2011();
    let demand = DemandModel::paper_default().sample(168, 11);
    let prices: Vec<f64> =
        (0..168).map(|t| 0.18 + 0.08 * ((t as f64 * 0.37).sin().abs())).collect();
    let schedule = CostSchedule::ec2(prices, demand, &rates);
    let params = PlanningParams::default();
    let plan = wagner_whitin::solve(&schedule, &params);
    assert!(plan.is_feasible(&schedule, &params, 1e-7));
    // spot check against MILP on the first day
    let day =
        CostSchedule::ec2(schedule.compute[..24].to_vec(), schedule.demand[..24].to_vec(), &rates);
    let p = DrrpProblem::new(day.clone(), params);
    let milp = p.solve_milp(&MilpOptions::default()).unwrap();
    let ww = wagner_whitin::solve(&day, &params);
    assert!((milp.objective - ww.objective).abs() < 1e-6);
}

#[test]
fn milp_node_limit_degrades_gracefully() {
    // Harsh node limits must return either an incumbent (with honest gap)
    // or a clean NodeLimit error — never panic or loop.
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut m = Model::new(Sense::Maximize);
    let n = 20;
    let vars: Vec<_> = (0..n)
        .map(|i| {
            let w: f64 = rng.gen_range(10.0..20.0);
            m.add_var(0.0, 1.0, w + rng.gen_range(-0.5..0.5), &format!("x{i}"))
        })
        .collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(10.0..20.0)).collect();
    let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
    let cap: f64 = weights.iter().sum::<f64>() * 0.5;
    m.add_con(&terms, Cmp::Le, cap);
    let p = MilpProblem::new(m, vars);
    for limit in [1usize, 5, 50, 500] {
        match p.solve(&MilpOptions { node_limit: limit, ..Default::default() }) {
            Ok(sol) => {
                assert!(sol.gap >= -1e-9);
                assert!(sol.nodes <= limit + 64, "node accounting: {} > {}", sol.nodes, limit);
            }
            Err(e) => assert_eq!(e, rrp_milp::MilpStatus::NodeLimit),
        }
    }
}

#[test]
fn srrp_with_zero_demand_stages_is_free() {
    let rates = CostRates::ec2_2011();
    let schedule = CostSchedule::ec2(vec![0.0; 4], vec![0.0; 4], &rates);
    let dist = EmpiricalDist::from_parts(vec![0.05, 0.1], vec![0.5, 0.5]);
    let tree = ScenarioTree::from_stage_distributions(&vec![dist; 4], 10_000);
    let srrp = SrrpProblem::new(schedule, PlanningParams::default(), tree);
    let plan = srrp.solve_milp(&MilpOptions::default()).unwrap();
    assert!(plan.expected_cost.abs() < 1e-9, "cost {}", plan.expected_cost);
    assert!(plan.chi[1..].iter().all(|&c| !c));
}

#[test]
fn srrp_initial_inventory_covers_everything() {
    let rates = CostRates::ec2_2011();
    let schedule = CostSchedule::ec2(vec![0.0; 3], vec![0.3; 3], &rates);
    let dist = EmpiricalDist::from_parts(vec![0.05, 0.1], vec![0.5, 0.5]);
    let tree = ScenarioTree::from_stage_distributions(&vec![dist; 3], 10_000);
    let srrp = SrrpProblem::new(
        schedule.clone(),
        PlanningParams { initial_inventory: 2.0, capacity: None },
        tree,
    );
    let plan = srrp.solve_milp(&MilpOptions::default()).unwrap();
    // no rentals needed; only holding + transfer-out costs remain
    assert!(plan.chi[1..].iter().all(|&c| !c), "{:?}", &plan.chi[..4]);
    let holding: f64 = schedule.inventory[0] * (1.7 + 1.4 + 1.1);
    let expect = holding + schedule.transfer_out_constant();
    assert!(
        (plan.expected_cost - expect).abs() < 1e-6,
        "cost {} vs {}",
        plan.expected_cost,
        expect
    );
}

#[test]
fn infeasible_lp_from_contradictory_rows_detected_after_presolve() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(0.0, 10.0, 1.0, "x");
    let y = m.add_var(0.0, 10.0, 1.0, "y");
    m.add_con(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 15.0);
    m.add_con(&[(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
    // presolve alone cannot see it (two-term rows); the simplex must
    assert_eq!(m.solve().unwrap_err(), Status::Infeasible);
    match rrp_lp::presolve(&m) {
        rrp_lp::PresolveOutcome::Reduced(p) => {
            assert_eq!(p.solve().unwrap_err(), Status::Infeasible);
        }
        rrp_lp::PresolveOutcome::Infeasible(_) => {} // even better
    }
}

#[test]
fn stage_distributions_cover_extreme_bids() {
    let base = EmpiricalDist::from_history(&[0.05, 0.06, 0.07, 0.06, 0.05], 3);
    // hopeless bid: pure on-demand distribution everywhere
    let lo = stage_distributions(&base, &[0.0; 3], 0.2);
    for d in &lo {
        assert_eq!(d.values(), &[0.2]);
    }
    // generous bid: identity
    let hi = stage_distributions(&base, &[10.0; 3], 0.2);
    for d in &hi {
        assert!((d.mean() - base.mean()).abs() < 1e-12);
    }
}

#[test]
fn random_capacitated_drrp_feasibility() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let rates = CostRates::ec2_2011();
    for _ in 0..10 {
        let t = 3 + rng.gen_range(0..5);
        let demand: Vec<f64> = (0..t).map(|_| rng.gen_range(0.1..1.0)).collect();
        let max_d = demand.iter().cloned().fold(0.0, f64::max);
        let cap = max_d + rng.gen_range(0.1..1.0);
        let schedule =
            CostSchedule::ec2((0..t).map(|_| rng.gen_range(0.05..0.5)).collect(), demand, &rates);
        let params = PlanningParams { initial_inventory: 0.0, capacity: Some(cap) };
        let p = DrrpProblem::new(schedule.clone(), params);
        let plan = p.solve_milp(&MilpOptions::default()).unwrap();
        assert!(plan.is_feasible(&schedule, &params, 1e-6));
        assert!(plan.alpha.iter().all(|&a| a <= cap + 1e-6));
    }
}
