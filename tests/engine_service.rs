//! Integration test of the planning service: a 4-worker engine under a
//! 64-request mixed-policy load, plus a tight-deadline run that must fall
//! down the degradation ladder instead of blowing the budget.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrp_core::{CostSchedule, PlanningParams, ScenarioTree};
use rrp_engine::{DegradationLevel, Engine, PlanRequest, PolicyKind};
use rrp_spotmarket::{CostRates, EmpiricalDist};

fn schedule(horizon: usize, seed: u64) -> CostSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let demand: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.1..1.0)).collect();
    CostSchedule::ec2(vec![0.06; horizon], demand, &CostRates::ec2_2011())
}

fn two_state_tree(horizon: usize) -> ScenarioTree {
    let d = EmpiricalDist::from_parts(vec![0.04, 0.12], vec![0.6, 0.4]);
    ScenarioTree::from_stage_distributions(&vec![d; horizon], 100_000)
}

fn request(i: usize, policy: PolicyKind, deadline: Duration) -> PlanRequest {
    let horizon = 4 + i % 3; // 4..=6
    let tree = matches!(policy, PolicyKind::Stochastic).then(|| two_state_tree(horizon));
    PlanRequest {
        app_id: format!("tenant-{i}"),
        vm_class: "m1.small".into(),
        schedule: schedule(horizon, 1000 + i as u64),
        params: PlanningParams::default(),
        tree,
        policy,
        deadline,
        seed: i as u64,
    }
}

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Stochastic,
    PolicyKind::Deterministic,
    PolicyKind::DynamicProgram,
    PolicyKind::OnDemand,
];

#[test]
fn sixty_four_concurrent_requests_meet_deadlines() {
    let engine = Engine::new(4);
    let deadline = Duration::from_secs(30);
    let reqs: Vec<PlanRequest> =
        (0..64).map(|i| request(i, POLICIES[i % POLICIES.len()], deadline)).collect();
    let checks: Vec<(CostSchedule, PlanningParams, PolicyKind)> =
        reqs.iter().map(|r| (r.schedule.clone(), r.params, r.policy)).collect();

    let resps = engine.run_batch(reqs);
    assert_eq!(resps.len(), 64);

    for (resp, (s, params, policy)) in resps.iter().zip(&checks) {
        assert!(
            resp.expect_plan().is_feasible(s, params, 1e-6),
            "{}: infeasible plan at level {:?}",
            resp.app_id,
            resp.degradation
        );
        assert!(resp.deadline_met, "{}: blew a 30 s deadline", resp.app_id);
        assert_eq!(
            resp.degradation,
            policy.start_level(),
            "{}: degraded under a generous deadline (trace: {:?})",
            resp.app_id,
            resp.trace
        );
        if !resp.cache_hit {
            assert!(!resp.trace.is_empty(), "{}: solve without a trace", resp.app_id);
        }
    }

    let m = engine.metrics();
    assert_eq!(m.completed, 64);
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.deadline_misses, 0);
    assert_eq!(
        m.level_full + m.level_deterministic + m.level_dynamic_program + m.level_on_demand_only,
        64
    );
    assert_eq!(m.audit_rejections, 0, "no feasible request may be rejected");
    assert!(m.audits > 0, "cache-missing requests must be audited");
    assert!(m.p50_latency_ms <= m.p99_latency_ms);
}

#[test]
fn tight_deadline_falls_down_the_ladder() {
    let engine = Engine::new(2);
    // an already-expired budget: both MILP rungs must stop at node zero
    // and the DP floor answers
    let mut req = request(0, PolicyKind::Stochastic, Duration::ZERO);
    req.app_id = "hurried".into();
    let s = req.schedule.clone();
    let params = req.params;

    let resp = engine.submit(req).wait();
    assert!(
        resp.degradation > DegradationLevel::Full,
        "expected a fallback below SRRP, got {:?}",
        resp.degradation
    );
    assert_eq!(resp.degradation, DegradationLevel::DynamicProgram, "trace: {:?}", resp.trace);
    assert!(resp.expect_plan().is_feasible(&s, &params, 1e-6));
    // the trace records the rungs that ran out of budget above the answer
    assert_eq!(resp.trace.len(), 3, "trace: {:?}", resp.trace);
    assert_eq!(resp.trace[0].level, DegradationLevel::Full);
    assert_eq!(resp.trace[1].level, DegradationLevel::Deterministic);

    let m = engine.metrics();
    assert_eq!(m.level_dynamic_program, 1);
    assert_eq!(m.deadline_misses, 1);
}

#[test]
fn degraded_answers_are_not_cached() {
    let engine = Engine::new(1);
    let hurried = request(3, PolicyKind::Stochastic, Duration::ZERO);
    let relaxed = PlanRequest { deadline: Duration::from_secs(30), ..hurried.clone() };

    let first = engine.submit(hurried).wait();
    assert!(first.degradation > DegradationLevel::Full);

    // the same problem with time to spare must be solved fresh, not served
    // the degraded plan
    let second = engine.submit(relaxed).wait();
    assert!(!second.cache_hit, "degraded answer leaked into the cache");
    assert_eq!(second.degradation, DegradationLevel::Full);
}

#[test]
fn infeasible_request_is_rejected_with_a_proof() {
    let engine = Engine::new(1);
    // capacity below per-slot demand ⇒ no feasible plan exists; the audit
    // gate must prove that statically and reject, instead of letting the
    // ladder panic on the on-demand floor
    let mut bad = request(7, PolicyKind::OnDemand, Duration::from_secs(5));
    bad.params.capacity = Some(1e-3);
    let bad_resp = engine.submit(bad).wait();
    assert!(bad_resp.plan.is_none(), "infeasible request must not produce a plan");
    let proof = bad_resp.rejection.as_ref().expect("rejection must carry the proof");
    assert!(
        !proof.reason.is_empty() && proof.trace.iter().any(|l| l.contains("row")),
        "proof must name the contradicting row: {proof}"
    );

    // the worker is still healthy and serves the next request
    let good = request(8, PolicyKind::Deterministic, Duration::from_secs(30));
    let good_resp = engine.submit(good).wait();
    assert_eq!(good_resp.degradation, DegradationLevel::Deterministic);
    assert!(good_resp.plan.is_some());

    let m = engine.metrics();
    assert_eq!(m.audit_rejections, 1);
    assert_eq!(m.completed, 2);
    assert_eq!(
        m.level_full + m.level_deterministic + m.level_dynamic_program + m.level_on_demand_only,
        m.completed - m.audit_rejections
    );
}
