//! Cache behaviour of the planning service: identical problems hit, any
//! problem-field perturbation misses, and responses are bit-identical for
//! a fixed seed regardless of worker count (cache flags aside).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrp_core::{CostSchedule, PlanningParams, ScenarioTree};
use rrp_engine::{Engine, PlanRequest, PlanResponse, PolicyKind};
use rrp_spotmarket::{CostRates, EmpiricalDist};

fn schedule(horizon: usize, seed: u64) -> CostSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let demand: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.1..1.0)).collect();
    CostSchedule::ec2(vec![0.06; horizon], demand, &CostRates::ec2_2011())
}

fn tree(horizon: usize, probs: (f64, f64)) -> ScenarioTree {
    let d = EmpiricalDist::from_parts(vec![0.04, 0.12], vec![probs.0, probs.1]);
    ScenarioTree::from_stage_distributions(&vec![d; horizon], 100_000)
}

fn base_request(seed: u64) -> PlanRequest {
    PlanRequest {
        app_id: format!("app-{seed}"),
        vm_class: "m1.small".into(),
        schedule: schedule(5, seed),
        params: PlanningParams::default(),
        tree: Some(tree(5, (0.6, 0.4))),
        policy: PolicyKind::Stochastic,
        deadline: Duration::from_secs(30),
        seed,
    }
}

#[test]
fn identical_requests_hit_the_cache() {
    let engine = Engine::new(1);
    let first = engine.submit(base_request(1)).wait();
    assert!(!first.cache_hit);

    // a different tenant, seed and deadline — but the identical problem
    let mut again = base_request(1);
    again.app_id = "someone-else".into();
    again.seed = 999;
    again.deadline = Duration::from_secs(60);
    let second = engine.submit(again).wait();
    assert!(second.cache_hit, "identical problem must hit");
    assert_eq!(second.fingerprint, first.fingerprint);
    let (fp, sp) = (first.expect_plan(), second.expect_plan());
    assert_eq!(sp.alpha, fp.alpha);
    assert_eq!(sp.chi, fp.chi);
    assert_eq!(second.degradation, first.degradation);

    let m = engine.metrics();
    assert_eq!(m.cache_hits, 1);
    assert_eq!(m.cache_misses, 1);
    assert!((m.cache_hit_rate - 0.5).abs() < 1e-12);
}

#[test]
fn any_problem_field_perturbation_misses() {
    let base = base_request(2);
    let base_fp = base.fingerprint();

    let mut demand = base.clone();
    demand.schedule.demand[2] += 1e-9;
    let mut price = base.clone();
    price.schedule.compute[0] = 0.061;
    let mut inv_rate = base.clone();
    inv_rate.schedule.inventory[1] += 1e-6;
    let mut eps = base.clone();
    eps.params.initial_inventory = 0.25;
    let mut cap = base.clone();
    cap.params.capacity = Some(50.0);
    let mut probs = base.clone();
    probs.tree = Some(tree(5, (0.5, 0.5)));
    let mut policy = base.clone();
    policy.policy = PolicyKind::Deterministic;
    policy.tree = None;

    let perturbed = [demand, price, inv_rate, eps, cap, probs, policy];
    for (i, p) in perturbed.iter().enumerate() {
        assert_ne!(p.fingerprint(), base_fp, "perturbation {i} did not change the key");
    }

    let engine = Engine::new(1);
    let first = engine.submit(base).wait();
    assert!(!first.cache_hit);
    for p in perturbed {
        let resp = engine.submit(p).wait();
        assert!(!resp.cache_hit, "perturbed problem served from cache");
    }
}

/// The comparable core of a response: everything except the cache flag
/// (whether a worker solved or replayed a plan is scheduling-dependent)
/// and latency.
fn essence(r: &PlanResponse) -> (String, u64, Vec<u64>, Vec<u64>, Vec<bool>, u64, String) {
    let plan = r.expect_plan();
    (
        r.app_id.clone(),
        r.fingerprint,
        plan.alpha.iter().map(|v| v.to_bits()).collect(),
        plan.beta.iter().map(|v| v.to_bits()).collect(),
        plan.chi.clone(),
        plan.objective.to_bits(),
        format!("{:?}", r.degradation),
    )
}

#[test]
fn responses_bit_identical_across_worker_counts() {
    let make_batch = || -> Vec<PlanRequest> {
        (0..16)
            .map(|i| {
                let mut req = base_request(100 + i as u64);
                req.app_id = format!("det-{i}");
                match i % 4 {
                    0 => {} // stochastic with tree
                    1 => {
                        req.policy = PolicyKind::Deterministic;
                        req.tree = None;
                    }
                    2 => req.policy = PolicyKind::DynamicProgram,
                    _ => req.policy = PolicyKind::OnDemand,
                }
                // a couple of duplicated problems so the cache is exercised
                if i >= 12 {
                    req.schedule = schedule(5, 100 + (i as u64 - 12));
                    req.policy = PolicyKind::Stochastic;
                    req.tree = Some(tree(5, (0.6, 0.4)));
                }
                req
            })
            .collect()
    };

    let single: Vec<_> = Engine::new(1).run_batch(make_batch()).iter().map(essence).collect();
    let quad: Vec<_> = Engine::new(4).run_batch(make_batch()).iter().map(essence).collect();
    assert_eq!(single, quad, "plans must not depend on worker count");
}

/// A rolling-horizon re-plan: same tenant and model shape, shifted demand.
/// The exact fingerprint misses the plan cache, but the basis side-table
/// hits, warm-starting the new root LP — and the answer is identical to a
/// warm-start-disabled engine's.
#[test]
fn replan_hits_the_basis_side_table() {
    let det_request = |seed: u64| {
        let mut req = base_request(seed);
        req.app_id = "replan-tenant".into();
        req.policy = PolicyKind::Deterministic;
        req.tree = None;
        req
    };

    let engine = Engine::new(1);
    let first = engine.submit(det_request(41)).wait();
    assert!(!first.cache_hit);
    assert_eq!(engine.basis_cache_entries(), 1, "fully-solved request stores its root basis");

    let second = engine.submit(det_request(42)).wait();
    assert!(!second.cache_hit, "shifted demand must miss the plan cache");
    assert!(
        engine.basis_cache_hit_rate() > 0.0,
        "same-shape re-plan must hit the basis side-table"
    );

    // warm-started answer == cold engine's answer, bit for bit
    let cold_opts = rrp_milp::MilpOptions { warm_start: false, ..Default::default() };
    let cold = Engine::with_options(1, cold_opts).submit(det_request(42)).wait();
    let (wp, cp) = (second.expect_plan(), cold.expect_plan());
    assert_eq!(wp.chi, cp.chi, "rental decisions must not depend on warm start");
    assert!(
        (wp.objective - cp.objective).abs() <= 1e-9 * (1.0 + cp.objective.abs()),
        "warm {} vs cold {}",
        wp.objective,
        cp.objective
    );
}
